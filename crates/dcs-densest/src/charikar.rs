//! Greedy peeling for the maximum-average-degree subgraph (Algorithm 1 of the paper).
//!
//! Starting from the full vertex set, the algorithm repeatedly removes the vertex with
//! the minimum current weighted degree and remembers the best prefix by average degree
//! `ρ(S) = W(S)/|S|` (degree-sum convention, see [`dcs_graph::SignedGraph::total_degree`]).
//!
//! On graphs with non-negative weights this is Charikar's classical 2-approximation of
//! the densest subgraph.  On signed graphs (the difference graph `G_D`) no approximation
//! guarantee exists — the DCSAD problem is `O(n^{1-ε})`-inapproximable — but the peel is
//! still a useful candidate generator, which is exactly how `DCSGreedy` uses it.

use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

use crate::peel::{Entry, MinDegreeQueue, PeelWorkspace, RescanQueue};

/// Granularity (in vertices) of the partial sums used to fold the initial
/// total degree.  Float addition is not associative, so the sequential and
/// parallel peels both accumulate per-chunk sums over ascending vertex ids and
/// fold them in ascending chunk order; parallel worker ranges are chunk-aligned,
/// making the two inits **bit-identical** by construction.
pub(crate) const DEGREE_CHUNK: usize = 64;

/// Result of a greedy peeling run.
#[derive(Debug, Clone, PartialEq)]
pub struct PeelingResult {
    /// The best vertex subset encountered during the peel (sorted ascending).
    pub subset: Vec<VertexId>,
    /// Its average degree `ρ(S) = W(S)/|S|` (degree-sum convention).
    pub average_degree: Weight,
}

/// Optional per-step trace of a peeling run (used by ablation benches and tests).
#[derive(Debug, Clone, Default)]
pub struct PeelingProfile {
    /// Vertices in removal order.
    pub removal_order: Vec<VertexId>,
    /// `densities[i]` is the average degree of the subset *before* the i-th removal;
    /// `densities[0]` is the density of the full vertex set.
    pub densities: Vec<Weight>,
}

/// Runs greedy peeling with the lazy-heap priority structure.
pub fn greedy_peeling(g: &SignedGraph) -> PeelingResult {
    greedy_peeling_view_into(GraphView::full(g), &mut PeelWorkspace::new(), |_| false).0
}

/// Runs greedy peeling with a **stop callback**: `stop(units)` is invoked once per
/// vertex removal (with `units = 1`) and peeling aborts as soon as it returns `true`.
///
/// The returned result is the best prefix seen *so far* — always a valid subset of the
/// graph, just not necessarily the full peel's best.  The second component reports
/// whether the peel was interrupted.  This is the interruption primitive the
/// `dcs-core` engine layer builds its deadline/cancellation/budget support on.
pub fn greedy_peeling_until<F: FnMut(u64) -> bool>(
    g: &SignedGraph,
    stop: F,
) -> (PeelingResult, bool) {
    greedy_peeling_view_into(GraphView::full(g), &mut PeelWorkspace::new(), stop)
}

/// [`greedy_peeling_until`] on a [`GraphView`], writing all scratch state into a
/// reusable [`PeelWorkspace`] — the allocation-lean hot path behind every other
/// peeling entry point.
///
/// Peeling a view is peeling the **alive-induced** subgraph: dead vertices take no
/// part (they are not counted in the density denominators and cannot appear in the
/// result), exactly as if [`dcs_graph::SignedGraph::induced_subgraph`] had been
/// materialised on the alive set — but with zero allocation beyond the workspace's
/// first use, and with vertex ids unchanged.
pub fn greedy_peeling_view_into<F: FnMut(u64) -> bool>(
    view: GraphView<'_>,
    ws: &mut PeelWorkspace,
    stop: F,
) -> (PeelingResult, bool) {
    greedy_peeling_view_impl(view, ws, stop, None)
}

/// The one peel implementation behind [`greedy_peeling`], [`greedy_peeling_until`],
/// [`greedy_peeling_view_into`] and [`greedy_peeling_with_profile`] (the ablation
/// queue variants in [`crate::peel`] keep their own generic driver).  `profile`
/// optionally records the removal order and per-step densities.
fn greedy_peeling_view_impl<F: FnMut(u64) -> bool>(
    view: GraphView<'_>,
    ws: &mut PeelWorkspace,
    mut stop: F,
    mut profile: Option<&mut PeelingProfile>,
) -> (PeelingResult, bool) {
    let n = view.num_vertices();
    let alive_at_start = view.alive_count();
    if alive_at_start == 0 {
        return (
            PeelingResult {
                subset: Vec::new(),
                average_degree: 0.0,
            },
            false,
        );
    }
    let mut peel_span = dcs_obs::trace::span(dcs_obs::trace::Phase::Peel);
    ws.reset(n);
    // Two-pass initialisation: aliveness first, then degrees from the raw CSR rows
    // with the `ws.alive` test standing in for the mask (identical filtering, one
    // indirection less per edge).
    for v in view.vertices() {
        ws.alive[v as usize] = true;
    }
    let init_positive_only = view.is_positive_only();
    // Chunked total-degree accumulation (see `DEGREE_CHUNK`): per-chunk sums in
    // ascending vertex order, folded in ascending chunk order — the same float
    // operations, in the same order, as the chunk-aligned parallel init.
    ws.chunk_sums.resize(n.div_ceil(DEGREE_CHUNK), 0.0);
    for v in view.vertices() {
        let (nbrs, nbr_weights) = view.graph().neighbor_slices(v);
        let mut d: Weight = 0.0;
        for (&u, &w) in nbrs.iter().zip(nbr_weights) {
            if (init_positive_only && w <= 0.0) || !ws.alive[u as usize] {
                continue;
            }
            d += w;
        }
        ws.degree[v as usize] = d;
        ws.heap.push(Entry {
            degree: d,
            vertex: v,
            version: 0,
        });
        ws.chunk_sums[v as usize / DEGREE_CHUNK] += d;
    }
    let mut total_degree: Weight = 0.0;
    for &chunk in ws.chunk_sums.iter() {
        total_degree += chunk;
    }

    let mut alive_count = alive_at_start;
    let mut best_density = total_degree / alive_count as Weight;
    let mut best_size = alive_count;
    if let Some(p) = profile.as_deref_mut() {
        p.densities.push(best_density);
    }
    let mut interrupted = false;
    // The relax loop below iterates the raw CSR rows: `ws.alive` was initialised
    // from the view's mask, so the alive test subsumes the mask test and the hottest
    // pass of the peel pays no per-edge view indirection.  Only the sign filter (for
    // positive-filtered views) remains.
    let positive_only = view.is_positive_only();
    let graph = view.graph();
    while alive_count > 1 {
        if stop(1) {
            interrupted = true;
            break;
        }
        // Lazy-heap pop: skip entries whose vertex was removed or re-prioritised.
        let v = loop {
            let entry = ws
                .heap
                .pop()
                .expect("queue not empty while vertices remain");
            let vi = entry.vertex as usize;
            if ws.alive[vi] && entry.version == ws.version[vi] {
                break entry.vertex;
            }
        };
        ws.alive[v as usize] = false;
        // Removing v removes every surviving edge (v, u): the degree-sum drops by
        // twice the degree of v within the remaining subgraph.
        let mut removed_weight = 0.0;
        let (nbrs, nbr_weights) = graph.neighbor_slices(v);
        for (&u, &w) in nbrs.iter().zip(nbr_weights) {
            if positive_only && w <= 0.0 {
                continue;
            }
            let ui = u as usize;
            if ws.alive[ui] {
                removed_weight += w;
                ws.degree[ui] -= w;
                ws.version[ui] += 1;
                ws.heap.push(Entry {
                    degree: ws.degree[ui],
                    vertex: u,
                    version: ws.version[ui],
                });
            }
        }
        total_degree -= 2.0 * removed_weight;
        alive_count -= 1;
        ws.removal_order.push(v);

        let density = total_degree / alive_count as Weight;
        if let Some(p) = profile.as_deref_mut() {
            p.removal_order.push(v);
            p.densities.push(density);
        }
        if density > best_density {
            best_density = density;
            best_size = alive_count;
        }
    }
    peel_span.set_units((alive_at_start - alive_count) as u64);

    finish_peel(
        view,
        ws,
        best_density,
        best_size,
        alive_at_start,
        interrupted,
    )
}

/// The common tail of the sequential and parallel peels: the negative-density
/// fallback (last survivor alone, found through `ws.alive`) and the best-prefix
/// reconstruction from `ws.removal_order` / `ws.in_best`.
pub(crate) fn finish_peel(
    view: GraphView<'_>,
    ws: &mut PeelWorkspace,
    best_density: Weight,
    best_size: usize,
    alive_at_start: usize,
    interrupted: bool,
) -> (PeelingResult, bool) {
    let n = view.num_vertices();
    // A single vertex has density 0 by convention; if every encountered prefix had
    // negative density (possible on signed graphs) the best answer is the last
    // surviving vertex alone.
    if best_density < 0.0 {
        let last = (0..n as VertexId)
            .find(|&v| ws.alive[v as usize])
            .expect("one vertex remains");
        return (
            PeelingResult {
                subset: vec![last],
                average_degree: 0.0,
            },
            interrupted,
        );
    }

    // Reconstruct the best subset: the alive-at-start vertices not among the first
    // (alive_at_start - best_size) removals.
    let removed_prefix = alive_at_start - best_size;
    for v in view.vertices() {
        ws.in_best[v as usize] = true;
    }
    for &v in ws.removal_order.iter().take(removed_prefix) {
        ws.in_best[v as usize] = false;
    }
    let mut subset: Vec<VertexId> = Vec::with_capacity(best_size);
    subset.extend((0..n as VertexId).filter(|&v| ws.in_best[v as usize]));
    debug_assert_eq!(subset.len(), best_size);
    (
        PeelingResult {
            average_degree: best_density,
            subset,
        },
        interrupted,
    )
}

/// Runs greedy peeling and also returns the full removal trace.
pub fn greedy_peeling_with_profile(g: &SignedGraph) -> (PeelingResult, PeelingProfile) {
    let mut profile = PeelingProfile::default();
    let (res, _) = greedy_peeling_view_impl(
        GraphView::full(g),
        &mut PeelWorkspace::new(),
        |_| false,
        Some(&mut profile),
    );
    (res, profile)
}

/// Runs greedy peeling with the naive re-scan structure (ablation baseline only).
pub fn greedy_peeling_rescan(g: &SignedGraph) -> PeelingResult {
    peel_impl::<RescanQueue, _>(g, false, |_| false).0
}

/// Runs greedy peeling with the segment-tree priority structure suggested by the paper.
pub fn greedy_peeling_segment_tree(g: &SignedGraph) -> PeelingResult {
    peel_impl::<crate::peel::SegmentTreeQueue, _>(g, false, |_| false).0
}

fn peel_impl<Q: MinDegreeQueue, F: FnMut(u64) -> bool>(
    g: &SignedGraph,
    want_profile: bool,
    mut stop: F,
) -> (PeelingResult, Option<PeelingProfile>, bool) {
    let n = g.num_vertices();
    if n == 0 {
        return (
            PeelingResult {
                subset: Vec::new(),
                average_degree: 0.0,
            },
            want_profile.then(PeelingProfile::default),
            false,
        );
    }

    let degrees: Vec<Weight> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    // W(S) in the degree-sum convention = Σ_v deg(v) for the current S.
    let mut total_degree: Weight = degrees.iter().sum();
    let mut queue = Q::from_degrees(&degrees);
    let mut alive = vec![true; n];
    let mut alive_count = n;

    let mut best_density = total_degree / n as Weight;
    let mut best_size = n; // the best prefix is identified by how many vertices remain
    let mut removal_order: Vec<VertexId> = Vec::with_capacity(n);
    let mut densities: Vec<Weight> = Vec::new();
    if want_profile {
        densities.push(best_density);
    }

    let mut interrupted = false;
    while alive_count > 1 {
        if stop(1) {
            interrupted = true;
            break;
        }
        let (v, _deg) = queue.pop_min().expect("queue not empty");
        alive[v as usize] = false;
        // Removing v removes every edge (v, u) with u alive: the degree-sum drops by
        // twice the degree of v within the remaining subgraph.
        let mut removed_weight = 0.0;
        for e in g.neighbors(v) {
            if alive[e.neighbor as usize] {
                removed_weight += e.weight;
                queue.adjust(e.neighbor, -e.weight);
            }
        }
        total_degree -= 2.0 * removed_weight;
        alive_count -= 1;
        removal_order.push(v);

        let density = total_degree / alive_count as Weight;
        if want_profile {
            densities.push(density);
        }
        if density > best_density {
            best_density = density;
            best_size = alive_count;
        }
    }

    // A single vertex has density 0 by convention; if every encountered prefix had
    // negative density (possible on signed graphs) the best answer is the last surviving
    // vertex alone.
    if best_density < 0.0 {
        let last = (0..n as VertexId)
            .find(|&v| alive[v as usize])
            .expect("one vertex remains");
        let result = PeelingResult {
            subset: vec![last],
            average_degree: 0.0,
        };
        let profile = want_profile.then_some(PeelingProfile {
            removal_order,
            densities,
        });
        return (result, profile, interrupted);
    }

    // Reconstruct the best subset: the vertices not among the first (n - best_size)
    // removals.
    let removed_prefix = n - best_size;
    let mut in_best = vec![true; n];
    for &v in removal_order.iter().take(removed_prefix) {
        in_best[v as usize] = false;
    }
    let subset: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| in_best[v as usize])
        .collect();

    debug_assert_eq!(subset.len(), best_size);
    let result = PeelingResult {
        average_degree: best_density,
        subset,
    };
    let profile = want_profile.then_some(PeelingProfile {
        removal_order,
        densities,
    });
    (result, profile, interrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// A 4-clique with unit weights attached to a long path: the clique is the densest
    /// subgraph (average degree 3) and greedy peeling finds it exactly.
    fn clique_with_tail() -> SignedGraph {
        let mut b = GraphBuilder::new(10);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        for v in 3..9u32 {
            b.add_edge(v, v + 1, 0.1);
        }
        b.build()
    }

    #[test]
    fn finds_planted_clique() {
        let g = clique_with_tail();
        let res = greedy_peeling(&g);
        assert_eq!(res.subset, vec![0, 1, 2, 3]);
        assert!((res.average_degree - 3.0).abs() < 1e-9);
    }

    #[test]
    fn heap_and_rescan_agree() {
        let g = clique_with_tail();
        let a = greedy_peeling(&g);
        let b = greedy_peeling_rescan(&g);
        let c = greedy_peeling_segment_tree(&g);
        assert_eq!(a.subset, b.subset);
        assert!((a.average_degree - b.average_degree).abs() < 1e-12);
        assert_eq!(a.subset, c.subset);
        assert!((a.average_degree - c.average_degree).abs() < 1e-12);
    }

    #[test]
    fn profile_is_consistent() {
        let g = clique_with_tail();
        let (res, profile) = greedy_peeling_with_profile(&g);
        assert_eq!(profile.removal_order.len(), g.num_vertices() - 1);
        assert_eq!(profile.densities.len(), g.num_vertices());
        let best_from_profile = profile
            .densities
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((best_from_profile - res.average_degree).abs() < 1e-12);
        // Re-evaluate the returned subset against the graph.
        assert!((g.average_degree(&res.subset) - res.average_degree).abs() < 1e-9);
    }

    #[test]
    fn handles_negative_weights() {
        // Two vertices joined by a +10 edge, plus a hub connected to everything with -1:
        // the peel must shed the hub and keep the heavy pair.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 10.0);
        for v in 0..4u32 {
            b.add_edge(4, v, -1.0);
        }
        let g = b.build();
        let res = greedy_peeling(&g);
        assert_eq!(res.subset, vec![0, 1]);
        assert!((res.average_degree - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_vertex_and_empty() {
        let g = SignedGraph::empty(1);
        let res = greedy_peeling(&g);
        assert_eq!(res.subset, vec![0]);
        assert_eq!(res.average_degree, 0.0);

        let g = SignedGraph::empty(0);
        let res = greedy_peeling(&g);
        assert!(res.subset.is_empty());
    }

    #[test]
    fn interruptible_peel_returns_best_so_far() {
        let g = clique_with_tail();
        // Never stopped: identical to the plain peel.
        let (full, interrupted) = greedy_peeling_until(&g, |_| false);
        assert!(!interrupted);
        assert_eq!(full, greedy_peeling(&g));
        // Stopped after a few removals: still a valid subset with a consistent density.
        let mut budget = 3u64;
        let (partial, interrupted) = greedy_peeling_until(&g, |units| {
            budget = budget.saturating_sub(units);
            budget == 0
        });
        assert!(interrupted);
        assert!(!partial.subset.is_empty());
        assert!(partial
            .subset
            .iter()
            .all(|&v| (v as usize) < g.num_vertices()));
        assert!((g.average_degree(&partial.subset) - partial.average_degree).abs() < 1e-9);
        // Stopped immediately: the full vertex set (nothing peeled yet).
        let (none, interrupted) = greedy_peeling_until(&g, |_| true);
        assert!(interrupted);
        assert_eq!(none.subset.len(), g.num_vertices());
    }

    #[test]
    fn view_peel_equals_induced_subgraph_peel() {
        use dcs_graph::{GraphView, VertexMask};
        let g = clique_with_tail();
        let mut ws = PeelWorkspace::new();

        // Full view through a reused workspace: identical to the plain peel.
        let full = greedy_peeling_view_into(GraphView::full(&g), &mut ws, |_| false).0;
        assert_eq!(full, greedy_peeling(&g));

        // Masked view: equals peeling the materialised induced subgraph (ids mapped
        // back), with the workspace reused across both differently-shaped peels.
        let removed = [1u32, 7];
        let mut mask = VertexMask::full(g.num_vertices());
        mask.remove_all(&removed);
        let of_view = greedy_peeling_view_into(GraphView::masked(&g, &mask), &mut ws, |_| false).0;
        let alive: Vec<u32> = mask.iter().collect();
        let (induced, back) = g.induced_subgraph(&alive);
        let of_induced = greedy_peeling(&induced);
        let mapped: Vec<u32> = of_induced
            .subset
            .iter()
            .map(|&v| back[v as usize])
            .collect();
        assert_eq!(of_view.subset, mapped);
        assert!((of_view.average_degree - of_induced.average_degree).abs() < 1e-12);

        // Positive view: equals peeling the materialised positive part.
        let mut signed = clique_with_tail();
        signed = {
            let mut b = GraphBuilder::new(signed.num_vertices());
            for (u, v, w) in signed.edges() {
                b.add_edge(u, v, w);
            }
            b.add_edge(0, 9, -5.0);
            b.build()
        };
        let positive =
            greedy_peeling_view_into(GraphView::full(&signed).positive_part(), &mut ws, |_| false)
                .0;
        assert_eq!(positive, greedy_peeling(&signed.positive_part()));
    }

    #[test]
    fn two_approximation_on_positive_graphs() {
        // Random-ish small positive graph; compare against brute force.
        let mut b = GraphBuilder::new(8);
        let edges = [
            (0, 1, 3.0),
            (1, 2, 1.0),
            (2, 3, 2.0),
            (3, 0, 1.5),
            (0, 2, 0.5),
            (4, 5, 4.0),
            (5, 6, 1.0),
            (6, 7, 2.5),
            (4, 6, 3.5),
            (1, 5, 0.2),
        ];
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        // Brute force optimum.  Masks are u64 (not u32): `1 << n` / `1 << v` on a
        // 32-bit mask silently overflows for n >= 32, and exact-solver tests have
        // legitimately grown past 8 vertices before.
        let n = g.num_vertices();
        debug_assert!(n < 64, "brute-force subset masks are u64");
        let mut best = 0.0f64;
        for mask in 1u64..(1u64 << n) {
            let subset: Vec<u32> = (0..n as u32).filter(|&v| mask & (1u64 << v) != 0).collect();
            best = best.max(g.average_degree(&subset));
        }
        let res = greedy_peeling(&g);
        assert!(res.average_degree * 2.0 + 1e-9 >= best);
        assert!(res.average_degree <= best + 1e-9);
    }
}

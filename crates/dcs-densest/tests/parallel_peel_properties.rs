//! Property-based tests of the parallel bucket peel against the sequential peel,
//! through the crate's **exported** API (the in-module tests in `parallel_peel.rs`
//! cover the internals; these pin the public contract):
//!
//! * [`greedy_peeling_parallel_view_into`] is **bit-identical** to
//!   [`greedy_peeling_view_into`] — same best subset, same `average_degree` down to
//!   the last bit, and the same vertex-by-vertex removal order — across randomized
//!   signed graphs, full / masked / positive-filtered views, thread counts
//!   {1, 2, 4}, and per-range batch sizes;
//! * both workspaces are **reused** across every case of a run (the risky part:
//!   stale buckets, degrees, or removal orders leaking between peels);
//! * interruption (`stop` budgets) trips at the same removal count on both paths;
//! * [`greedy_peeling_view_auto`] dispatches below [`PARALLEL_PEEL_THRESHOLD`]
//!   without changing results.

use dcs_densest::{
    greedy_peeling_parallel_view_into, greedy_peeling_view_auto, greedy_peeling_view_into,
    ParallelPeelWorkspace, PeelWorkspace, PARALLEL_PEEL_THRESHOLD,
};
use dcs_graph::{GraphBuilder, GraphView, SignedGraph, VertexMask};
use proptest::prelude::*;

/// Strategy: a random signed graph over `n <= 48` vertices (signed weights so the
/// positive-filtered view differs from the full one).
fn arb_graph() -> impl Strategy<Value = SignedGraph> {
    (4usize..48).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -8.0f64..8.0);
        (Just(n), proptest::collection::vec(edge, 0..160)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w != 0.0 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

/// Peels `view` sequentially and in parallel with the given knobs, asserting full
/// bit-identity.  The workspaces come from the caller so reuse is exercised.
fn assert_peel_identical(
    view: GraphView<'_>,
    threads: usize,
    batch: usize,
    seq_ws: &mut PeelWorkspace,
    par_seq_ws: &mut PeelWorkspace,
    par_ws: &mut ParallelPeelWorkspace,
) {
    let (seq, seq_hit) = greedy_peeling_view_into(view, seq_ws, |_| false);
    par_ws.set_batch_per_range(batch);
    let (par, par_hit) =
        greedy_peeling_parallel_view_into(view, par_seq_ws, par_ws, threads, |_| false);

    assert_eq!(seq.subset, par.subset, "threads={threads} batch={batch}");
    assert_eq!(
        seq.average_degree.to_bits(),
        par.average_degree.to_bits(),
        "threads={threads} batch={batch}: {} vs {}",
        seq.average_degree,
        par.average_degree
    );
    assert_eq!(
        seq_ws.removal_order(),
        par_seq_ws.removal_order(),
        "threads={threads} batch={batch}"
    );
    assert_eq!(seq_hit, par_hit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel peel == sequential peel on the full view, bit for bit, for every
    /// thread count and batch size, with all three workspaces reused across knobs.
    #[test]
    fn parallel_peel_matches_sequential_on_full_views(g in arb_graph()) {
        let mut seq_ws = PeelWorkspace::default();
        let mut par_seq_ws = PeelWorkspace::default();
        let mut par_ws = ParallelPeelWorkspace::default();
        for threads in [1usize, 2, 4] {
            for batch in [1usize, 3, 64] {
                assert_peel_identical(
                    GraphView::full(&g), threads, batch,
                    &mut seq_ws, &mut par_seq_ws, &mut par_ws,
                );
            }
        }
    }

    /// The same identity on the positive-filtered overlay (the view the affinity
    /// solvers actually peel) and on a masked view with vertices knocked out.
    #[test]
    fn parallel_peel_matches_sequential_on_filtered_views(
        g in arb_graph(),
        holes in proptest::collection::vec(0u32..48, 0..12),
    ) {
        let mut seq_ws = PeelWorkspace::default();
        let mut par_seq_ws = PeelWorkspace::default();
        let mut par_ws = ParallelPeelWorkspace::default();

        assert_peel_identical(
            GraphView::full(&g).positive_part(), 4, 8,
            &mut seq_ws, &mut par_seq_ws, &mut par_ws,
        );

        let mut mask = VertexMask::full(g.num_vertices());
        for v in holes {
            if (v as usize) < g.num_vertices() {
                mask.remove(v);
            }
        }
        assert_peel_identical(
            GraphView::masked(&g, &mask), 2, 1,
            &mut seq_ws, &mut par_seq_ws, &mut par_ws,
        );
        assert_peel_identical(
            GraphView::masked(&g, &mask).positive_part(), 4, 64,
            &mut seq_ws, &mut par_seq_ws, &mut par_ws,
        );
    }

    /// A `stop` budget interrupts both paths after the same number of removals and
    /// both report the interruption; the best-so-far prefix is still identical.
    #[test]
    fn interruption_trips_identically(g in arb_graph(), budget in 1u64..24) {
        let mut seq_ws = PeelWorkspace::default();
        let mut par_seq_ws = PeelWorkspace::default();
        let mut par_ws = ParallelPeelWorkspace::default();
        let view = GraphView::full(&g);

        let (seq, seq_hit) = greedy_peeling_view_into(view, &mut seq_ws, |used| used >= budget);
        let (par, par_hit) =
            greedy_peeling_parallel_view_into(view, &mut par_seq_ws, &mut par_ws, 4, |used| {
                used >= budget
            });

        prop_assert_eq!(seq_hit, par_hit);
        prop_assert_eq!(seq.subset, par.subset);
        prop_assert_eq!(seq.average_degree.to_bits(), par.average_degree.to_bits());
        prop_assert_eq!(seq_ws.removal_order(), par_seq_ws.removal_order());
    }
}

/// `greedy_peeling_view_auto` on small graphs (every proptest graph is far below
/// [`PARALLEL_PEEL_THRESHOLD`]) must take the sequential path yet stay identical —
/// and must accept the same reused workspaces.
#[test]
fn auto_dispatch_is_transparent_below_the_threshold() {
    let mut b = GraphBuilder::new(64);
    let mut state = 0x5EEDu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..400 {
        let u = (next() % 64) as u32;
        let v = (next() % 64) as u32;
        let w = (next() % 1000) as f64 / 100.0 - 3.0;
        if u != v && w != 0.0 {
            b.add_edge(u, v, w);
        }
    }
    let g = b.build();
    assert!(g.num_vertices() < PARALLEL_PEEL_THRESHOLD);

    let mut seq_ws = PeelWorkspace::default();
    let mut auto_seq_ws = PeelWorkspace::default();
    let mut par_ws = ParallelPeelWorkspace::default();
    let view = GraphView::full(&g);
    let (seq, _) = greedy_peeling_view_into(view, &mut seq_ws, |_| false);
    for threads in [1usize, 2, 4] {
        let (auto, _) =
            greedy_peeling_view_auto(view, &mut auto_seq_ws, &mut par_ws, threads, |_| false);
        assert_eq!(seq.subset, auto.subset);
        assert_eq!(seq.average_degree.to_bits(), auto.average_degree.to_bits());
        assert_eq!(seq_ws.removal_order(), auto_seq_ws.removal_order());
    }
}

//! Property-based tests of the classical densest-subgraph substrate.

use dcs_densest::charikar::{greedy_peeling, greedy_peeling_rescan, greedy_peeling_segment_tree};
use dcs_densest::replicator::{kkt_gap_on_support, replicator_dynamics, ReplicatorStop};
use dcs_densest::{densest_subgraph_exact, Embedding, OriginalSea};
use dcs_graph::{GraphBuilder, SignedGraph};
use proptest::prelude::*;

/// Random non-negatively weighted graph on up to 14 vertices.
fn arb_positive_graph() -> impl Strategy<Value = SignedGraph> {
    (3usize..14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..6.0f64);
        (Just(n), proptest::collection::vec(edge, 0..60)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

/// Random signed graph on up to 14 vertices.
fn arb_signed_graph() -> impl Strategy<Value = SignedGraph> {
    (3usize..14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -5.0f64..5.0f64);
        (Just(n), proptest::collection::vec(edge, 0..60)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w != 0.0 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

fn brute_force_densest(g: &SignedGraph) -> f64 {
    let n = g.num_vertices();
    let mut best = 0.0f64;
    for mask in 1u32..(1 << n) {
        let subset: Vec<u32> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
        best = best.max(g.average_degree(&subset));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Goldberg's exact solver matches brute force on non-negative graphs, and Charikar's
    /// greedy is within a factor 2 of it.
    #[test]
    fn goldberg_is_exact_and_charikar_within_two(g in arb_positive_graph()) {
        let optimum = brute_force_densest(&g);
        let exact = densest_subgraph_exact(&g);
        prop_assert!((exact.average_degree - optimum).abs() < 1e-6,
            "goldberg {} vs brute force {}", exact.average_degree, optimum);
        let greedy = greedy_peeling(&g);
        prop_assert!(greedy.average_degree <= optimum + 1e-9);
        prop_assert!(2.0 * greedy.average_degree + 1e-9 >= optimum);
    }

    /// The three peeling priority structures produce identical densities (the subsets may
    /// differ on ties, but never the achieved objective) on signed graphs.
    #[test]
    fn peeling_structures_agree(g in arb_signed_graph()) {
        let heap = greedy_peeling(&g);
        let rescan = greedy_peeling_rescan(&g);
        let segtree = greedy_peeling_segment_tree(&g);
        prop_assert!((heap.average_degree - g.average_degree(&heap.subset)).abs() < 1e-9);
        prop_assert!((heap.average_degree - rescan.average_degree).abs() < 1e-9);
        prop_assert!((heap.average_degree - segtree.average_degree).abs() < 1e-9);
        prop_assert!(heap.average_degree >= 0.0);
    }

    /// Replicator dynamics never decreases the objective and ends (with the strict rule)
    /// at a local KKT point; the final objective never exceeds the Motzkin–Straus-style
    /// upper bound given by the densest subgraph (affinity ≤ max average degree).
    #[test]
    fn replicator_monotone_and_kkt(g in arb_positive_graph()) {
        if g.num_edges() == 0 {
            return Ok(());
        }
        let support: Vec<u32> = g
            .vertices()
            .filter(|&v| g.degree(v) > 0)
            .collect();
        let x0 = Embedding::uniform(&support);
        let before = x0.affinity(&g);
        let out = replicator_dynamics(&g, &x0, ReplicatorStop::KktGap { eps: 1e-8 }, 200_000);
        prop_assert!(out.objective >= before - 1e-9);
        if out.converged {
            prop_assert!(kkt_gap_on_support(&g, &out.embedding) <= 1e-6);
        }
        // xᵀAx ≤ max degree of the induced support ≤ exact densest average degree … a
        // loose sanity bound: affinity can never exceed the maximum weighted degree.
        let max_degree = g.vertices().map(|v| g.weighted_degree(v)).fold(0.0, f64::max);
        prop_assert!(out.objective <= max_degree + 1e-9);
    }

    /// The original SEA (with the strict KKT shrink rule) commits no expansion errors and
    /// never returns a worse objective than its best single-edge initialisation bound.
    #[test]
    fn original_sea_with_strict_shrink_is_error_free(g in arb_positive_graph()) {
        if g.num_edges() == 0 {
            return Ok(());
        }
        let sea = OriginalSea::new(dcs_densest::SeaConfig {
            shrink_stop: ReplicatorStop::KktGap { eps: 1e-9 },
            shrink_max_iters: 100_000,
            ..dcs_densest::SeaConfig::default()
        });
        let result = sea.run_all_vertices(&g, None, false);
        prop_assert_eq!(result.expansion_errors, 0);
        let wmax = g.max_edge_weight().unwrap_or(0.0);
        prop_assert!(result.best_objective + 1e-6 >= wmax / 2.0);
        // And the embedding really attains the reported objective.
        prop_assert!((result.best.affinity(&g) - result.best_objective).abs() < 1e-9);
    }

    /// Embeddings stay on the simplex through the SEA pipeline.
    #[test]
    fn sea_outputs_stay_on_the_simplex(g in arb_positive_graph(), seed in 0u32..14) {
        if g.num_edges() == 0 || seed as usize >= g.num_vertices() || g.degree(seed) == 0 {
            return Ok(());
        }
        let run = OriginalSea::default().run_from(&g, Embedding::singleton(seed));
        prop_assert!((run.embedding.mass() - 1.0).abs() < 1e-6);
        for (_, x) in run.embedding.iter() {
            prop_assert!(x > 0.0 && x <= 1.0 + 1e-9);
        }
    }
}

//! Admission control and event-loop behavior over a real socket: load
//! shedding with retry hints, observe-mailbox bounds, write backpressure
//! that does not stall other connections, cancel-on-disconnect liveness,
//! and framing parity for a final unterminated request line.
//!
//! These tests speak raw NDJSON over `TcpStream` instead of using
//! [`dcs_server::Client`], because the client collapses `ok: false`
//! responses into errors and the shed replies' `retry_after_ms` field is
//! exactly what is under test.

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dcs_server::{Server, ServerConfig};
use serde_json::{json, Value};

/// One raw NDJSON connection.
struct Wire {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn connect(addr: SocketAddr) -> Wire {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Wire {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, request: &Value) {
        let mut line = request.to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes()).expect("send line");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed while awaiting a response");
        serde_json::from_str(line.trim()).expect("response is JSON")
    }

    fn request(&mut self, request: &Value) -> Value {
        self.send(request);
        self.recv()
    }
}

fn start_server(config: ServerConfig) -> (dcs_server::ServerHandle, SocketAddr) {
    let handle = Server::bind("127.0.0.1:0", config).expect("bind").start();
    let addr = handle.local_addr();
    (handle, addr)
}

/// Creates a session with a ring baseline and some contrast-heavy observed
/// edges, sized so mining is real work (but far from slow).
fn seed_session(ctl: &mut Wire, name: &str, vertices: u64, extra: &Value) {
    let mut create = json!({ "cmd": "create_session", "session": name, "vertices": vertices });
    if let Some(fields) = extra.as_object() {
        for (key, value) in fields.iter() {
            create[key.as_str()] = value.clone();
        }
    }
    let created = ctl.request(&create);
    assert_eq!(created["ok"], true, "create_session: {created}");
    let edges: Vec<Value> = (0..vertices)
        .map(|u| json!([u, (u + 1) % vertices, 1.0]))
        .collect();
    let loaded = ctl.request(&json!({
        "cmd": "load_baseline", "session": name, "edges": edges,
    }));
    assert_eq!(loaded["ok"], true, "load_baseline: {loaded}");
    let updates: Vec<Value> = (0..vertices)
        .map(|u| json!([u, (u * 7 + 3) % vertices, 4.0]))
        .collect();
    let observed = ctl.request(&json!({
        "cmd": "observe", "session": name, "updates": updates,
    }));
    assert_eq!(observed["ok"], true, "observe: {observed}");
}

/// A sweep over a huge alpha grid: legitimate work that holds the single
/// worker long enough to observe queue-full shedding, while a deadline (and
/// the `cancel` command) bound it.
fn wedge_request(session: &str, job: &str) -> Value {
    let alphas: Vec<f64> = (0..100_000).map(|i| i as f64 * 1e-4).collect();
    json!({
        "cmd": "sweep", "session": session, "alphas": alphas,
        "deadline_ms": 60_000, "job": job,
    })
}

/// Polls server-wide stats until the worker has claimed a job and the queue
/// is empty again (admission counts accepted-but-unclaimed jobs).
fn wait_for_inflight(ctl: &mut Wire) -> Value {
    for _ in 0..200 {
        let stats = ctl.request(&json!({ "cmd": "stats" }));
        if stats["queue"]["inflight"].as_u64().unwrap_or(0) >= 1
            && stats["queue"]["depth"].as_i64().unwrap_or(0) == 0
        {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("worker never claimed the wedge job");
}

#[test]
fn queue_full_sheds_with_retry_hint_and_recovers() {
    let (handle, addr) = start_server(ServerConfig {
        worker_threads: 1,
        queue_capacity: 1,
        io_threads: 1,
        ..ServerConfig::default()
    });
    let mut ctl = Wire::connect(addr);
    seed_session(&mut ctl, "flood", 300, &json!({}));

    // Occupy the one worker...
    let mut wedge = Wire::connect(addr);
    wedge.send(&wedge_request("flood", "wedge"));
    wait_for_inflight(&mut ctl);

    // ...fill the one queue slot...
    let mut queued = Wire::connect(addr);
    queued.send(&json!({ "cmd": "mine", "session": "flood", "deadline_ms": 30_000 }));
    // The queued job is accepted (no response yet); give the event loop a
    // beat to dispatch it before flooding.
    std::thread::sleep(Duration::from_millis(100));

    // ...and flood: every further mining request must shed immediately with
    // a structured retry hint, not queue or hang.
    let mut floods: Vec<Wire> = (0..5).map(|_| Wire::connect(addr)).collect();
    let mut shed = 0;
    for (index, conn) in floods.iter_mut().enumerate() {
        let reply = conn.request(&json!({
            "cmd": "mine", "session": "flood", "id": index,
        }));
        if reply["error"] == "overloaded" {
            assert_eq!(reply["ok"], false);
            assert_eq!(reply["id"], index);
            let hint = reply["retry_after_ms"].as_u64().expect("retry hint");
            assert!(hint >= 25, "retry_after_ms {hint} below floor");
            shed += 1;
        }
    }
    assert!(shed >= 1, "no request was shed with queue_capacity=1");

    let stats = ctl.request(&json!({ "cmd": "stats" }));
    assert!(
        stats["io"]["shed"].as_u64().unwrap_or(0) >= shed,
        "io.shed missing sheds: {}",
        stats["io"]
    );

    // Unwedge; the queued job and a retry of a shed request both complete.
    let cancelled = ctl.request(&json!({ "cmd": "cancel", "job": "wedge" }));
    assert_eq!(cancelled["cancelled"], true);
    assert_eq!(wedge.recv()["ok"], true);
    assert_eq!(queued.recv()["ok"], true);
    let retried = &mut floods[0];
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let reply = retried.request(&json!({ "cmd": "mine", "session": "flood" }));
        if reply["ok"] == true {
            break;
        }
        assert_eq!(reply["error"], "overloaded");
        assert!(Instant::now() < deadline, "retry never admitted");
        std::thread::sleep(Duration::from_millis(
            reply["retry_after_ms"].as_u64().unwrap_or(50),
        ));
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn observe_mailbox_bounds_cadence_sessions() {
    let (handle, addr) = start_server(ServerConfig {
        worker_threads: 1,
        queue_capacity: 64,
        io_threads: 1,
        observe_mailbox: 1,
        ..ServerConfig::default()
    });
    let mut ctl = Wire::connect(addr);
    seed_session(&mut ctl, "wedge", 300, &json!({}));
    // Every observe on this session completes a re-mining period, so its
    // observes are pooled behind the mailbox.
    seed_session(&mut ctl, "cadence", 40, &json!({ "remine_every": 1 }));

    let mut wedge = Wire::connect(addr);
    wedge.send(&wedge_request("wedge", "wedge"));
    wait_for_inflight(&mut ctl);

    // First observe takes the one mailbox slot and waits for the pool.
    let mut first = Wire::connect(addr);
    first.send(&json!({
        "cmd": "observe", "session": "cadence", "updates": [[1, 2, 1.0]],
    }));
    // Wait until it occupies the mailbox (visible in the shard stats).
    let mut admitted = false;
    for _ in 0..200 {
        let stats = ctl.request(&json!({ "cmd": "stats" }));
        let pending: u64 = stats["shards"]
            .as_array()
            .expect("shards array")
            .iter()
            .map(|s| s["mailbox"]["pending"].as_u64().unwrap_or(0))
            .sum();
        if pending >= 1 {
            admitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(admitted, "first observe never entered the mailbox");

    // Second observe on the same session sheds immediately.
    let mut second = Wire::connect(addr);
    let reply = second.request(&json!({
        "cmd": "observe", "session": "cadence", "updates": [[2, 3, 1.0]], "id": "again",
    }));
    assert_eq!(reply["ok"], false, "mailbox did not shed: {reply}");
    assert_eq!(reply["error"], "overloaded");
    assert!(reply["retry_after_ms"].as_u64().is_some());
    assert_eq!(reply["id"], "again");

    let stats = ctl.request(&json!({ "cmd": "stats" }));
    let mailbox_shed: u64 = stats["shards"]
        .as_array()
        .expect("shards array")
        .iter()
        .map(|s| s["mailbox"]["shed"].as_u64().unwrap_or(0))
        .sum();
    assert!(mailbox_shed >= 1, "shard mailbox shed not counted: {stats}");

    // Unwedge: the admitted observe completes, the shed one succeeds on retry.
    ctl.request(&json!({ "cmd": "cancel", "job": "wedge" }));
    assert_eq!(wedge.recv()["ok"], true);
    let first_reply = first.recv();
    assert_eq!(first_reply["ok"], true, "admitted observe: {first_reply}");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let reply = second.request(&json!({
            "cmd": "observe", "session": "cadence", "updates": [[2, 3, 1.0]],
        }));
        if reply["ok"] == true {
            break;
        }
        assert!(Instant::now() < deadline, "observe retry never admitted");
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn slow_reader_is_backpressured_without_stalling_others() {
    let (handle, addr) = start_server(ServerConfig {
        worker_threads: 1,
        io_threads: 1,
        ..ServerConfig::default()
    });

    // The slow reader pipelines requests whose echoed ids make each response
    // ~32 KiB, and does not read until the end.  Its writes eventually block:
    // past the write high-water mark the server stops reading this
    // connection.  Written from a helper thread so the test can meanwhile
    // prove other connections stay responsive on the same event loop.
    const RESPONSES: usize = 60;
    let pad = "x".repeat(32_000);
    let slow = TcpStream::connect(addr).expect("connect slow");
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut slow_reader = BufReader::new(slow.try_clone().expect("clone"));
    let writer = std::thread::spawn({
        let mut stream = slow;
        let pad = pad.clone();
        move || {
            for index in 0..RESPONSES {
                let request = json!({ "cmd": "ping", "id": format!("{index:05}-{pad}") });
                let mut line = request.to_string();
                line.push('\n');
                stream.write_all(line.as_bytes()).expect("pipeline write");
            }
        }
    });

    // Other connections answer promptly while the slow reader's backlog sits.
    let mut other = Wire::connect(addr);
    for _ in 0..20 {
        let started = Instant::now();
        let pong = other.request(&json!({ "cmd": "ping" }));
        assert_eq!(pong["pong"], true);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "ping stalled behind a slow reader"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Now drain the slow connection: every response arrives, in order.
    for index in 0..RESPONSES {
        let mut line = String::new();
        let n = slow_reader.read_line(&mut line).expect("slow read");
        assert!(n > 0, "slow connection closed early at {index}");
        let reply: Value = serde_json::from_str(line.trim()).expect("json");
        assert_eq!(reply["pong"], true);
        let id = reply["id"].as_str().expect("id");
        assert_eq!(&id[..5], format!("{index:05}"), "responses out of order");
    }
    writer.join().expect("writer thread");

    handle.shutdown();
    handle.join();
}

#[test]
fn disconnect_cancels_job_and_event_loop_stays_live() {
    let (handle, addr) = start_server(ServerConfig {
        worker_threads: 1,
        io_threads: 1,
        ..ServerConfig::default()
    });
    let mut ctl = Wire::connect(addr);
    seed_session(&mut ctl, "live", 300, &json!({}));

    // Start a long job, then vanish without reading the response.
    let mut doomed = Wire::connect(addr);
    doomed.send(&wedge_request("live", "doomed"));
    wait_for_inflight(&mut ctl);
    drop(doomed);

    // The event loop keeps answering instantly on other connections.
    let started = Instant::now();
    assert_eq!(ctl.request(&json!({ "cmd": "ping" }))["pong"], true);
    assert!(started.elapsed() < Duration::from_secs(2));

    // Disconnect cancelled the wedge, so the single worker frees up far
    // sooner than the wedge's 60 s deadline.
    let started = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let mined =
            ctl.request(&json!({ "cmd": "mine", "session": "live", "deadline_ms": 15_000 }));
        if mined["ok"] == true {
            break;
        }
        assert_eq!(mined["error"], "overloaded");
        assert!(
            Instant::now() < deadline,
            "worker still wedged after disconnect"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "disconnected job not cancelled promptly"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn final_unterminated_line_still_parses() {
    let (handle, addr) = start_server(ServerConfig {
        worker_threads: 1,
        io_threads: 1,
        ..ServerConfig::default()
    });

    // `BufRead::lines` parity: a request whose line never got its newline
    // still parses once the peer half-closes.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    (&stream)
        .write_all(br#"{"cmd":"ping","id":7}"#)
        .expect("write");
    stream.shutdown(Shutdown::Write).expect("half-close");

    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read response");
    assert!(n > 0, "no response to the unterminated request");
    let reply: Value = serde_json::from_str(line.trim()).expect("json");
    assert_eq!(reply["ok"], true);
    assert_eq!(reply["pong"], true);
    assert_eq!(reply["id"], 7);

    // Nothing more arrives and the server closes its side.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);

    handle.shutdown();
    handle.join();
}

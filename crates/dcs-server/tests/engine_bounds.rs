//! Integration tests for the engine-backed job bounds: per-job deadlines,
//! the `cancel` protocol command, and cancel-on-disconnect.

use std::time::{Duration, Instant};

use dcs_server::{Client, Server, ServerConfig, ServerHandle};
use serde_json::json;

fn spawn(worker_threads: usize) -> (ServerHandle, String) {
    let config = ServerConfig {
        worker_threads,
        queue_capacity: 8,
        max_vertices: 1_000_000,
        max_job_ms: Some(300_000),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).unwrap().start();
    let addr = handle.local_addr().to_string();
    (handle, addr)
}

/// Deterministic splitmix64 for reproducible synthetic workloads.
fn rng_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Creates a degree-measure session with `edges` random observed edges.
fn seed_session(client: &mut Client, name: &str, vertices: u64, edges: usize) {
    client
        .create_session(name, vertices as usize, json!({ "measure": "degree" }))
        .unwrap();
    let mut state = 0x5eed_u64;
    let mut updates = Vec::with_capacity(edges);
    while updates.len() < edges {
        let u = (rng_next(&mut state) % vertices) as u32;
        let v = (rng_next(&mut state) % vertices) as u32;
        if u != v {
            let w = 1.0 + (rng_next(&mut state) % 100) as f64 / 25.0;
            updates.push((u, v, w));
        }
    }
    client.observe(name, &updates).unwrap();
}

#[test]
fn deadline_returns_best_so_far_instead_of_blocking() {
    let (handle, addr) = spawn(2);
    let mut client = Client::connect(&addr).unwrap();
    seed_session(&mut client, "dl", 500, 3_000);

    // An already-expired deadline: the solver stops at its first checkpoint and
    // still answers with a valid best-so-far result.
    let mined = client.mine_with_deadline("dl", 0).unwrap();
    assert_eq!(mined["termination"], "deadline");
    assert_eq!(mined["result"]["stats"]["termination"], "deadline");
    assert!(mined["result"]["subset"].as_array().is_some());
    assert_eq!(mined["cached"], false);

    // Truncated results are never cached: the same query converges afresh.
    let converged = client.mine("dl").unwrap();
    assert_eq!(converged["cached"], false);
    assert_eq!(converged["termination"], "converged");
    assert!(converged["result"]["stats"]["iterations"].as_u64().unwrap() > 0);
    // ... and the converged result IS cached for the next identical query.
    assert_eq!(client.mine("dl").unwrap()["cached"], true);

    // topk and sweep honour deadlines too.
    let topk = client
        .request(json!({ "cmd": "topk", "session": "dl", "k": 3, "deadline_ms": 0 }))
        .unwrap();
    assert_eq!(topk["termination"], "deadline");
    assert_eq!(topk["stats"]["termination"], "deadline");
    let sweep = client
        .request(json!({
            "cmd": "sweep", "session": "dl", "alphas": [0.0, 1.0], "deadline_ms": 0,
        }))
        .unwrap();
    assert_eq!(sweep["termination"], "deadline");

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn budget_bounds_the_work_of_a_job() {
    let (handle, addr) = spawn(2);
    let mut client = Client::connect(&addr).unwrap();
    seed_session(&mut client, "bg", 400, 2_000);

    let bounded = client
        .request(json!({ "cmd": "mine", "session": "bg", "budget": 10 }))
        .unwrap();
    assert_eq!(bounded["termination"], "budget_exhausted");
    let iterations = bounded["result"]["stats"]["iterations"].as_u64().unwrap();
    // The meter stops at the tick that trips the budget and post-verdict ticks are
    // not recorded; one peel tick is 1 unit, so the count never exceeds the budget.
    assert!(
        iterations <= 10,
        "iterations {iterations} exceed the budget"
    );

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn server_job_cap_applies_without_a_client_deadline() {
    // max_job_ms is the hard anti-wedge guarantee: with a zero cap, even a plain
    // mine (no deadline_ms) comes back truncated instead of running freely.
    let config = ServerConfig {
        worker_threads: 1,
        queue_capacity: 4,
        max_vertices: 1_000_000,
        max_job_ms: Some(0),
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", config).unwrap().start();
    let addr = handle.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    seed_session(&mut client, "cap", 400, 2_000);
    let mined = client.mine("cap").unwrap();
    assert_eq!(mined["termination"], "deadline");
    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn cancel_command_aborts_an_inflight_job() {
    let (handle, addr) = spawn(2);
    let mut client = Client::connect(&addr).unwrap();
    // A large-enough instance that an uncancelled sweep over a huge α grid runs
    // for many seconds — the cancel must land mid-job.
    seed_session(&mut client, "cc", 3_000, 30_000);

    let alphas: Vec<f64> = (0..4_000).map(|i| i as f64 / 1_000.0).collect();
    let worker = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut submitter = Client::connect(&addr).unwrap();
            submitter
                .request(json!({
                    "cmd": "sweep",
                    "session": "cc",
                    "alphas": alphas,
                    "job": "long-sweep",
                }))
                .unwrap()
        }
    });

    // Give the submission time to register and start mining, then cancel from a
    // different connection.
    std::thread::sleep(Duration::from_millis(300));
    let cancelled = client.cancel("long-sweep").unwrap();
    assert_eq!(cancelled["cancelled"], true);

    let response = worker.join().unwrap();
    assert_eq!(response["termination"], "cancelled");
    assert_eq!(response["stats"]["termination"], "cancelled");
    // Best-so-far: whatever grid prefix completed is reported.
    assert!(response["points"].as_array().is_some());

    // The job id is free again once the job completed.
    assert_eq!(client.cancel("long-sweep").unwrap()["cancelled"], false);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn disconnect_cancels_the_inflight_job() {
    // One worker: a wedged job would serialise everything behind it.
    let (handle, addr) = spawn(1);
    let mut client = Client::connect(&addr).unwrap();
    seed_session(&mut client, "dc", 3_000, 30_000);
    client
        .create_session("small", 10, json!({ "measure": "degree" }))
        .unwrap();
    client
        .observe("small", &[(0, 1, 5.0), (1, 2, 4.0)])
        .unwrap();

    // Submit an hours-long sweep from a throwaway connection and drop it
    // without reading the response.
    {
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(&addr).unwrap();
        let alphas: Vec<f64> = (0..100_000).map(|i| i as f64 / 10_000.0).collect();
        let request = serde_json::to_string(&json!({
            "cmd": "sweep", "session": "dc", "alphas": alphas,
        }))
        .unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        // Let the job reach the worker before disconnecting.
        std::thread::sleep(Duration::from_millis(300));
    } // <- dropped: the server should cancel the in-flight sweep

    // With cancel-on-disconnect the single worker frees up almost immediately;
    // without it this mine would sit behind hours of abandoned sweeping.
    let started = Instant::now();
    let mined = client.mine("small").unwrap();
    assert_eq!(mined["result"]["subset"], json!([0, 1, 2]));
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "abandoned job wedged the worker for {:?}",
        started.elapsed()
    );

    client.shutdown().unwrap();
    handle.join();
}

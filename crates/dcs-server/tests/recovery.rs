//! Crash-recovery tests for durable sessions.
//!
//! The core property: a session killed at an arbitrary point and recovered
//! from its directory is observation-for-observation identical to one that
//! never crashed — same version, same counters, same warm-start support, and
//! byte-identical `difference_snapshot` when serialized through the pack
//! writer.  Crashes are simulated two ways: dropping the in-process session
//! (everything written so far stays on disk, exactly what an OS sees after a
//! process kill) and fault injection that tears a WAL record mid-write.

use std::path::{Path, PathBuf};

use dcs_core::{DensityMeasure, StreamingConfig, StreamingDcs};
use dcs_datasets::PackWriter;
use dcs_graph::{SignedGraph, VertexId, Weight};
use dcs_server::{durable, Client, Server, ServerConfig, Session, WalSync};
use serde_json::json;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcs_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> StreamingConfig {
    StreamingConfig {
        remine_every: 3,
        alert_threshold: 0.1,
        measure: DensityMeasure::GraphAffinity,
    }
}

/// Deterministic splitmix64, the repo's stock test RNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic stream of observation batches over `vertices` vertices:
/// mixed quiet noise and a growing hot triangle, so cadence mining fires and
/// records warm-start supports.
fn batches(vertices: u32, count: usize, seed: u64) -> Vec<Vec<(VertexId, VertexId, Weight)>> {
    let mut state = seed;
    (0..count)
        .map(|i| {
            let u = (splitmix64(&mut state) % u64::from(vertices)) as u32;
            let v = (u + 1 + (splitmix64(&mut state) % u64::from(vertices - 1)) as u32) % vertices;
            let w = 0.05 + (splitmix64(&mut state) % 100) as f64 / 400.0;
            if i % 2 == 0 {
                vec![(0, 1, 0.4), (1, 2, 0.4), (0, 2, 0.4), (u, v, w)]
            } else {
                vec![(u, v, w)]
            }
        })
        .collect()
}

/// Serializes the difference snapshot through the pack writer and returns the
/// file bytes — the byte-equality half of the recovery property.
fn snapshot_bytes(monitor: &mut StreamingDcs, path: &PathBuf) -> Vec<u8> {
    let snapshot: std::sync::Arc<SignedGraph> = monitor.difference_snapshot();
    PackWriter::write_graph(&snapshot, path).unwrap();
    std::fs::read(path).unwrap()
}

/// Asserts the full recovery property between a recovered session and an
/// uncrashed control at the same point in the stream.
fn assert_identical(recovered: &mut Session, control: &mut Session, scratch: &Path) {
    assert_eq!(recovered.version(), control.version());
    assert_eq!(
        recovered.monitor().observations(),
        control.monitor().observations()
    );
    assert_eq!(
        recovered.monitor().updates_since_mine(),
        control.monitor().updates_since_mine()
    );
    assert_eq!(
        recovered.monitor().last_support(),
        control.monitor().last_support(),
        "warm-start support diverged"
    );
    assert_eq!(
        recovered.monitor().observed_edges_sorted(),
        control.monitor().observed_edges_sorted()
    );
    let recovered_pack = scratch.join("recovered.dcspack");
    let control_pack = scratch.join("control.dcspack");
    assert_eq!(
        snapshot_bytes(recovered.monitor_mut(), &recovered_pack),
        snapshot_bytes(control.monitor_mut(), &control_pack),
        "difference_snapshot bytes diverged"
    );
}

/// Kills a durable session at randomized WAL offsets (torn mid-record by
/// fault injection) and asserts the recovered session matches an uncrashed
/// control that saw exactly the logged prefix of the stream.
#[test]
fn recovery_is_identical_to_an_uncrashed_session() {
    let data_dir = temp_dir("identity");
    let stream = batches(24, 20, 0xdc5_0001);
    let mut rng = 0xdc5_0002u64;
    for trial in 0..6 {
        let name = format!("s{trial}");
        let mut durable_session =
            durable::create_durable_session(&data_dir, &name, 24, config(), WalSync::Group)
                .unwrap();
        // Tear the log at a random byte offset; trial 0 keeps the log intact
        // (clean-kill recovery, no torn tail).
        if trial > 0 {
            let cut = 40 + splitmix64(&mut rng) % 1200;
            durable_session.wal_fault_after_bytes(Some(cut));
        }
        // Half the trials checkpoint mid-stream so recovery exercises
        // checkpoint-load + WAL-tail replay, not just full replay.
        let checkpoint_at = if trial % 2 == 1 { Some(4) } else { None };
        let mut control = Session::new(24, config()).unwrap();
        let mut survived = 0;
        for (i, batch) in stream.iter().enumerate() {
            if durable_session.observe(batch).is_err() {
                break;
            }
            survived = i + 1;
            if checkpoint_at == Some(i) {
                durable_session.checkpoint().unwrap();
            }
        }
        for batch in &stream[..survived] {
            control.observe(batch).unwrap();
        }
        // The crash: drop the in-process session without flushing.
        drop(durable_session);
        let dir = data_dir.join(durable::encode_session_dir(&name));
        let (recovered_name, mut recovered) = durable::open_session_dir(&dir, WalSync::Group)
            .unwrap_or_else(|e| panic!("trial {trial}: recovery failed: {e}"));
        assert_eq!(recovered_name, name);
        assert_identical(&mut recovered, &mut control, &data_dir);
        // A recovered session keeps working: the stream continues and both
        // sides stay in lockstep.
        for batch in &stream[survived..] {
            recovered.observe(batch).unwrap();
            control.observe(batch).unwrap();
        }
        assert_identical(&mut recovered, &mut control, &data_dir);
    }
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// A torn final record (partial line, no newline) is truncated on recovery
/// and the session resumes appending after the last complete record.
#[test]
fn torn_wal_tail_is_truncated_on_recovery() {
    let data_dir = temp_dir("torn_tail");
    let stream = batches(16, 6, 0xdc5_0010);
    let mut session =
        durable::create_durable_session(&data_dir, "torn", 16, config(), WalSync::Group).unwrap();
    let mut control = Session::new(16, config()).unwrap();
    for batch in &stream {
        session.observe(batch).unwrap();
        control.observe(batch).unwrap();
    }
    drop(session);
    let dir = data_dir.join(durable::encode_session_dir("torn"));
    // Append a torn record by hand: a prefix of a plausible observe line.
    let wal = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .expect("a WAL segment exists");
    let intact = std::fs::read(&wal).unwrap();
    let mut torn = intact.clone();
    torn.extend_from_slice(br#"{"kind":"observe","v":99,"updates":[[0,1"#);
    std::fs::write(&wal, &torn).unwrap();

    let (_, mut recovered) = durable::open_session_dir(&dir, WalSync::Group).unwrap();
    assert_identical(&mut recovered, &mut control, &data_dir);
    // Recovery repaired the file in place: the torn bytes are gone.
    assert_eq!(std::fs::read(&wal).unwrap(), intact);
    // And the log accepts new records after the repair.
    recovered.observe(&[(3, 4, 0.5)]).unwrap();
    control.observe(&[(3, 4, 0.5)]).unwrap();
    assert_eq!(recovered.version(), control.version());
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// A corrupt newest checkpoint falls back to the previous generation, whose
/// WAL segments are still on disk (the pruner keeps one generation of
/// history), and replay reconstructs the exact same state.
#[test]
fn corrupt_checkpoint_falls_back_a_generation() {
    let data_dir = temp_dir("fallback");
    let stream = batches(16, 15, 0xdc5_0020);
    let mut session =
        durable::create_durable_session(&data_dir, "fb", 16, config(), WalSync::Group).unwrap();
    let mut control = Session::new(16, config()).unwrap();
    for (i, batch) in stream.iter().enumerate() {
        session.observe(batch).unwrap();
        control.observe(batch).unwrap();
        if i == 4 || i == 9 {
            assert!(session.checkpoint().unwrap());
        }
    }
    drop(session);
    let dir = data_dir.join(durable::encode_session_dir("fb"));
    let mut checkpoints: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("ckpt-"))
        })
        .collect();
    checkpoints.sort();
    assert_eq!(checkpoints.len(), 2, "pruner keeps exactly two generations");
    // Corrupt the newest checkpoint's payload (flip bytes past the header).
    let newest = checkpoints.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    bytes[mid + 1] ^= 0xff;
    std::fs::write(newest, &bytes).unwrap();

    let (_, mut recovered) = durable::open_session_dir(&dir, WalSync::Group).unwrap();
    assert_identical(&mut recovered, &mut control, &data_dir);
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Offline inspection (`dcs sessions`) reports the recoverable version
/// without repairing anything.
#[test]
fn inspect_reports_recoverable_state() {
    let data_dir = temp_dir("inspect");
    let stream = batches(16, 5, 0xdc5_0030);
    let mut session =
        durable::create_durable_session(&data_dir, "looked-at", 16, config(), WalSync::Group)
            .unwrap();
    let mut version = 0;
    for batch in &stream {
        session.observe(batch).unwrap();
        version = session.version();
    }
    drop(session);
    let summaries = durable::inspect_data_dir(&data_dir).unwrap();
    assert_eq!(summaries.len(), 1);
    assert_eq!(summaries[0].name, "looked-at");
    assert_eq!(summaries[0].vertices, 16);
    assert_eq!(summaries[0].recovered_version, Some(version));
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// The wire-level story: a server with a data directory restarts and every
/// durable session comes back at its acked version; `create_session` against
/// an existing directory recovers on demand; dropping a durable session
/// removes its directory.
#[test]
fn server_restart_recovers_durable_sessions() {
    let data_dir = temp_dir("server_restart");
    let server_config = || ServerConfig {
        data_dir: Some(data_dir.clone()),
        ..ServerConfig::default()
    };

    let handle = Server::bind("127.0.0.1:0", server_config())
        .expect("bind")
        .start();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let created = client
        .create_session("tenant", 32, json!({ "durable": true, "remine_every": 3 }))
        .unwrap();
    assert_eq!(created["durable"], true);
    assert_eq!(created["recovered"], false);
    let ring: Vec<(u32, u32, f64)> = (0..32u32).map(|v| (v, (v + 1) % 32, 1.0)).collect();
    client.load_baseline("tenant", &ring).unwrap();
    let mut acked_version = 0;
    for batch in batches(32, 12, 0xdc5_0040) {
        let response = client.session("tenant").observe(&batch).unwrap();
        acked_version = response["version"].as_u64().unwrap();
    }
    // Kill the server without a clean shutdown of the session.
    drop(client);
    handle.join();

    let handle = Server::bind("127.0.0.1:0", server_config())
        .expect("rebind")
        .start();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let stats = client.session("tenant").stats().unwrap();
    assert_eq!(stats["version"], acked_version);
    assert_eq!(stats["durable"], true);
    assert_eq!(stats["baseline_edges"], 32);
    // The recovered session is live, not a snapshot: observes keep working.
    let bumped = client.session("tenant").observe(&[(1, 2, 0.5)]).unwrap();
    assert_eq!(bumped["version"], acked_version + 1);
    // A durable create against a live name is a conflict, same as ephemeral.
    let conflict = client
        .create_session("tenant", 32, json!({ "durable": true }))
        .unwrap_err();
    assert!(matches!(conflict, dcs_server::ServerError::Remote(ref msg)
        if msg == "session \"tenant\" already exists"));

    // Recover-on-demand: a directory created while this server was already
    // running (e.g. copied in, or by an offline tool) is picked up by a
    // durable create rather than treated as a conflict.
    let mut offline =
        durable::create_durable_session(&data_dir, "adopted", 8, config(), WalSync::Group).unwrap();
    offline.observe(&[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
    let offline_version = offline.version();
    drop(offline);
    let adopted = client
        .create_session("adopted", 8, json!({ "durable": true }))
        .unwrap();
    assert_eq!(adopted["recovered"], true);
    let stats = client.session("adopted").stats().unwrap();
    assert_eq!(stats["version"], offline_version);

    // Dropping a durable session deletes its directory.
    client.session("adopted").drop_session().unwrap();
    assert!(!data_dir
        .join(durable::encode_session_dir("adopted"))
        .exists());
    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// Without `serve --data-dir` a durable create is a structured error, and
/// ephemeral sessions never write to disk.
#[test]
fn durable_create_requires_a_data_dir() {
    let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .start();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let error = client
        .create_session("nope", 8, json!({ "durable": true }))
        .unwrap_err();
    assert!(matches!(error, dcs_server::ServerError::Remote(ref msg)
        if msg == "bad request: durable sessions require a server data directory (serve --data-dir)"));
    let created = client.create_session("mem", 8, json!({})).unwrap();
    assert_eq!(created["backing"], "memory");
    assert!(created["durable"].is_null());
    client.shutdown().unwrap();
    handle.join();
}

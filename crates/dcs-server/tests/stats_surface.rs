//! Integration test of the server-wide `stats` observability surface: a real
//! server, real mining jobs, and assertions that every advertised counter —
//! queue depth, cache hit rate, termination counts, per-kind / per-measure
//! latency percentiles — advances with the workload that feeds it.

use dcs_server::{Client, Server, ServerConfig};
use serde_json::json;

#[test]
fn stats_surface_tracks_jobs_cache_and_terminations() {
    let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
        .unwrap()
        .start();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Fresh server: no jobs, no cache traffic, an empty queue.
    let before = client.request(json!({ "cmd": "stats" })).unwrap();
    assert_eq!(before["sessions"], 0);
    assert_eq!(before["jobs"]["completed"], 0);
    assert_eq!(before["queue"]["depth"], 0);
    assert_eq!(before["queue"]["inflight"], 0);
    assert_eq!(before["cache"]["hits"], 0);
    let base_requests = before["requests"]["total"].as_u64().unwrap();
    assert!(base_requests >= 1, "the stats request itself is counted");

    client
        .create_session("obs", 32, json!({ "measure": "affinity" }))
        .unwrap();
    client.load_baseline("obs", &[(0, 1, 1.0)]).unwrap();
    client
        .observe("obs", &[(0, 1, 5.0), (0, 2, 4.0), (1, 2, 4.0)])
        .unwrap();

    // Four mining jobs with known outcomes: a converged affinity solve, a
    // cache hit of the same spec, and two degree solves whose bounds trip
    // deterministically (one-unit budget, already-expired deadline).  The
    // bounded jobs use the degree measure so they cannot hit the converged
    // affinity cache entry.
    let solved = client.mine("obs").unwrap();
    assert_eq!(solved["cached"], false);
    assert_eq!(solved["termination"], "converged");
    let hit = client.mine("obs").unwrap();
    assert_eq!(hit["cached"], true);
    let budgeted = client
        .request(json!({
            "cmd": "mine", "session": "obs", "measure": "degree", "budget": 1,
        }))
        .unwrap();
    assert_eq!(budgeted["termination"], "budget_exhausted");
    let expired = client
        .request(json!({
            "cmd": "mine", "session": "obs", "measure": "degree", "deadline_ms": 0,
        }))
        .unwrap();
    assert_eq!(expired["termination"], "deadline");

    // An error advances the error counter; cancelling an unknown job is a
    // successful request that cancels nothing.
    assert!(client
        .request(json!({ "cmd": "mine", "session": "nope" }))
        .is_err());
    let cancel = client
        .request(json!({ "cmd": "cancel", "job": "ghost" }))
        .unwrap();
    assert_eq!(cancel["cancelled"], false);

    let stats = client.request(json!({ "cmd": "stats" })).unwrap();
    assert_eq!(stats["sessions"], 1);

    // Jobs: four completed, one of them from the cache.
    assert_eq!(stats["jobs"]["completed"], 4);
    assert_eq!(stats["jobs"]["cached"], 1);
    assert_eq!(stats["jobs"]["inflight_named"], 0);

    // Terminations: one per solved job; the cache hit counts in none.
    assert_eq!(stats["terminations"]["converged"], 1);
    assert_eq!(stats["terminations"]["budget_exhausted"], 1);
    assert_eq!(stats["terminations"]["deadline"], 1);
    assert_eq!(stats["terminations"]["cancelled"], 0);

    // Latency percentiles come from the three solved jobs (cache hits are
    // excluded so sub-millisecond lookups don't drown the solve distribution).
    let mine = &stats["jobs"]["wall_us_by_kind"]["mine"];
    assert_eq!(mine["count"], 3);
    let p50 = mine["p50_us"].as_u64().unwrap();
    let p95 = mine["p95_us"].as_u64().unwrap();
    let p99 = mine["p99_us"].as_u64().unwrap();
    assert!(
        p50 > 0 && p50 <= p95 && p95 <= p99,
        "p50={p50} p95={p95} p99={p99}"
    );
    assert!(mine["max_us"].as_u64().unwrap() > 0);
    assert!(mine["mean_us"].as_f64().unwrap() > 0.0);
    assert_eq!(stats["jobs"]["wall_us_by_kind"]["topk"]["count"], 0);
    assert_eq!(stats["jobs"]["wall_us_by_measure"]["affinity"]["count"], 1);
    assert_eq!(stats["jobs"]["wall_us_by_measure"]["degree"]["count"], 2);

    // Queue: all four jobs passed through the bounded queue and drained.
    assert_eq!(stats["queue"]["depth"], 0);
    assert_eq!(stats["queue"]["inflight"], 0);
    assert_eq!(stats["queue"]["executed"], 4);
    assert_eq!(stats["queue"]["rejected"], 0);
    assert!(stats["queue"]["capacity"].as_u64().unwrap() > 0);
    assert!(stats["queue"]["workers"].as_u64().unwrap() > 0);
    assert_eq!(stats["queue"]["wait_us"]["count"], 4);

    // Cache: one hit, three misses (the bounded jobs look up, miss, and are
    // never stored because they did not converge).
    assert_eq!(stats["cache"]["hits"], 1);
    assert_eq!(stats["cache"]["misses"], 3);
    assert_eq!(stats["cache"]["evictions"], 0);
    let hit_rate = stats["cache"]["hit_rate"].as_f64().unwrap();
    assert!((hit_rate - 0.25).abs() < 1e-9, "hit_rate={hit_rate}");

    // Request and observe counters.
    assert!(stats["requests"]["total"].as_u64().unwrap() > base_requests);
    assert!(stats["requests"]["errors"].as_u64().unwrap() >= 1);
    assert_eq!(stats["observes"]["batches"], 1);
    assert_eq!(stats["observes"]["updates"], 3);
    assert!(stats["observes"]["per_sec"].as_f64().unwrap() >= 0.0);
    assert!(stats["uptime_ms"].as_u64().is_some());

    client.shutdown().unwrap();
    handle.join();
}

/// The per-session `stats` shape stays intact alongside the server-wide one,
/// and surfaces the cache eviction counter.
#[test]
fn per_session_stats_still_carry_cache_counters() {
    let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
        .unwrap()
        .start();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client.create_session("s", 8, json!({})).unwrap();
    client.observe("s", &[(0, 1, 3.0), (1, 2, 2.0)]).unwrap();
    client.mine("s").unwrap();
    client.mine("s").unwrap();

    let stats = client.stats("s").unwrap();
    assert_eq!(stats["observations"], 2);
    assert_eq!(stats["cache"]["entries"], 1);
    assert_eq!(stats["cache"]["hits"], 1);
    assert_eq!(stats["cache"]["misses"], 1);
    assert_eq!(stats["cache"]["evictions"], 0);

    client.shutdown().unwrap();
    handle.join();
}

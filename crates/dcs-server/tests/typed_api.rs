//! Tests of the typed protocol layer over a live server: the
//! `Client::session` handle API, the `"proto"` version field, and the
//! backward-compatible legacy wrappers.

use dcs_server::{Client, Server, ServerConfig, ServerError, PROTO_VERSION};
use serde_json::json;

fn start_server() -> dcs_server::ServerHandle {
    Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port")
        .start()
}

/// The full session lifecycle through `SessionHandle` methods only.
#[test]
fn session_handle_round_trip() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.create_session("typed", 16, json!({})).unwrap();

    let mut session = client.session("typed");
    assert_eq!(session.name(), "typed");
    let ring: Vec<(u32, u32, f64)> = (0..16u32).map(|v| (v, (v + 1) % 16, 1.0)).collect();
    let loaded = session.load_baseline(&ring).unwrap();
    assert_eq!(loaded["baseline_edges"], 16);

    let observed = session
        .observe(&[(0, 1, 4.0), (1, 2, 4.0), (0, 2, 4.0)])
        .unwrap();
    assert_eq!(observed["applied"], 3);
    assert_eq!(observed["version"], 4);

    let mined = session.mine().unwrap();
    assert_eq!(mined["result"]["subset"], json!([0, 1, 2]));

    let ranked = session.topk(2).unwrap();
    assert!(ranked["results"].as_array().is_some());
    let swept = session.sweep(Some(&[0.5, 1.0])).unwrap();
    assert_eq!(swept["points"].as_array().unwrap().len(), 2);

    let stats = session.stats().unwrap();
    assert_eq!(stats["version"], 4);
    assert_eq!(stats["durable"], false);

    let dropped = session.drop_session().unwrap();
    assert_eq!(dropped["dropped"], true);
    assert!(client.list_sessions().unwrap()["sessions"]
        .as_array()
        .unwrap()
        .is_empty());
    client.shutdown().unwrap();
    handle.join();
}

/// Every response carries the additive `"proto"` field; clients declaring
/// the current version are accepted and unknown versions get a structured
/// error naming both sides.
#[test]
fn proto_version_is_stamped_and_checked() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(pong["proto"].as_u64(), Some(PROTO_VERSION));

    // Declaring the spoken version is accepted and echoed.
    let accepted = client
        .request(json!({ "cmd": "ping", "proto": 1 }))
        .unwrap();
    assert_eq!(accepted["pong"], true);
    assert_eq!(accepted["proto"].as_u64(), Some(PROTO_VERSION));

    // An unknown major version is rejected with a structured error.
    let rejected = client
        .request(json!({ "cmd": "ping", "proto": 2 }))
        .unwrap_err();
    assert!(matches!(rejected, ServerError::Remote(ref msg)
        if msg == "unsupported proto 2 (server speaks proto 1)"));

    // A malformed declaration is a bad request, not a crash.
    let malformed = client
        .request(json!({ "cmd": "ping", "proto": "one" }))
        .unwrap_err();
    assert!(matches!(malformed, ServerError::Remote(ref msg)
        if msg == "bad request: field \"proto\" must be a non-negative integer"));

    // Errors are stamped too.
    let mut raw = Client::connect(handle.local_addr()).unwrap();
    let error = raw.request(json!({ "cmd": "stats", "session": "ghost" }));
    assert!(error.is_err());
    client.shutdown().unwrap();
    handle.join();
}

/// The historical string-based helpers still speak the same wire protocol
/// (they now delegate to the typed layer internally).
#[test]
fn legacy_wrappers_still_work() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client
        .create_session("legacy", 8, json!({ "measure": "affinity" }))
        .unwrap();
    client
        .load_baseline("legacy", &[(0, 1, 1.0), (1, 2, 1.0)])
        .unwrap();
    let observed = client.observe("legacy", &[(0, 1, 3.0)]).unwrap();
    assert_eq!(observed["applied"], 1);
    let mined = client.mine("legacy").unwrap();
    assert_eq!(mined["ok"], true);
    let with_measure = client.mine_with_measure("legacy", "degree").unwrap();
    assert_eq!(with_measure["ok"], true);
    assert_eq!(with_measure["cached"], false);
    let deadline = client.mine_with_deadline("legacy", 10_000).unwrap();
    assert_eq!(deadline["ok"], true);
    assert_eq!(client.stats("legacy").unwrap()["vertices"], 8);
    client.drop_session("legacy").unwrap();
    client.shutdown().unwrap();
    handle.join();
}

//! End-to-end tests of the mining service: a real server on an ephemeral
//! port, concurrent clients streaming observation batches, and a full
//! observe → mine → alert round trip with cache semantics.

use dcs_server::{Client, Server, ServerConfig, ServerError};
use serde_json::json;

fn start_server() -> dcs_server::ServerHandle {
    Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind ephemeral port")
        .start()
}

/// The acceptance scenario: create a session, load a baseline, stream ≥ 100
/// observation batches from two concurrent clients, mine the correct DCS,
/// observe a triggered alert, and get the repeat mine served from the cache.
#[test]
fn concurrent_observe_mine_alert_round_trip() {
    let handle = start_server();
    let addr = handle.local_addr();

    let mut control = Client::connect(addr).expect("connect control client");
    control
        .create_session(
            "traffic",
            64,
            json!({ "alert_threshold": 5.0, "measure": "affinity" }),
        )
        .unwrap();

    // Baseline: a ring of expected strength 1 over all 64 vertices.
    let ring: Vec<(u32, u32, f64)> = (0..64u32).map(|v| (v, (v + 1) % 64, 1.0)).collect();
    let loaded = control.load_baseline("traffic", &ring).unwrap();
    assert_eq!(loaded["baseline_edges"], 64);

    // Two concurrent clients each stream 60 observation batches (120 total):
    // client A replays quiet ring traffic, client B grows a hot triangle
    // among {3, 4, 5}.
    let writer = |role: usize| {
        let mut client = Client::connect(addr).expect("connect writer");
        let mut applied = 0u64;
        for batch in 0..60u32 {
            let updates: Vec<(u32, u32, f64)> = if role == 0 {
                let v = batch % 64;
                vec![(v, (v + 1) % 64, 0.02), ((v + 7) % 64, (v + 8) % 64, 0.015)]
            } else {
                vec![(3, 4, 0.35), (4, 5, 0.35), (3, 5, 0.35)]
            };
            let response = client.observe("traffic", &updates).unwrap();
            assert_eq!(response["ok"], true);
            applied += response["applied"].as_u64().unwrap();
            assert_eq!(response["ignored"], 0);
        }
        applied
    };
    let totals: Vec<u64> = std::thread::scope(|scope| {
        let a = scope.spawn(|| writer(0));
        let b = scope.spawn(|| writer(1));
        vec![a.join().unwrap(), b.join().unwrap()]
    });
    assert_eq!(totals[0], 120);
    assert_eq!(totals[1], 180);

    let stats = control.stats("traffic").unwrap();
    assert_eq!(stats["observations"], 300);
    // 300 observations on top of version 1 (the baseline load advanced the
    // session version from 0).
    assert_eq!(stats["version"], 301);

    // Mine: the hot triangle must be the DCS, and with weights ~0.35·60 = 21
    // per edge against a baseline of ~1, the affinity contrast (~14) clears
    // the alert threshold of 5.
    let mined = control.mine("traffic").unwrap();
    assert_eq!(mined["cached"], false);
    assert_eq!(mined["result"]["subset"], json!([3, 4, 5]));
    assert_eq!(mined["result"]["triggered"], true);
    assert_eq!(mined["result"]["is_positive_clique"], true);
    assert!(mined["result"]["density_difference"].as_f64().unwrap() > 5.0);

    // Unchanged session: the repeat mine is served from the cache — also for
    // a different client connection (the cache is per session, not per
    // connection).
    let again = control.mine("traffic").unwrap();
    assert_eq!(again["cached"], true);
    assert_eq!(again["result"]["subset"], json!([3, 4, 5]));
    let mut other = Client::connect(addr).unwrap();
    assert_eq!(other.mine("traffic").unwrap()["cached"], true);

    // One more observation invalidates the cache.
    control.observe("traffic", &[(10, 11, 0.2)]).unwrap();
    let after = control.mine("traffic").unwrap();
    assert_eq!(after["cached"], false);
    assert_eq!(after["result"]["subset"], json!([3, 4, 5]));

    let cache_stats = control.stats("traffic").unwrap();
    assert!(cache_stats["cache"]["hits"].as_u64().unwrap() >= 2);

    control.shutdown().unwrap();
    handle.join();
}

#[test]
fn topk_sweep_and_stats_over_the_wire() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    client
        .create_session("s", 12, json!({ "measure": "affinity" }))
        .unwrap();
    client.load_baseline("s", &[(0, 1, 1.0)]).unwrap();
    // Two disjoint hot groups of different strength.
    client
        .observe(
            "s",
            &[
                (0, 1, 9.0),
                (0, 2, 8.0),
                (1, 2, 8.0),
                (5, 6, 4.0),
                (6, 7, 4.0),
                (5, 7, 4.0),
            ],
        )
        .unwrap();

    let topk = client.topk("s", 3).unwrap();
    let results = topk["results"].as_array().unwrap();
    assert_eq!(results.len(), 2);
    assert_eq!(results[0]["rank"], 1);
    assert_eq!(results[0]["subset"], json!([0, 1, 2]));
    assert_eq!(results[1]["subset"], json!([5, 6, 7]));
    assert!(results[0]["objective"].as_f64().unwrap() >= results[1]["objective"].as_f64().unwrap());
    // Identical top-k: cached.
    assert_eq!(client.topk("s", 3).unwrap()["cached"], true);
    // Different k: its own cache entry.
    assert_eq!(client.topk("s", 1).unwrap()["cached"], false);

    let sweep = client.sweep("s", Some(&[0.0, 1.0, 2.0])).unwrap();
    let points = sweep["points"].as_array().unwrap();
    assert_eq!(points.len(), 3);
    assert_eq!(points[0]["alpha"], 0);
    // The α-scaled objective is non-increasing in α.
    let objectives: Vec<f64> = points
        .iter()
        .map(|p| p["objective"].as_f64().unwrap())
        .collect();
    assert!(objectives[0] >= objectives[1] - 1e-9);
    assert!(objectives[1] >= objectives[2] - 1e-9);

    let server_stats = client.server_stats().unwrap();
    assert_eq!(server_stats["sessions"], 1);
    assert!(server_stats["jobs_executed"].as_u64().unwrap() >= 3);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn pack_backed_sessions_over_the_wire() {
    // The same baseline ring, once as a pack file and once uploaded as
    // protocol edges: both sessions must mine the same contrast subgraph,
    // and the pack session must report its backing in stats.
    let ring: Vec<(u32, u32, f64)> = (0..32u32).map(|v| (v, (v + 1) % 32, 1.0)).collect();
    let mut builder = dcs_graph::GraphBuilder::new(32);
    builder.add_edges(ring.iter().copied());
    let baseline = builder.build();
    let pack_path =
        std::env::temp_dir().join(format!("dcs_server_roundtrip_{}.pack", std::process::id()));
    dcs_datasets::PackWriter::write_graph(&baseline, &pack_path).unwrap();

    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let created = client
        .create_session_from_pack(
            "packed",
            pack_path.to_str().unwrap(),
            json!({ "measure": "affinity" }),
        )
        .unwrap();
    assert_eq!(created["vertices"], 32);
    assert_eq!(created["backing"], "pack");

    client
        .create_session("memory", 32, json!({ "measure": "affinity" }))
        .unwrap();
    client.load_baseline("memory", &ring).unwrap();

    let hot = [(3u32, 4u32, 6.0f64), (4, 5, 6.0), (3, 5, 6.0)];
    client.observe("packed", &hot).unwrap();
    client.observe("memory", &hot).unwrap();

    let from_pack = client.mine("packed").unwrap();
    let from_memory = client.mine("memory").unwrap();
    assert_eq!(from_pack["result"]["subset"], json!([3, 4, 5]));
    assert_eq!(
        from_pack["result"]["subset"],
        from_memory["result"]["subset"]
    );
    assert_eq!(
        from_pack["result"]["affinity_difference"],
        from_memory["result"]["affinity_difference"]
    );

    let stats = client.stats("packed").unwrap();
    assert_eq!(stats["backing"], "pack");
    assert_eq!(stats["baseline_edges"], 32);
    assert!(stats["pack_open_ms"].as_f64().unwrap() >= 0.0);
    assert_eq!(client.stats("memory").unwrap()["backing"], "memory");
    assert_eq!(client.stats("memory").unwrap()["pack_open_ms"], json!(null));

    // Declared vertex counts are cross-checked against the pack header.
    assert!(matches!(
        client.request(json!({
            "cmd": "create_session",
            "session": "mismatch",
            "pack": pack_path.to_str().unwrap(),
            "vertices": 7,
        })),
        Err(ServerError::Remote(_))
    ));
    // A missing pack file is a clean error, not a wedged session.
    assert!(matches!(
        client.create_session_from_pack("ghost", "/nonexistent.pack", json!({})),
        Err(ServerError::Remote(_))
    ));
    assert_eq!(
        client.list_sessions().unwrap()["sessions"],
        json!(["memory", "packed"])
    );

    client.shutdown().unwrap();
    handle.join();
    std::fs::remove_file(&pack_path).ok();
}

#[test]
fn observe_with_cadence_raises_alerts_over_the_wire() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client
        .create_session(
            "cadence",
            16,
            json!({ "remine_every": 3, "alert_threshold": 2.0 }),
        )
        .unwrap();

    // Three strong updates complete one re-mining period: the response
    // carries a triggered alert inline, without an explicit mine command.
    let response = client
        .observe("cadence", &[(0, 1, 9.0), (0, 2, 9.0), (1, 2, 9.0)])
        .unwrap();
    let alerts = response["alerts"].as_array().unwrap();
    assert_eq!(alerts.len(), 1);
    assert_eq!(alerts[0]["triggered"], true);
    assert_eq!(alerts[0]["subset"], json!([0, 1, 2]));
    assert_eq!(alerts[0]["observations"], 3);

    client.shutdown().unwrap();
    handle.join();
}

#[test]
fn session_management_and_errors_over_the_wire() {
    let handle = start_server();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Unknown session and bad requests surface as remote errors.
    assert!(matches!(client.mine("nope"), Err(ServerError::Remote(_))));
    assert!(matches!(
        client.request(json!({ "cmd": "frobnicate" })),
        Err(ServerError::Remote(_))
    ));
    assert!(matches!(
        client.request(json!({ "cmd": "create_session", "session": "x" })),
        Err(ServerError::Remote(_))
    ));

    client.create_session("a", 4, json!({})).unwrap();
    client.create_session("b", 4, json!({})).unwrap();
    assert!(matches!(
        client.create_session("a", 4, json!({})),
        Err(ServerError::Remote(_))
    ));
    assert_eq!(
        client.list_sessions().unwrap()["sessions"],
        json!(["a", "b"])
    );
    client.drop_session("a").unwrap();
    assert_eq!(client.list_sessions().unwrap()["sessions"], json!(["b"]));

    // Request ids are echoed.
    let response = client
        .request(json!({ "cmd": "ping", "id": "req-7" }))
        .unwrap();
    assert_eq!(response["id"], "req-7");

    // `stats` without a session returns the server-wide payload; with an
    // unknown session it still fails.
    let server_stats = client.request(json!({ "cmd": "stats" })).unwrap();
    assert_eq!(server_stats["sessions"], 1);
    assert!(server_stats["queue"]["capacity"].as_u64().unwrap() > 0);
    let err = client.request(json!({ "cmd": "stats", "session": "nope" }));
    assert!(err.is_err(), "stats on an unknown session must fail");
    assert!(client.ping().is_ok(), "connection survives errors");

    client.shutdown().unwrap();
    handle.join();
}

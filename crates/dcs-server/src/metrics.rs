//! Server-wide observability: every counter, gauge and histogram behind the
//! server-level `stats` command.
//!
//! One [`ServerMetrics`] lives in the server's shared state.  The hot paths
//! (dispatch, job completion, observes) touch only lock-free handles from
//! `dcs-obs`; rendering the `stats` payload takes snapshots and walks the
//! session registry, and is the only place that locks anything.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dcs_obs::metrics::{Counter, HistogramSnapshot, MetricsRegistry};
use serde_json::{json, Value};

use crate::jobs::JobTable;
use crate::jobs::WorkerPool;
use crate::session::SessionRegistry;

/// The `termination` tokens the `stats` payload always reports, even at zero.
const TERMINATION_TOKENS: [&str; 4] = ["converged", "deadline", "cancelled", "budget_exhausted"];

/// The per-kind latency histograms the `stats` payload always reports.
const KIND_TOKENS: [&str; 3] = ["mine", "topk", "sweep"];

/// The per-measure latency histograms the `stats` payload always reports.
const MEASURE_TOKENS: [&str; 2] = ["affinity", "degree"];

/// Aggregated server-side instrumentation (requests, jobs, observes,
/// terminations, latency distributions).
#[derive(Debug)]
pub struct ServerMetrics {
    registry: MetricsRegistry,
    started: Instant,
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    observe_batches: Arc<Counter>,
    observe_updates: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    jobs_cached: Arc<Counter>,
}

impl ServerMetrics {
    /// Fresh instrumentation; the clock for `uptime_ms` and the observe rate
    /// starts now.
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        ServerMetrics {
            started: Instant::now(),
            requests: registry.counter("requests"),
            errors: registry.counter("errors"),
            observe_batches: registry.counter("observe_batches"),
            observe_updates: registry.counter("observe_updates"),
            jobs_completed: registry.counter("jobs_completed"),
            jobs_cached: registry.counter("jobs_cached"),
            registry,
        }
    }

    /// Counts one dispatched request (any command).
    pub fn note_request(&self) {
        self.requests.inc();
    }

    /// Counts one request that produced an error response.
    pub fn note_error(&self) {
        self.errors.inc();
    }

    /// Counts one observe batch and the updates it applied.
    pub fn note_observe(&self, applied: u64) {
        self.observe_batches.inc();
        self.observe_updates.add(applied);
    }

    /// Records one completed mining job: wall time into the per-kind and
    /// per-measure latency histograms, its termination, and whether it was
    /// answered from the session cache (cache hits skip the histograms — a
    /// sub-millisecond lookup would drown the solve distribution).
    pub fn record_job(
        &self,
        kind: &'static str,
        measure: &'static str,
        wall: Duration,
        termination: Option<&str>,
        cached: bool,
    ) {
        self.jobs_completed.inc();
        if cached {
            self.jobs_cached.inc();
            return;
        }
        if let Some(token) = termination {
            self.registry
                .counter(&format!("terminations.{token}"))
                .inc();
        }
        self.registry
            .histogram(&format!("job_wall_us.kind.{kind}"))
            .record_duration(wall);
        self.registry
            .histogram(&format!("job_wall_us.measure.{measure}"))
            .record_duration(wall);
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Completed mining jobs (cached or solved).
    pub fn jobs_completed(&self) -> u64 {
        self.jobs_completed.get()
    }

    /// Renders the server-wide `stats` payload: queue state from `pool`,
    /// named in-flight jobs from `jobs`, cache counters aggregated over every
    /// session of `registry`, plus this struct's own counters and latency
    /// summaries.
    pub fn render(&self, pool: &WorkerPool, jobs: &JobTable, registry: &SessionRegistry) -> Value {
        let uptime_ms = self.uptime_ms();

        // Aggregate per-session cache counters under brief per-session locks.
        let mut sessions = 0u64;
        let (mut entries, mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64, 0u64);
        for (_, session) in registry.sessions() {
            let guard = session
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let stats = guard.stats();
            sessions += 1;
            entries += stats.cache_entries as u64;
            hits += stats.cache_hits;
            misses += stats.cache_misses;
            evictions += stats.cache_evictions;
        }
        let lookups = hits + misses;
        let hit_rate = if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        };

        let terminations = Value::Object(
            TERMINATION_TOKENS
                .iter()
                .map(|token| {
                    let count = self
                        .registry
                        .counter(&format!("terminations.{token}"))
                        .get();
                    (token.to_string(), json!(count))
                })
                .collect(),
        );
        let by_kind = Value::Object(
            KIND_TOKENS
                .iter()
                .map(|kind| {
                    let snap = self
                        .registry
                        .histogram(&format!("job_wall_us.kind.{kind}"))
                        .snapshot();
                    (kind.to_string(), histogram_summary(&snap))
                })
                .collect(),
        );
        let by_measure = Value::Object(
            MEASURE_TOKENS
                .iter()
                .map(|measure| {
                    let snap = self
                        .registry
                        .histogram(&format!("job_wall_us.measure.{measure}"))
                        .snapshot();
                    (measure.to_string(), histogram_summary(&snap))
                })
                .collect(),
        );

        let batch_sizes = pool.batch_size_snapshot();
        let observe_batches = self.observe_batches.get();
        let observes_per_sec = if uptime_ms > 0 {
            observe_batches as f64 * 1e3 / uptime_ms as f64
        } else {
            0.0
        };

        json!({
            "uptime_ms": uptime_ms,
            "sessions": sessions,
            "requests": { "total": self.requests.get(), "errors": self.errors.get() },
            "queue": {
                "depth": pool.queue_depth(),
                "inflight": pool.inflight(),
                "capacity": pool.capacity(),
                "workers": pool.threads(),
                "executed": pool.executed(),
                "rejected": pool.rejected(),
                "wait_us": histogram_summary(&pool.queue_wait_snapshot()),
            },
            "batching": {
                "solves": batch_sizes.count,
                "size_mean": batch_sizes.mean(),
                "size_p50": batch_sizes.p50(),
                "size_p95": batch_sizes.p95(),
                "size_p99": batch_sizes.p99(),
                "size_max": batch_sizes.max,
                "coalesced": pool.coalesced(),
                "steals": pool.steals(),
            },
            "jobs": {
                "completed": self.jobs_completed.get(),
                "cached": self.jobs_cached.get(),
                "inflight_named": jobs.len(),
                "wall_us_by_kind": by_kind,
                "wall_us_by_measure": by_measure,
            },
            "terminations": terminations,
            "cache": {
                "entries": entries,
                "hits": hits,
                "misses": misses,
                "evictions": evictions,
                "hit_rate": hit_rate,
            },
            "observes": {
                "batches": observe_batches,
                "updates": self.observe_updates.get(),
                "per_sec": observes_per_sec,
            },
        })
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a histogram snapshot as the protocol's latency-summary shape:
/// `{count, mean_us, p50_us, p95_us, p99_us, max_us}`.
pub fn histogram_summary(snapshot: &HistogramSnapshot) -> Value {
    json!({
        "count": snapshot.count,
        "mean_us": snapshot.mean(),
        "p50_us": snapshot.p50(),
        "p95_us": snapshot.p95(),
        "p99_us": snapshot.p99(),
        "max_us": snapshot.max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_job_feeds_kind_measure_and_termination() {
        let metrics = ServerMetrics::new();
        metrics.record_job(
            "mine",
            "affinity",
            Duration::from_millis(3),
            Some("converged"),
            false,
        );
        metrics.record_job(
            "mine",
            "affinity",
            Duration::from_millis(5),
            Some("deadline"),
            false,
        );
        // A cache hit counts as a completed job but not as solve latency.
        metrics.record_job("mine", "affinity", Duration::from_micros(40), None, true);

        let pool = WorkerPool::new(1, 1);
        let jobs = JobTable::new();
        let registry = SessionRegistry::new();
        let stats = metrics.render(&pool, &jobs, &registry);

        assert_eq!(stats["jobs"]["completed"], 3);
        assert_eq!(stats["jobs"]["cached"], 1);
        assert_eq!(stats["terminations"]["converged"], 1);
        assert_eq!(stats["terminations"]["deadline"], 1);
        assert_eq!(stats["terminations"]["cancelled"], 0);
        let mine = &stats["jobs"]["wall_us_by_kind"]["mine"];
        assert_eq!(mine["count"], 2);
        assert!(mine["p50_us"].as_u64().unwrap() >= 2_000);
        assert_eq!(stats["jobs"]["wall_us_by_kind"]["topk"]["count"], 0);
        assert_eq!(stats["jobs"]["wall_us_by_measure"]["affinity"]["count"], 2);
        assert_eq!(stats["queue"]["capacity"], 1);
        assert_eq!(stats["queue"]["workers"], 1);
        assert_eq!(stats["cache"]["hit_rate"], 0.0);
        assert_eq!(stats["batching"]["solves"], 0);
        assert_eq!(stats["batching"]["coalesced"], 0);
        assert_eq!(stats["batching"]["steals"], 0);
    }

    #[test]
    fn observe_and_request_counters_advance() {
        let metrics = ServerMetrics::new();
        metrics.note_request();
        metrics.note_request();
        metrics.note_error();
        metrics.note_observe(7);
        metrics.note_observe(3);

        let pool = WorkerPool::new(1, 1);
        let stats = metrics.render(&pool, &JobTable::new(), &SessionRegistry::new());
        assert_eq!(stats["requests"]["total"], 2);
        assert_eq!(stats["requests"]["errors"], 1);
        assert_eq!(stats["observes"]["batches"], 2);
        assert_eq!(stats["observes"]["updates"], 10);
    }
}

//! # dcs-server — a long-running density-contrast mining service
//!
//! The paper motivates DCS mining with always-on workloads: traffic-anomaly
//! detection, emerging-community discovery, dark-network monitoring.  In all
//! of them the historical baseline `G1` is fixed while the observed graph `G2`
//! arrives as a stream.  This crate turns the batch algorithms of `dcs-core`
//! into a service:
//!
//! * a [`SessionRegistry`] of named **sessions**, each holding a baseline
//!   graph, a live observed graph fed by incremental weight updates
//!   (a [`dcs_core::StreamingDcs`] over an incrementally maintained
//!   difference graph), and a monotone **graph version** bumped only by
//!   updates that actually change the graph; mining jobs receive
//!   `Arc<SignedGraph>` snapshot handles — no per-job graph clones, and an
//!   unchanged session hands every worker the same pointer-equal snapshot.
//!   The registry is **sharded** by session-name hash so concurrent
//!   create/get/drop traffic on different sessions does not serialize on one
//!   lock;
//! * a fixed-size [`WorkerPool`] with a bounded job queue, so many clients
//!   can mine concurrently without oversubscribing cores (excess load is
//!   shed with a structured `overloaded` error instead of piling up);
//! * a **nonblocking serving tier**: a small fixed set of I/O threads run
//!   readiness event loops (epoll on Linux, `poll(2)` elsewhere) over the
//!   connections an accept thread deals out to them — see *Serving
//!   architecture* below;
//! * a per-session **result cache** keyed by `(graph version, job spec)` —
//!   repeated queries against an unchanged graph are answered without
//!   re-mining and marked `"cached": true`;
//! * a **newline-delimited JSON protocol over TCP** served by [`Server`],
//!   with a matching blocking [`Client`].
//!
//! ## Wire protocol
//!
//! One request per line, one response per line, both JSON objects (NDJSON).
//! Every request carries a `"cmd"` field; every response carries
//! `"ok": true|false` and `"proto": 1` (the protocol version this server
//! speaks), and failed responses carry `"error": "<message>"`.
//! If a request has an `"id"` field it is echoed verbatim in the response so
//! pipelined clients can match responses to requests.
//!
//! A request may declare its own `"proto"`: the server accepts (and echoes,
//! like every response) version 1 and rejects anything else with the
//! structured error `unsupported proto N (server speaks proto 1)` — the
//! hook future wire or on-disk format bumps will negotiate through.
//! Requests without `"proto"` are treated as version 1.
//!
//! In-process, the protocol is a **typed layer**: [`Request`] and
//! [`Response`] enums (tagged on `"cmd"`) round-trip to the wire shapes
//! above via `Request::from_value` / `Request::to_value` and
//! `Response::into_body`.  The server's dispatcher and the [`Client`] both
//! speak the typed layer; raw `serde_json::Value` remains the wire truth,
//! and unknown-command / missing-field error strings are stable.
//!
//! | `cmd`            | request fields                                             | response fields (besides `ok`) |
//! |------------------|------------------------------------------------------------|--------------------------------|
//! | `ping`           | —                                                          | `pong: true`                   |
//! | `create_session` | `session`, `vertices` *or* `pack` (a graph-pack path on the server's filesystem; `vertices` becomes optional and is cross-checked against the pack header when given), opt. `remine_every` (default 0), `alert_threshold` (default 0), `measure` (`"affinity"` \| `"degree"`, default affinity), `durable: true` (requires a server `--data-dir`; recovers the named session's directory when one exists) | `session`, `vertices`, `backing: "memory"\|"pack"`; durable creates add `durable: true`, `recovered: bool` |
//! | `load_baseline`  | `session`, `edges: [[u, v, w], …]` — replaces the baseline and resets observations (the version advances, never resets) | `baseline_edges`, `version` |
//! | `observe`        | `session`, `updates: [[u, v, delta], …]` — batched weight updates to the observed graph | `applied`, `ignored`, `version`, `alerts: [alert…]` |
//! | `mine`           | `session`, opt. `measure`, *bounds* — mine the current DCS (runs on the worker pool) | `cached`, `version`, `termination`, `result: alert` |
//! | `topk`           | `session`, `k`, opt. `measure`, *bounds* — up to `k` vertex-disjoint contrast subgraphs | `cached`, `version`, `termination`, `stats`, `results: [group…]` |
//! | `sweep`          | `session`, opt. `alphas: [f…]` (default grid), `measure`, *bounds* — α-sweep of `A2 − α·A1` | `cached`, `version`, `termination`, `stats`, `points: [point…]` |
//! | `cancel`         | `job` — cancel the in-flight job registered under that id (from any connection) | `cancelled: bool` (whether the id was found) |
//! | `stats`          | opt. `session` — with one, that session's counters; without, the server-wide observability payload | per-session: `vertices`, `observations`, `version`, `observed_edges`, `baseline_edges`, `backing: "memory"\|"pack"`, `pack_open_ms` (open + decode wall time; `null` for memory-backed), `cache: {entries, hits, misses, evictions}`, `durable: bool`; server-wide: see below |
//! | `list_sessions`  | —                                                          | `sessions: [name…]`            |
//! | `drop_session`   | `session`                                                  | `dropped: true`                |
//! | `server_stats`   | —                                                          | `sessions`, `worker_threads`, `solver_threads`, `io_threads`, `queue_capacity`, `jobs_executed`, `jobs_rejected`, `jobs_inflight_named` |
//! | `shutdown`       | —                                                          | `shutting_down: true`          |
//!
//! Every mining command accepts the optional *bounds* fields
//! `deadline_ms` (wall-clock deadline in milliseconds, measured from request
//! receipt — queue time counts), `budget` (a solver-specific work budget) and
//! `job` (a client-chosen id under which the job's cancellation token is
//! registered for the `cancel` command).  A job whose bound trips returns the
//! **best result found so far** with `"termination"` set to `"deadline"`,
//! `"budget_exhausted"` or `"cancelled"` instead of `"converged"` — a worker
//! can no longer be wedged indefinitely by one adversarial request, and a
//! client disconnect cancels its in-flight job (best-effort).  Only converged
//! results enter the per-session cache.
//!
//! ## Pack-backed sessions
//!
//! A `create_session` carrying a `pack` field opens a binary **graph pack**
//! (the zero-copy CSR format of `dcs_graph::pack`, written by `dcs pack` or
//! `dcs-datasets`) from the server's filesystem as the session baseline.
//! The file is memory-mapped where the platform allows, and its CSR arrays
//! back the baseline graph directly — no edge-list upload, no
//! graph rebuild.  Per-session `stats` report `backing: "pack"` and the
//! open + decode wall time as `pack_open_ms`; a later `load_baseline`
//! replaces the baseline from protocol edges and reverts the session to
//! `backing: "memory"`.
//!
//! One caveat on disconnect detection, which observes EOF / hangup on the
//! request stream: clients must keep their **write side open** while awaiting
//! a mining response (a half-close — `shutdown(SHUT_WR)`, `nc -N`, closing
//! the writer to signal end-of-input — is indistinguishable from abandonment
//! and cancels the in-flight job; the response, carrying the best result
//! found so far, is still written if the read side of the peer survives).
//! The *hard* anti-wedge guarantee is [`ServerConfig::max_job_ms`] (default
//! 5 minutes): every job runs under a server-imposed deadline no looser than
//! that cap, client-supplied or not.
//!
//! ## Durability
//!
//! A server started with a **data directory** ([`ServerConfig::data_dir`],
//! `dcs serve --data-dir`) can host **durable sessions**: `create_session`
//! with `"durable": true` gives the session a per-session **write-ahead
//! log** of accepted observe batches plus periodic pack-format
//! **checkpoints**, and the server **recovers** every session directory it
//! finds under the data dir at start.  A recovered session is
//! observation-for-observation identical to one that never stopped — same
//! version counter, same difference snapshot, same warm-start support.
//! See the [`durable`] module docs for the on-disk layout (`session.json`,
//! `wal-<G>.ndjson`, `ckpt-<G>.dcspack`, `baseline-<B>.dcspack`), the
//! recovery procedure (newest valid checkpoint + WAL tail replay, with
//! torn-tail truncation and corrupt-checkpoint generation fallback) and
//! the sync modes ([`WalSync`]: `always` / `group` / `none`;
//! [`ServerConfig::group_commit_ms`] sets the group-commit interval,
//! [`ServerConfig::checkpoint_every`] the checkpoint trigger).  Ephemeral
//! sessions on the same server pay nothing.  `dcs sessions --data-dir`
//! inspects a data directory offline.
//!
//! ## Serving architecture
//!
//! Connections are not one-thread-each.  A blocking accept thread hands
//! fresh sockets round-robin to [`ServerConfig::io_threads`] I/O threads
//! (default: up to 4); each runs a **readiness event loop** — epoll on
//! Linux, portable `poll(2)` elsewhere — over the connections it owns:
//!
//! * requests are framed **incrementally**: partial reads accumulate until a
//!   newline completes a request, so a slow or trickling sender never holds
//!   a thread;
//! * per connection, requests dispatch **one at a time** (responses stay in
//!   request order) while different connections progress independently;
//! * cheap commands run inline on the I/O thread; mining commands (and
//!   observes that can trigger a solve) are handed to the worker pool with a
//!   **completion callback** that renders the response and posts it back to
//!   the owning event loop — I/O threads never block on a solve or a reply
//!   channel;
//! * responses are **write-buffered** with backpressure: past a high-water
//!   mark of unflushed output the loop stops reading (and therefore parsing
//!   and dispatching) from that connection until the peer drains it, without
//!   stalling any other connection.
//!
//! **Admission control** is end to end.  The worker pool's bounded queue and
//! each session's bounded **observe mailbox** ([`ServerConfig::observe_mailbox`])
//! shed excess load immediately with
//! `{"ok": false, "error": "overloaded", "retry_after_ms": n}` — the hint
//! scales with queue depth so well-behaved clients back off harder as
//! pressure rises.  Shed counts, per-shard queue depths, mailbox high-water
//! marks and accept/read/write event counters are all exported in the
//! server-wide `stats` payload (the `io` and `shards` blocks below).
//!
//! ## The server-wide `stats` payload
//!
//! A `stats` request **without** a `session` field returns the server's
//! observability surface, assembled from lock-free instrumentation
//! (`dcs-obs`) on the dispatch, worker-pool and job paths plus a brief
//! walk of the session registry:
//!
//! * `uptime_ms`, `sessions`, `requests: {total, errors}`;
//! * `queue: {depth, inflight, capacity, workers, executed, rejected,
//!   wait_us}` — the bounded job queue right now, lifetime execute/reject
//!   counts, and the queue-wait latency summary;
//! * `batching: {solves, size_mean, size_p50, size_p95, size_p99, size_max,
//!   coalesced, steals}` — snapshot-batch telemetry: how many solve groups
//!   ran, the distribution of jobs answered per group (1 = no coalescing),
//!   how many jobs were answered as followers of another job's solve, and how
//!   many work items idle workers stole from busy workers' deques;
//! * `jobs: {completed, cached, inflight_named, wall_us_by_kind,
//!   wall_us_by_measure}` — client-observed wall time (queue wait + solve)
//!   of solved jobs, as one latency summary per kind (`mine` / `topk` /
//!   `sweep`) and per measure (`affinity` / `degree`); cache hits are counted
//!   in `cached` but excluded from the latency histograms;
//! * `terminations: {converged, deadline, cancelled, budget_exhausted}` —
//!   how solved jobs ended;
//! * `cache: {entries, hits, misses, evictions, hit_rate}` — aggregated over
//!   every session's result cache;
//! * `observes: {batches, updates, per_sec}` — observe throughput since the
//!   server started;
//! * `queue.shard_depths: [n…]` — pending mining jobs per pool shard;
//! * `io: {threads, backend, accepts, read_events, write_events,
//!   connections_opened, connections_open, shed}` — the serving tier:
//!   event-loop backend (`"epoll"` / `"poll"`), accepted connections,
//!   readiness events handled, and how many requests were answered
//!   `overloaded`;
//! * `shards: [{sessions, cache: {hits, misses, hit_rate},
//!   mailbox: {pending, high_water, shed}}…]` — one entry per registry
//!   shard: its session count, its result-cache hit rate (the `cache` block
//!   above is the aggregate), and its observe-mailbox pressure.
//!
//! Every **latency summary** is
//! `{"count": n, "mean_us": f, "p50_us": n, "p95_us": n, "p99_us": n,
//!   "max_us": n}`, sourced from fixed-bucket log-scale histograms — the
//! quantiles have ≤2× relative error by construction and `count`/`mean_us`/
//! `max_us` are exact.
//!
//! An **alert** object is
//! `{"triggered": bool, "density_difference": f, "observations": n,
//!   "subset": [v…], "size": n, "average_degree_difference": f,
//!   "affinity_difference": f, "edge_density_difference": f,
//!   "total_degree_difference": f, "is_positive_clique": bool,
//!   "is_connected": bool, "stats": stats}`;
//! a **group** (top-k) is the report shape plus `"rank"` and `"objective"`;
//! a **point** (sweep) is the report shape plus `"alpha"` and `"objective"`;
//! a **stats** object is solver telemetry:
//! `{"iterations": n, "candidates": n, "prunes": n, "wall_ms": f,
//!   "termination": "converged"|"deadline"|"cancelled"|"budget_exhausted"}`.
//!
//! The mining commands (`mine`, `topk`, `sweep`) — and `observe` on sessions
//! with `remine_every > 0`, since completing a period triggers a solve — are
//! executed by the worker pool; when too many jobs are pending the server
//! answers `{"ok": false, "error": "overloaded", "retry_after_ms": n}`
//! immediately rather than queueing unboundedly.  All other commands are
//! handled inline by the I/O threads.
//!
//! ## Snapshot batching and coalescing
//!
//! The worker pool is **work-stealing** and **snapshot-batched**: the worker
//! that claims a session's pending mining jobs drains *all* of them in one
//! session-lock pass, so every job in the batch sees the same graph version
//! and shares `Arc` handles to one snapshot of the difference graph.  Within
//! a batch, jobs with the same cache key (same command, parameters and
//! measure) are **coalesced** — solved once, with every duplicate answered
//! from the one solve.  Coalesced followers carry `"coalesced": true` next to
//! `"cached": false` in their response; the leader and un-duplicated jobs
//! carry neither.  Distinct-key groups beyond the first are pushed onto the
//! claiming worker's deque where idle workers steal them, so a batch of
//! different commands still fans out across the pool.  Batch sizes, coalesced
//! counts and steal counts are exported under `batching` in the server-wide
//! `stats` payload.  Intra-solve parallelism (how many threads one solve may
//! use for peeling and KKT scans) is configured separately via
//! [`ServerConfig::solver_threads`].
//!
//! ## Example
//!
//! ```
//! use dcs_server::{Client, Server, ServerConfig};
//! use serde_json::json;
//!
//! let handle = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().start();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//!
//! client.create_session("demo", 5, json!({"alert_threshold": 1.0})).unwrap();
//! client.load_baseline("demo", &[(0, 1, 1.0)]).unwrap();
//! client.observe("demo", &[(0, 1, 4.0), (0, 2, 3.0), (1, 2, 3.0)]).unwrap();
//!
//! let mined = client.mine("demo").unwrap();
//! assert_eq!(mined["result"]["subset"], serde_json::json!([0, 1, 2]));
//! assert_eq!(mined["cached"], false);
//! // Same graph version, same job: served from the session cache.
//! assert_eq!(client.mine("demo").unwrap()["cached"], true);
//!
//! client.shutdown().unwrap();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod client;
pub mod durable;
mod error;
mod jobs;
mod metrics;
mod protocol;
mod server;
mod session;

pub use cache::ResultCache;
pub use client::{Client, SessionHandle};
pub use durable::WalSync;
pub use error::ServerError;
pub use jobs::{Completion, JobSpec, JobTable, WorkerPool};
pub use metrics::{histogram_summary, ServerMetrics};
pub use protocol::{
    alert_to_json, parse_measure, report_to_json, stats_to_json, CreateSessionRequest, JobBounds,
    Request, Response, PROTO_VERSION,
};
pub use server::{Server, ServerHandle};
pub use session::{ObserveMailbox, Session, SessionRegistry, SessionStats, ShardStats};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of mining worker threads (clamped to at least 1).  Defaults to
    /// the machine's available parallelism.
    pub worker_threads: usize,
    /// Capacity of the bounded mining-job queue; a full queue rejects further
    /// mining requests with a `busy` error.
    pub queue_capacity: usize,
    /// Maximum vertices accepted by `create_session` (guards the server
    /// against a single request allocating unbounded memory).
    pub max_vertices: usize,
    /// Server-imposed cap on any single mining job's wall time, in
    /// milliseconds (`None` disables it).  Applied as a deadline tighter than
    /// any client-supplied `deadline_ms`, it is the hard guarantee that no
    /// job — however adversarial — wedges a worker: cancel-on-disconnect is
    /// best-effort (unread bytes on the socket mask the disconnect), this cap
    /// is not.
    pub max_job_ms: Option<u64>,
    /// Intra-solve parallelism: the number of threads each mining job may use
    /// *inside* a single solve (parallel peeling, parallel KKT scans).  `0`
    /// (the default) inherits the process-wide `DCS_SOLVER_THREADS`
    /// environment default (itself defaulting to 1).  Distinct from
    /// [`ServerConfig::worker_threads`], which controls how many jobs run
    /// concurrently.
    pub solver_threads: usize,
    /// Number of I/O threads running readiness event loops over the accepted
    /// connections.  `0` (the default) reads the `DCS_IO_THREADS` environment
    /// variable, itself defaulting to the machine's available parallelism
    /// capped at 4 — I/O threads multiplex many connections each and almost
    /// never need to scale with cores the way workers do.
    pub io_threads: usize,
    /// Per-session bound on pooled observes in flight (cadence-mining
    /// sessions only — plain observes are applied inline and never queue).
    /// A session at its bound sheds further observes with `overloaded`
    /// rather than letting one hot stream starve the pool.  Clamped to at
    /// least 1.
    pub observe_mailbox: usize,
    /// Directory holding durable session state (`serve --data-dir`).  `None`
    /// (the default) disables durability: `create_session` requests carrying
    /// `"durable": true` are rejected.  When set, the server recovers every
    /// session directory found under it at start.
    pub data_dir: Option<std::path::PathBuf>,
    /// When durable sessions' write-ahead logs reach stable storage — see
    /// [`WalSync`].  Defaults to group commit.
    pub wal_sync: WalSync,
    /// Interval of the background durability thread, in milliseconds: each
    /// tick `fsync`s group-committed WAL bytes and checks the checkpoint
    /// trigger.  Clamped to at least 1.  Default 25.
    pub group_commit_ms: u64,
    /// Checkpoint after this many WAL records accumulate in a session's live
    /// segment (0 disables automatic checkpoints).  Default 256.
    pub checkpoint_every: u64,
}

impl ServerConfig {
    /// The effective I/O thread count: the configured value, or — when 0 —
    /// the `DCS_IO_THREADS` environment variable, or — when unset or
    /// unparsable — available parallelism capped at 4.  Always at least 1.
    pub fn resolved_io_threads(&self) -> usize {
        let configured = if self.io_threads > 0 {
            self.io_threads
        } else {
            std::env::var("DCS_IO_THREADS")
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                        .min(4)
                })
        };
        configured.max(1)
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2),
            queue_capacity: 64,
            max_vertices: 50_000_000,
            max_job_ms: Some(300_000),
            solver_threads: 0,
            io_threads: 0,
            observe_mailbox: 1024,
            data_dir: None,
            wal_sync: WalSync::default(),
            group_commit_ms: 25,
            checkpoint_every: 256,
        }
    }
}

//! Wire-format helpers: request field extraction and response rendering.
//!
//! The schema itself is documented in the crate-level docs ([`crate`]).

use dcs_core::{ContrastAlert, ContrastReport, DensityMeasure, SolveStats};
use dcs_graph::{VertexId, Weight};
use serde_json::{json, Value};

use crate::error::ServerError;

/// Parses a `measure` string (`"affinity"` / `"degree"` plus the aliases the
/// CLI accepts); `None` input falls back to the session's configured measure.
pub fn parse_measure(raw: Option<&str>) -> Result<Option<DensityMeasure>, ServerError> {
    match raw {
        None => Ok(None),
        Some(text) => match text.to_ascii_lowercase().as_str() {
            "affinity" | "graph-affinity" | "ga" => Ok(Some(DensityMeasure::GraphAffinity)),
            "degree" | "average-degree" | "ad" => Ok(Some(DensityMeasure::AverageDegree)),
            other => Err(ServerError::BadRequest(format!(
                "unknown measure {other:?} (expected \"affinity\" or \"degree\")"
            ))),
        },
    }
}

/// Short job-key token for a measure (stable across requests — cache keys
/// depend on it).
pub fn measure_token(measure: DensityMeasure) -> &'static str {
    match measure {
        DensityMeasure::GraphAffinity => "affinity",
        DensityMeasure::AverageDegree | DensityMeasure::TotalDegree => "degree",
    }
}

/// Renders a [`ContrastReport`] as the protocol's report shape.
pub fn report_to_json(report: &ContrastReport) -> Value {
    json!({
        "subset": report.subset,
        "size": report.size,
        "average_degree_difference": report.average_degree_difference,
        "affinity_difference": report.affinity_difference,
        "edge_density_difference": report.edge_density_difference,
        "total_degree_difference": report.total_degree_difference,
        "is_positive_clique": report.is_positive_clique,
        "is_connected": report.is_connected,
    })
}

/// Renders a [`ContrastAlert`] as the protocol's alert shape.
pub fn alert_to_json(alert: &ContrastAlert) -> Value {
    let mut value = report_to_json(&alert.report);
    value["triggered"] = json!(alert.triggered);
    value["density_difference"] = json!(alert.density_difference);
    value["observations"] = json!(alert.observations);
    value["stats"] = stats_to_json(&alert.stats);
    value
}

/// Renders [`SolveStats`] as the protocol's stats shape.
pub fn stats_to_json(stats: &SolveStats) -> Value {
    json!({
        "iterations": stats.iterations,
        "candidates": stats.candidates,
        "prunes": stats.prunes,
        "wall_ms": stats.wall.as_secs_f64() * 1e3,
        "termination": stats.termination.as_str(),
    })
}

/// Extracts the required string field `name` from a request object.
pub fn required_str<'a>(request: &'a Value, name: &str) -> Result<&'a str, ServerError> {
    request[name]
        .as_str()
        .ok_or_else(|| ServerError::BadRequest(format!("missing string field {name:?}")))
}

/// Extracts the required non-negative integer field `name`.
pub fn required_u64(request: &Value, name: &str) -> Result<u64, ServerError> {
    request[name]
        .as_u64()
        .ok_or_else(|| ServerError::BadRequest(format!("missing integer field {name:?}")))
}

/// Extracts an optional `f64` field, substituting `default` when absent.
pub fn optional_f64(request: &Value, name: &str, default: f64) -> Result<f64, ServerError> {
    match &request[name] {
        Value::Null => Ok(default),
        value => value
            .as_f64()
            .ok_or_else(|| ServerError::BadRequest(format!("field {name:?} must be a number"))),
    }
}

/// Extracts an optional non-negative integer field.
pub fn optional_u64(request: &Value, name: &str, default: u64) -> Result<u64, ServerError> {
    match &request[name] {
        Value::Null => Ok(default),
        value => value.as_u64().ok_or_else(|| {
            ServerError::BadRequest(format!("field {name:?} must be a non-negative integer"))
        }),
    }
}

/// Extracts an optional non-negative integer field with no default (`None` = absent).
pub fn optional_u64_opt(request: &Value, name: &str) -> Result<Option<u64>, ServerError> {
    match &request[name] {
        Value::Null => Ok(None),
        value => value.as_u64().map(Some).ok_or_else(|| {
            ServerError::BadRequest(format!("field {name:?} must be a non-negative integer"))
        }),
    }
}

/// Parses an `[[u, v, w], …]` triple list (edges or weight updates).
pub fn parse_triples(
    request: &Value,
    name: &str,
) -> Result<Vec<(VertexId, VertexId, Weight)>, ServerError> {
    let raw = request[name]
        .as_array()
        .ok_or_else(|| ServerError::BadRequest(format!("missing array field {name:?}")))?;
    let mut triples = Vec::with_capacity(raw.len());
    for (index, entry) in raw.iter().enumerate() {
        let triple = entry
            .as_array()
            .filter(|t| t.len() == 2 || t.len() == 3)
            .ok_or_else(|| {
                ServerError::BadRequest(format!(
                    "{name}[{index}] must be a [u, v] or [u, v, weight] array"
                ))
            })?;
        let endpoint = |slot: usize| -> Result<VertexId, ServerError> {
            triple[slot]
                .as_u64()
                .and_then(|v| VertexId::try_from(v).ok())
                .ok_or_else(|| {
                    ServerError::BadRequest(format!("{name}[{index}][{slot}] must be a vertex id"))
                })
        };
        let weight = if triple.len() == 3 {
            triple[2].as_f64().ok_or_else(|| {
                ServerError::BadRequest(format!("{name}[{index}][2] must be a number"))
            })?
        } else {
            1.0
        };
        triples.push((endpoint(0)?, endpoint(1)?, weight));
    }
    Ok(triples)
}

/// Parses an optional `alphas` array.
pub fn parse_alphas(request: &Value) -> Result<Option<Vec<f64>>, ServerError> {
    match &request["alphas"] {
        Value::Null => Ok(None),
        value => {
            let raw = value.as_array().ok_or_else(|| {
                ServerError::BadRequest("field \"alphas\" must be an array".into())
            })?;
            let mut alphas = Vec::with_capacity(raw.len());
            for (index, entry) in raw.iter().enumerate() {
                alphas.push(entry.as_f64().ok_or_else(|| {
                    ServerError::BadRequest(format!("alphas[{index}] must be a number"))
                })?);
            }
            Ok(Some(alphas))
        }
    }
}

/// Builds a success response, echoing the request's `id` when present.
pub fn ok_response(request: &Value, mut body: Value) -> Value {
    body["ok"] = json!(true);
    echo_id(request, &mut body);
    body
}

/// Builds a failure response from an error, echoing the request's `id`.
///
/// Load-shed errors ([`ServerError::Overloaded`]) additionally carry a
/// `retry_after_ms` backoff hint so well-behaved clients can pace retries.
pub fn error_response(request: &Value, error: &ServerError) -> Value {
    let mut body = json!({ "ok": false, "error": error.to_string() });
    if let ServerError::Overloaded { retry_after_ms } = error {
        body["retry_after_ms"] = json!(retry_after_ms);
    }
    echo_id(request, &mut body);
    body
}

fn echo_id(request: &Value, body: &mut Value) {
    let id = &request["id"];
    if !id.is_null() {
        body["id"] = id.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_parse_with_aliases() {
        assert_eq!(parse_measure(None).unwrap(), None);
        assert_eq!(
            parse_measure(Some("GA")).unwrap(),
            Some(DensityMeasure::GraphAffinity)
        );
        assert_eq!(
            parse_measure(Some("average-degree")).unwrap(),
            Some(DensityMeasure::AverageDegree)
        );
        assert!(parse_measure(Some("entropy")).is_err());
        assert_eq!(measure_token(DensityMeasure::GraphAffinity), "affinity");
        assert_eq!(measure_token(DensityMeasure::TotalDegree), "degree");
    }

    #[test]
    fn triples_accept_pairs_and_triples() {
        let request = json!({ "edges": [[0, 1], [2, 3, -1.5]] });
        let triples = parse_triples(&request, "edges").unwrap();
        assert_eq!(triples, vec![(0, 1, 1.0), (2, 3, -1.5)]);
        assert!(parse_triples(&json!({}), "edges").is_err());
        assert!(parse_triples(&json!({"edges": [[0]]}), "edges").is_err());
        assert!(parse_triples(&json!({"edges": [[0, "x"]]}), "edges").is_err());
    }

    #[test]
    fn field_extractors_validate() {
        let request = json!({"session": "s", "k": 3, "threshold": 1.5});
        assert_eq!(required_str(&request, "session").unwrap(), "s");
        assert!(required_str(&request, "missing").is_err());
        assert_eq!(required_u64(&request, "k").unwrap(), 3);
        assert_eq!(optional_u64(&request, "k", 9).unwrap(), 3);
        assert_eq!(optional_u64(&request, "absent", 9).unwrap(), 9);
        assert_eq!(optional_f64(&request, "threshold", 0.0).unwrap(), 1.5);
        assert_eq!(optional_f64(&request, "absent", 2.5).unwrap(), 2.5);
        assert!(optional_f64(&request, "session", 0.0).is_err());
    }

    #[test]
    fn alphas_are_optional() {
        assert_eq!(parse_alphas(&json!({})).unwrap(), None);
        assert_eq!(
            parse_alphas(&json!({"alphas": [0.0, 1.5]})).unwrap(),
            Some(vec![0.0, 1.5])
        );
        assert!(parse_alphas(&json!({"alphas": "x"})).is_err());
    }

    #[test]
    fn responses_echo_the_request_id() {
        let request = json!({"cmd": "ping", "id": 42});
        let ok = ok_response(&request, json!({"pong": true}));
        assert_eq!(ok["ok"], true);
        assert_eq!(ok["id"], 42);
        let err = error_response(&request, &ServerError::Busy);
        assert_eq!(err["ok"], false);
        assert_eq!(err["id"], 42);
        assert!(err["error"].as_str().unwrap().contains("busy"));
        // Without an id nothing is echoed.
        let quiet = ok_response(&json!({"cmd": "ping"}), json!({}));
        assert!(quiet["id"].is_null());
    }

    #[test]
    fn overloaded_responses_carry_a_retry_hint() {
        let request = json!({"cmd": "observe", "id": "req-9"});
        let shed = error_response(&request, &ServerError::Overloaded { retry_after_ms: 75 });
        assert_eq!(shed["ok"], false);
        assert_eq!(shed["error"], "overloaded");
        assert_eq!(shed["retry_after_ms"], 75);
        assert_eq!(shed["id"], "req-9");
        // Only load-shed errors carry the hint.
        let busy = error_response(&request, &ServerError::Busy);
        assert!(busy["retry_after_ms"].is_null());
    }
}

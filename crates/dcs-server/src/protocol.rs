//! The protocol: typed [`Request`]/[`Response`] enums over the NDJSON wire
//! shapes, plus the field-extraction and response-rendering helpers they are
//! built from.
//!
//! The wire schema itself is documented in the crate-level docs ([`crate`]).
//! `serde_json::Value` remains the wire truth; the typed layer round-trips
//! to it via [`Request::from_value`] / [`Request::to_value`] and
//! [`Response::into_body`], keeping every error string and field order
//! byte-identical to the hand-rolled dispatch it replaced.

use dcs_core::{ContrastAlert, ContrastReport, DensityMeasure, SolveStats};
use dcs_graph::{VertexId, Weight};
use serde_json::{json, Value};

use crate::error::ServerError;

/// The protocol version this build speaks.  Every response carries it as
/// `"proto"`; requests may declare theirs and are rejected with
/// [`ServerError::UnsupportedProto`] when it differs.
pub const PROTO_VERSION: u64 = 1;

/// Parses a `measure` string (`"affinity"` / `"degree"` plus the aliases the
/// CLI accepts); `None` input falls back to the session's configured measure.
pub fn parse_measure(raw: Option<&str>) -> Result<Option<DensityMeasure>, ServerError> {
    match raw {
        None => Ok(None),
        Some(text) => match text.to_ascii_lowercase().as_str() {
            "affinity" | "graph-affinity" | "ga" => Ok(Some(DensityMeasure::GraphAffinity)),
            "degree" | "average-degree" | "ad" => Ok(Some(DensityMeasure::AverageDegree)),
            other => Err(ServerError::BadRequest(format!(
                "unknown measure {other:?} (expected \"affinity\" or \"degree\")"
            ))),
        },
    }
}

/// Short job-key token for a measure (stable across requests — cache keys
/// depend on it).
pub fn measure_token(measure: DensityMeasure) -> &'static str {
    match measure {
        DensityMeasure::GraphAffinity => "affinity",
        DensityMeasure::AverageDegree | DensityMeasure::TotalDegree => "degree",
    }
}

/// Renders a [`ContrastReport`] as the protocol's report shape.
pub fn report_to_json(report: &ContrastReport) -> Value {
    json!({
        "subset": report.subset,
        "size": report.size,
        "average_degree_difference": report.average_degree_difference,
        "affinity_difference": report.affinity_difference,
        "edge_density_difference": report.edge_density_difference,
        "total_degree_difference": report.total_degree_difference,
        "is_positive_clique": report.is_positive_clique,
        "is_connected": report.is_connected,
    })
}

/// Renders a [`ContrastAlert`] as the protocol's alert shape.
pub fn alert_to_json(alert: &ContrastAlert) -> Value {
    let mut value = report_to_json(&alert.report);
    value["triggered"] = json!(alert.triggered);
    value["density_difference"] = json!(alert.density_difference);
    value["observations"] = json!(alert.observations);
    value["stats"] = stats_to_json(&alert.stats);
    value
}

/// Renders [`SolveStats`] as the protocol's stats shape.
pub fn stats_to_json(stats: &SolveStats) -> Value {
    json!({
        "iterations": stats.iterations,
        "candidates": stats.candidates,
        "prunes": stats.prunes,
        "wall_ms": stats.wall.as_secs_f64() * 1e3,
        "termination": stats.termination.as_str(),
    })
}

/// Extracts the required string field `name` from a request object.
pub fn required_str<'a>(request: &'a Value, name: &str) -> Result<&'a str, ServerError> {
    request[name]
        .as_str()
        .ok_or_else(|| ServerError::BadRequest(format!("missing string field {name:?}")))
}

/// Extracts the required non-negative integer field `name`.
pub fn required_u64(request: &Value, name: &str) -> Result<u64, ServerError> {
    request[name]
        .as_u64()
        .ok_or_else(|| ServerError::BadRequest(format!("missing integer field {name:?}")))
}

/// Extracts an optional `f64` field, substituting `default` when absent.
pub fn optional_f64(request: &Value, name: &str, default: f64) -> Result<f64, ServerError> {
    match &request[name] {
        Value::Null => Ok(default),
        value => value
            .as_f64()
            .ok_or_else(|| ServerError::BadRequest(format!("field {name:?} must be a number"))),
    }
}

/// Extracts an optional non-negative integer field.
pub fn optional_u64(request: &Value, name: &str, default: u64) -> Result<u64, ServerError> {
    match &request[name] {
        Value::Null => Ok(default),
        value => value.as_u64().ok_or_else(|| {
            ServerError::BadRequest(format!("field {name:?} must be a non-negative integer"))
        }),
    }
}

/// Extracts an optional non-negative integer field with no default (`None` = absent).
pub fn optional_u64_opt(request: &Value, name: &str) -> Result<Option<u64>, ServerError> {
    match &request[name] {
        Value::Null => Ok(None),
        value => value.as_u64().map(Some).ok_or_else(|| {
            ServerError::BadRequest(format!("field {name:?} must be a non-negative integer"))
        }),
    }
}

/// Parses an `[[u, v, w], …]` triple list (edges or weight updates).
pub fn parse_triples(
    request: &Value,
    name: &str,
) -> Result<Vec<(VertexId, VertexId, Weight)>, ServerError> {
    let raw = request[name]
        .as_array()
        .ok_or_else(|| ServerError::BadRequest(format!("missing array field {name:?}")))?;
    let mut triples = Vec::with_capacity(raw.len());
    for (index, entry) in raw.iter().enumerate() {
        let triple = entry
            .as_array()
            .filter(|t| t.len() == 2 || t.len() == 3)
            .ok_or_else(|| {
                ServerError::BadRequest(format!(
                    "{name}[{index}] must be a [u, v] or [u, v, weight] array"
                ))
            })?;
        let endpoint = |slot: usize| -> Result<VertexId, ServerError> {
            triple[slot]
                .as_u64()
                .and_then(|v| VertexId::try_from(v).ok())
                .ok_or_else(|| {
                    ServerError::BadRequest(format!("{name}[{index}][{slot}] must be a vertex id"))
                })
        };
        let weight = if triple.len() == 3 {
            triple[2].as_f64().ok_or_else(|| {
                ServerError::BadRequest(format!("{name}[{index}][2] must be a number"))
            })?
        } else {
            1.0
        };
        triples.push((endpoint(0)?, endpoint(1)?, weight));
    }
    Ok(triples)
}

/// Parses an optional `alphas` array.
pub fn parse_alphas(request: &Value) -> Result<Option<Vec<f64>>, ServerError> {
    match &request["alphas"] {
        Value::Null => Ok(None),
        value => {
            let raw = value.as_array().ok_or_else(|| {
                ServerError::BadRequest("field \"alphas\" must be an array".into())
            })?;
            let mut alphas = Vec::with_capacity(raw.len());
            for (index, entry) in raw.iter().enumerate() {
                alphas.push(entry.as_f64().ok_or_else(|| {
                    ServerError::BadRequest(format!("alphas[{index}] must be a number"))
                })?);
            }
            Ok(Some(alphas))
        }
    }
}

/// Builds a success response, echoing the request's `id` when present.
/// Every response declares the server's protocol version as `"proto"`.
pub fn ok_response(request: &Value, mut body: Value) -> Value {
    body["ok"] = json!(true);
    body["proto"] = json!(PROTO_VERSION);
    echo_id(request, &mut body);
    body
}

/// Builds a failure response from an error, echoing the request's `id`.
///
/// Load-shed errors ([`ServerError::Overloaded`]) additionally carry a
/// `retry_after_ms` backoff hint so well-behaved clients can pace retries.
pub fn error_response(request: &Value, error: &ServerError) -> Value {
    let mut body = json!({ "ok": false, "error": error.to_string() });
    if let ServerError::Overloaded { retry_after_ms } = error {
        body["retry_after_ms"] = json!(retry_after_ms);
    }
    body["proto"] = json!(PROTO_VERSION);
    echo_id(request, &mut body);
    body
}

fn echo_id(request: &Value, body: &mut Value) {
    let id = &request["id"];
    if !id.is_null() {
        body["id"] = id.clone();
    }
}

/// Per-job bound fields accepted by every mining command (`mine`, `topk`,
/// `sweep`): a wall-clock deadline measured from request receipt, a
/// solver-specific work budget, and a client-chosen job id the `cancel`
/// command can target.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobBounds {
    /// `deadline_ms`: wall-clock deadline in milliseconds (queue time counts).
    pub deadline_ms: Option<u64>,
    /// `budget`: solver-specific work budget.
    pub budget: Option<u64>,
    /// `job`: id under which the job's cancellation token is registered.
    pub job: Option<String>,
}

impl JobBounds {
    fn from_value(request: &Value) -> Result<JobBounds, ServerError> {
        Ok(JobBounds {
            deadline_ms: optional_u64_opt(request, "deadline_ms")?,
            budget: optional_u64_opt(request, "budget")?,
            job: request["job"].as_str().map(str::to_string),
        })
    }

    fn encode_into(&self, body: &mut Value) {
        if let Some(ms) = self.deadline_ms {
            body["deadline_ms"] = json!(ms);
        }
        if let Some(units) = self.budget {
            body["budget"] = json!(units);
        }
        if let Some(job) = &self.job {
            body["job"] = json!(job);
        }
    }
}

/// A typed `create_session` request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CreateSessionRequest {
    /// The session name.
    pub session: String,
    /// `remine_every`: re-mine after this many applied observations
    /// (0 = on-demand mining only).
    pub remine_every: u64,
    /// `alert_threshold`: density-difference level that marks an alert
    /// triggered.
    pub alert_threshold: f64,
    /// `measure`: the configured density measure (`None` = the default,
    /// graph affinity).
    pub measure: Option<DensityMeasure>,
    /// `pack`: a graph-pack path on the server's filesystem to open as the
    /// baseline.
    pub pack: Option<String>,
    /// `vertices`: the vertex count — required without `pack`, an optional
    /// cross-check against the pack header with it.
    pub vertices: Option<u64>,
    /// `durable`: give the session a write-ahead log and checkpoints
    /// (requires a server data directory).
    pub durable: bool,
}

/// A typed protocol request — one variant per `cmd`.
///
/// [`Request::from_value`] parses the wire object with the same field order
/// and error strings as the historical hand-rolled dispatch;
/// [`Request::to_value`] renders the canonical wire shape the [`crate::Client`]
/// sends.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `ping`
    Ping,
    /// `create_session`
    CreateSession(CreateSessionRequest),
    /// `load_baseline`
    LoadBaseline {
        /// The session name.
        session: String,
        /// Replacement baseline edges.
        edges: Vec<(VertexId, VertexId, Weight)>,
    },
    /// `observe`
    Observe {
        /// The session name.
        session: String,
        /// Batched weight updates to the observed graph.
        updates: Vec<(VertexId, VertexId, Weight)>,
    },
    /// `mine`
    Mine {
        /// The session name.
        session: String,
        /// Measure override (`None` = the session's configured measure).
        measure: Option<DensityMeasure>,
        /// Per-job bounds.
        bounds: JobBounds,
    },
    /// `topk`
    TopK {
        /// The session name.
        session: String,
        /// Number of vertex-disjoint subgraphs requested.
        k: usize,
        /// Measure override.
        measure: Option<DensityMeasure>,
        /// Per-job bounds.
        bounds: JobBounds,
    },
    /// `sweep`
    Sweep {
        /// The session name.
        session: String,
        /// α grid (`None` = the default grid).
        alphas: Option<Vec<f64>>,
        /// Measure override.
        measure: Option<DensityMeasure>,
        /// Per-job bounds.
        bounds: JobBounds,
    },
    /// `cancel`
    Cancel {
        /// The job id to cancel.
        job: String,
    },
    /// `stats`
    Stats {
        /// `Some(name)` for per-session counters, `None` for the server-wide
        /// payload.
        session: Option<String>,
    },
    /// `list_sessions`
    ListSessions,
    /// `drop_session`
    DropSession {
        /// The session name.
        session: String,
    },
    /// `server_stats`
    ServerStats,
    /// `shutdown`
    Shutdown,
}

impl Request {
    /// Parses a wire request.  Field order and error strings match the
    /// historical dispatch exactly: `cmd` first, then (new, additive) the
    /// optional `proto` declaration, then the per-command fields in their
    /// legacy order.
    pub fn from_value(request: &Value) -> Result<Request, ServerError> {
        let cmd = required_str(request, "cmd")?;
        match &request["proto"] {
            Value::Null => {}
            value => {
                let requested = value.as_u64().ok_or_else(|| {
                    ServerError::BadRequest("field \"proto\" must be a non-negative integer".into())
                })?;
                if requested != PROTO_VERSION {
                    return Err(ServerError::UnsupportedProto { requested });
                }
            }
        }
        match cmd {
            "ping" => Ok(Request::Ping),
            "create_session" => {
                let session = required_str(request, "session")?.to_string();
                let measure = parse_measure(request["measure"].as_str())?;
                let remine_every = optional_u64(request, "remine_every", 0)?;
                let alert_threshold = optional_f64(request, "alert_threshold", 0.0)?;
                let pack = request["pack"].as_str().map(str::to_string);
                let vertices = if pack.is_some() {
                    optional_u64_opt(request, "vertices")?
                } else {
                    Some(required_u64(request, "vertices")?)
                };
                let durable = match &request["durable"] {
                    Value::Null => false,
                    Value::Bool(flag) => *flag,
                    _ => {
                        return Err(ServerError::BadRequest(
                            "field \"durable\" must be a boolean".into(),
                        ))
                    }
                };
                Ok(Request::CreateSession(CreateSessionRequest {
                    session,
                    remine_every,
                    alert_threshold,
                    measure,
                    pack,
                    vertices,
                    durable,
                }))
            }
            "load_baseline" => Ok(Request::LoadBaseline {
                session: required_str(request, "session")?.to_string(),
                edges: parse_triples(request, "edges")?,
            }),
            "observe" => Ok(Request::Observe {
                session: required_str(request, "session")?.to_string(),
                updates: parse_triples(request, "updates")?,
            }),
            "mine" => {
                let measure = parse_measure(request["measure"].as_str())?;
                Ok(Request::Mine {
                    session: required_str(request, "session")?.to_string(),
                    measure,
                    bounds: JobBounds::from_value(request)?,
                })
            }
            "topk" => {
                let measure = parse_measure(request["measure"].as_str())?;
                let k = required_u64(request, "k")? as usize;
                Ok(Request::TopK {
                    session: required_str(request, "session")?.to_string(),
                    k,
                    measure,
                    bounds: JobBounds::from_value(request)?,
                })
            }
            "sweep" => {
                let measure = parse_measure(request["measure"].as_str())?;
                let alphas = parse_alphas(request)?;
                Ok(Request::Sweep {
                    session: required_str(request, "session")?.to_string(),
                    alphas,
                    measure,
                    bounds: JobBounds::from_value(request)?,
                })
            }
            "cancel" => Ok(Request::Cancel {
                job: required_str(request, "job")?.to_string(),
            }),
            "stats" => Ok(Request::Stats {
                session: request["session"].as_str().map(str::to_string),
            }),
            "list_sessions" => Ok(Request::ListSessions),
            "drop_session" => Ok(Request::DropSession {
                session: required_str(request, "session")?.to_string(),
            }),
            "server_stats" => Ok(Request::ServerStats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServerError::BadRequest(format!("unknown cmd {other:?}"))),
        }
    }

    /// Renders the canonical wire shape of this request (what [`crate::Client`]
    /// sends): `cmd` first, then the command's fields; absent optionals and
    /// zero-valued defaults are omitted.
    pub fn to_value(&self) -> Value {
        fn triples(list: &[(VertexId, VertexId, Weight)]) -> Value {
            Value::Array(list.iter().map(|&(u, v, w)| json!([u, v, w])).collect())
        }
        match self {
            Request::Ping => json!({ "cmd": "ping" }),
            Request::CreateSession(create) => {
                let mut body = json!({ "cmd": "create_session", "session": create.session });
                if let Some(pack) = &create.pack {
                    body["pack"] = json!(pack);
                }
                if let Some(vertices) = create.vertices {
                    body["vertices"] = json!(vertices);
                }
                if create.remine_every > 0 {
                    body["remine_every"] = json!(create.remine_every);
                }
                if create.alert_threshold != 0.0 {
                    body["alert_threshold"] = json!(create.alert_threshold);
                }
                if let Some(measure) = create.measure {
                    body["measure"] = json!(measure_token(measure));
                }
                if create.durable {
                    body["durable"] = json!(true);
                }
                body
            }
            Request::LoadBaseline { session, edges } => {
                json!({ "cmd": "load_baseline", "session": session, "edges": triples(edges) })
            }
            Request::Observe { session, updates } => {
                json!({ "cmd": "observe", "session": session, "updates": triples(updates) })
            }
            Request::Mine {
                session,
                measure,
                bounds,
            } => {
                let mut body = json!({ "cmd": "mine", "session": session });
                if let Some(measure) = measure {
                    body["measure"] = json!(measure_token(*measure));
                }
                bounds.encode_into(&mut body);
                body
            }
            Request::TopK {
                session,
                k,
                measure,
                bounds,
            } => {
                let mut body = json!({ "cmd": "topk", "session": session, "k": k });
                if let Some(measure) = measure {
                    body["measure"] = json!(measure_token(*measure));
                }
                bounds.encode_into(&mut body);
                body
            }
            Request::Sweep {
                session,
                alphas,
                measure,
                bounds,
            } => {
                let mut body = json!({ "cmd": "sweep", "session": session });
                if let Some(alphas) = alphas {
                    body["alphas"] = json!(alphas.clone());
                }
                if let Some(measure) = measure {
                    body["measure"] = json!(measure_token(*measure));
                }
                bounds.encode_into(&mut body);
                body
            }
            Request::Cancel { job } => json!({ "cmd": "cancel", "job": job }),
            Request::Stats { session } => match session {
                Some(name) => json!({ "cmd": "stats", "session": name }),
                None => json!({ "cmd": "stats" }),
            },
            Request::ListSessions => json!({ "cmd": "list_sessions" }),
            Request::DropSession { session } => {
                json!({ "cmd": "drop_session", "session": session })
            }
            Request::ServerStats => json!({ "cmd": "server_stats" }),
            Request::Shutdown => json!({ "cmd": "shutdown" }),
        }
    }
}

/// A typed success response — one variant per fixed-shape reply, plus
/// [`Response::Body`] for payloads that are already protocol-shaped JSON
/// (mining results, stats surfaces).
///
/// [`Response::into_body`] renders the exact legacy field order; the wire
/// framing (`ok`, `proto`, `id`) is added by the crate-private `ok_response`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `ping` → `{"pong": true}`
    Pong,
    /// `create_session` → `{"session", "vertices", "backing"}` (+ `durable`,
    /// `recovered` for durable creates)
    SessionCreated {
        /// The session name.
        session: String,
        /// The vertex count (from the request or the pack header).
        vertices: usize,
        /// `"memory"` or `"pack"`.
        backing: &'static str,
        /// `Some(recovered)` for durable creates: whether an existing session
        /// directory was recovered (vs a fresh one initialised).
        durable: Option<bool>,
    },
    /// `load_baseline` → `{"baseline_edges", "version"}`
    BaselineLoaded {
        /// Edges accepted into the new baseline.
        baseline_edges: usize,
        /// The session version after the reload.
        version: u64,
    },
    /// `observe` → `{"applied", "ignored", "version", "alerts"}`
    Observed {
        /// Updates that changed the observed graph.
        applied: usize,
        /// No-op updates.
        ignored: usize,
        /// The session version after the batch.
        version: u64,
        /// Alerts raised by cadence mining, already rendered
        /// ([`alert_to_json`]).
        alerts: Vec<Value>,
    },
    /// `cancel` → `{"cancelled"}`
    Cancelled {
        /// Whether the job id was found and its token cancelled.
        cancelled: bool,
    },
    /// `list_sessions` → `{"sessions"}`
    SessionList {
        /// The session names, sorted.
        sessions: Vec<String>,
    },
    /// `drop_session` → `{"dropped": true}`
    SessionDropped,
    /// `shutdown` → `{"shutting_down": true}`
    ShuttingDown,
    /// A payload already in wire shape (mining results, stats).
    Body(Value),
}

impl Response {
    /// Renders the response body (without the `ok`/`proto`/`id` framing) in
    /// the exact legacy field order.
    pub fn into_body(self) -> Value {
        match self {
            Response::Pong => json!({ "pong": true }),
            Response::SessionCreated {
                session,
                vertices,
                backing,
                durable,
            } => {
                let mut body =
                    json!({ "session": session, "vertices": vertices, "backing": backing });
                if let Some(recovered) = durable {
                    body["durable"] = json!(true);
                    body["recovered"] = json!(recovered);
                }
                body
            }
            Response::BaselineLoaded {
                baseline_edges,
                version,
            } => json!({ "baseline_edges": baseline_edges, "version": version }),
            Response::Observed {
                applied,
                ignored,
                version,
                alerts,
            } => json!({
                "applied": applied,
                "ignored": ignored,
                "version": version,
                "alerts": alerts,
            }),
            Response::Cancelled { cancelled } => json!({ "cancelled": cancelled }),
            Response::SessionList { sessions } => json!({ "sessions": sessions }),
            Response::SessionDropped => json!({ "dropped": true }),
            Response::ShuttingDown => json!({ "shutting_down": true }),
            Response::Body(value) => value,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_parse_with_aliases() {
        assert_eq!(parse_measure(None).unwrap(), None);
        assert_eq!(
            parse_measure(Some("GA")).unwrap(),
            Some(DensityMeasure::GraphAffinity)
        );
        assert_eq!(
            parse_measure(Some("average-degree")).unwrap(),
            Some(DensityMeasure::AverageDegree)
        );
        assert!(parse_measure(Some("entropy")).is_err());
        assert_eq!(measure_token(DensityMeasure::GraphAffinity), "affinity");
        assert_eq!(measure_token(DensityMeasure::TotalDegree), "degree");
    }

    #[test]
    fn triples_accept_pairs_and_triples() {
        let request = json!({ "edges": [[0, 1], [2, 3, -1.5]] });
        let triples = parse_triples(&request, "edges").unwrap();
        assert_eq!(triples, vec![(0, 1, 1.0), (2, 3, -1.5)]);
        assert!(parse_triples(&json!({}), "edges").is_err());
        assert!(parse_triples(&json!({"edges": [[0]]}), "edges").is_err());
        assert!(parse_triples(&json!({"edges": [[0, "x"]]}), "edges").is_err());
    }

    #[test]
    fn field_extractors_validate() {
        let request = json!({"session": "s", "k": 3, "threshold": 1.5});
        assert_eq!(required_str(&request, "session").unwrap(), "s");
        assert!(required_str(&request, "missing").is_err());
        assert_eq!(required_u64(&request, "k").unwrap(), 3);
        assert_eq!(optional_u64(&request, "k", 9).unwrap(), 3);
        assert_eq!(optional_u64(&request, "absent", 9).unwrap(), 9);
        assert_eq!(optional_f64(&request, "threshold", 0.0).unwrap(), 1.5);
        assert_eq!(optional_f64(&request, "absent", 2.5).unwrap(), 2.5);
        assert!(optional_f64(&request, "session", 0.0).is_err());
    }

    #[test]
    fn alphas_are_optional() {
        assert_eq!(parse_alphas(&json!({})).unwrap(), None);
        assert_eq!(
            parse_alphas(&json!({"alphas": [0.0, 1.5]})).unwrap(),
            Some(vec![0.0, 1.5])
        );
        assert!(parse_alphas(&json!({"alphas": "x"})).is_err());
    }

    #[test]
    fn responses_echo_the_request_id() {
        let request = json!({"cmd": "ping", "id": 42});
        let ok = ok_response(&request, json!({"pong": true}));
        assert_eq!(ok["ok"], true);
        assert_eq!(ok["id"], 42);
        let err = error_response(&request, &ServerError::Busy);
        assert_eq!(err["ok"], false);
        assert_eq!(err["id"], 42);
        assert!(err["error"].as_str().unwrap().contains("busy"));
        // Without an id nothing is echoed.
        let quiet = ok_response(&json!({"cmd": "ping"}), json!({}));
        assert!(quiet["id"].is_null());
    }

    #[test]
    fn typed_requests_roundtrip_through_the_wire_shape() {
        let requests = vec![
            Request::Ping,
            Request::CreateSession(CreateSessionRequest {
                session: "s".into(),
                remine_every: 3,
                alert_threshold: 1.5,
                measure: Some(DensityMeasure::AverageDegree),
                pack: None,
                vertices: Some(10),
                durable: true,
            }),
            Request::LoadBaseline {
                session: "s".into(),
                edges: vec![(0, 1, 1.0)],
            },
            Request::Observe {
                session: "s".into(),
                updates: vec![(0, 1, 2.0), (2, 3, -1.0)],
            },
            Request::Mine {
                session: "s".into(),
                measure: None,
                bounds: JobBounds {
                    deadline_ms: Some(250),
                    budget: None,
                    job: Some("j1".into()),
                },
            },
            Request::TopK {
                session: "s".into(),
                k: 4,
                measure: Some(DensityMeasure::GraphAffinity),
                bounds: JobBounds::default(),
            },
            Request::Sweep {
                session: "s".into(),
                alphas: Some(vec![0.0, 0.5]),
                measure: None,
                bounds: JobBounds::default(),
            },
            Request::Cancel { job: "j1".into() },
            Request::Stats { session: None },
            Request::Stats {
                session: Some("s".into()),
            },
            Request::ListSessions,
            Request::DropSession {
                session: "s".into(),
            },
            Request::ServerStats,
            Request::Shutdown,
        ];
        for request in requests {
            let wire = request.to_value();
            let back = Request::from_value(&wire).unwrap();
            assert_eq!(back, request, "roundtrip of {wire}");
        }
    }

    #[test]
    fn typed_parse_keeps_legacy_error_strings() {
        let missing_cmd = Request::from_value(&json!({})).unwrap_err();
        assert_eq!(
            missing_cmd.to_string(),
            "bad request: missing string field \"cmd\""
        );
        let unknown = Request::from_value(&json!({"cmd": "frobnicate"})).unwrap_err();
        assert_eq!(
            unknown.to_string(),
            "bad request: unknown cmd \"frobnicate\""
        );
        let missing_vertices =
            Request::from_value(&json!({"cmd": "create_session", "session": "s"})).unwrap_err();
        assert_eq!(
            missing_vertices.to_string(),
            "bad request: missing integer field \"vertices\""
        );
        let missing_k = Request::from_value(&json!({"cmd": "topk", "session": "s"})).unwrap_err();
        assert_eq!(
            missing_k.to_string(),
            "bad request: missing integer field \"k\""
        );
        let bad_durable = Request::from_value(
            &json!({"cmd": "create_session", "session": "s", "vertices": 4, "durable": "yes"}),
        )
        .unwrap_err();
        assert_eq!(
            bad_durable.to_string(),
            "bad request: field \"durable\" must be a boolean"
        );
    }

    #[test]
    fn proto_declarations_are_checked() {
        // Undeclared and correctly declared protos parse.
        assert!(Request::from_value(&json!({"cmd": "ping"})).is_ok());
        assert!(Request::from_value(&json!({"cmd": "ping", "proto": 1})).is_ok());
        // Unknown versions are rejected with the structured error.
        let future = Request::from_value(&json!({"cmd": "ping", "proto": 2})).unwrap_err();
        assert!(matches!(
            future,
            ServerError::UnsupportedProto { requested: 2 }
        ));
        assert_eq!(
            future.to_string(),
            "unsupported proto 2 (server speaks proto 1)"
        );
        // Malformed declarations are bad requests.
        let garbage = Request::from_value(&json!({"cmd": "ping", "proto": "x"})).unwrap_err();
        assert_eq!(
            garbage.to_string(),
            "bad request: field \"proto\" must be a non-negative integer"
        );
    }

    #[test]
    fn responses_carry_the_proto_version() {
        let ok = ok_response(&json!({"cmd": "ping"}), Response::Pong.into_body());
        assert_eq!(ok["proto"], 1);
        let err = error_response(&json!({"cmd": "ping"}), &ServerError::Busy);
        assert_eq!(err["proto"], 1);
    }

    #[test]
    fn response_bodies_render_the_legacy_shapes() {
        assert_eq!(
            serde_json::to_string(&Response::Pong.into_body()).unwrap(),
            "{\"pong\":true}"
        );
        let created = Response::SessionCreated {
            session: "s".into(),
            vertices: 7,
            backing: "memory",
            durable: None,
        }
        .into_body();
        assert_eq!(
            serde_json::to_string(&created).unwrap(),
            "{\"session\":\"s\",\"vertices\":7,\"backing\":\"memory\"}"
        );
        let recovered = Response::SessionCreated {
            session: "s".into(),
            vertices: 7,
            backing: "memory",
            durable: Some(true),
        }
        .into_body();
        assert_eq!(recovered["durable"], true);
        assert_eq!(recovered["recovered"], true);
        let observed = Response::Observed {
            applied: 2,
            ignored: 1,
            version: 9,
            alerts: vec![],
        }
        .into_body();
        assert_eq!(
            serde_json::to_string(&observed).unwrap(),
            "{\"applied\":2,\"ignored\":1,\"version\":9,\"alerts\":[]}"
        );
    }

    #[test]
    fn overloaded_responses_carry_a_retry_hint() {
        let request = json!({"cmd": "observe", "id": "req-9"});
        let shed = error_response(&request, &ServerError::Overloaded { retry_after_ms: 75 });
        assert_eq!(shed["ok"], false);
        assert_eq!(shed["error"], "overloaded");
        assert_eq!(shed["retry_after_ms"], 75);
        assert_eq!(shed["id"], "req-9");
        // Only load-shed errors carry the hint.
        let busy = error_response(&request, &ServerError::Busy);
        assert!(busy["retry_after_ms"].is_null());
    }
}

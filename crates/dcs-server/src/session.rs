//! Named mining sessions and the registry that owns them.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use dcs_core::{BatchOutcome, StreamingConfig, StreamingDcs};
use dcs_graph::{GraphBuilder, SignedGraph, VertexId, Weight};

use crate::cache::ResultCache;
use crate::error::ServerError;

/// One monitored baseline/observed graph pair plus its result cache.
#[derive(Debug)]
pub struct Session {
    monitor: StreamingDcs,
    cache: ResultCache,
    /// Added to the monitor's per-observation counter so the session version
    /// stays **monotone across baseline reloads** (the rebuilt monitor starts
    /// again at 0).  Without this, a mining job snapshotted before a
    /// `load_baseline` could match versions with the fresh graph and poison
    /// the result cache.
    version_base: u64,
    /// How the current baseline entered the session: `"memory"` (built from
    /// protocol edge lists) or `"pack"` (opened from a graph-pack file).
    backing: &'static str,
    /// Wall time of the pack open + decode, when `backing == "pack"`.
    pack_open_ms: Option<f64>,
}

/// A snapshot of a session's counters (the `stats` command).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Number of vertices of the monitored pair.
    pub vertices: usize,
    /// Observations applied so far.
    pub observations: usize,
    /// Current graph version.
    pub version: u64,
    /// Edges currently present in the observed graph.
    pub observed_edges: usize,
    /// Edges of the baseline graph.
    pub baseline_edges: usize,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Cache misses so far.
    pub cache_misses: u64,
    /// Cache entries removed by capacity pressure so far.
    pub cache_evictions: u64,
    /// How the current baseline is backed: `"memory"` or `"pack"`.
    pub backing: &'static str,
    /// Wall time spent opening + decoding the pack, for pack-backed sessions.
    pub pack_open_ms: Option<f64>,
}

impl Session {
    /// Creates a session over an empty baseline with `vertices` vertices.
    pub fn new(vertices: usize, config: StreamingConfig) -> Result<Self, ServerError> {
        let monitor = StreamingDcs::new(SignedGraph::empty(vertices), config)?;
        Ok(Session {
            monitor,
            cache: ResultCache::new(),
            version_base: 0,
            backing: "memory",
            pack_open_ms: None,
        })
    }

    /// Creates a session whose baseline is a graph pack opened (memory-mapped
    /// when the platform allows) from `path` — no edge-list upload, no
    /// `GraphBuilder` pass: the pack's CSR arrays *are* the baseline snapshot.
    ///
    /// `max_vertices` guards the server the same way `create_session` does
    /// for explicit vertex counts; the check runs against the pack header
    /// before the graph is decoded.
    pub fn from_pack(
        path: &str,
        config: StreamingConfig,
        max_vertices: usize,
    ) -> Result<Self, ServerError> {
        let start = std::time::Instant::now();
        let pack = dcs_graph::GraphPack::open(path)?;
        if pack.vertices() == 0 || pack.vertices() > max_vertices {
            return Err(ServerError::BadRequest(format!(
                "pack has {} vertices, accepted range is 1..={max_vertices}",
                pack.vertices()
            )));
        }
        let baseline = pack.to_graph().map_err(ServerError::Pack)?;
        let monitor = StreamingDcs::new(baseline, config)?;
        Ok(Session {
            monitor,
            cache: ResultCache::new(),
            version_base: 0,
            backing: "pack",
            pack_open_ms: Some(start.elapsed().as_secs_f64() * 1e3),
        })
    }

    /// Replaces the baseline graph, resetting observations and clearing the
    /// cache.  The session version **advances** (never resets), so results
    /// computed against the old baseline can never be mistaken for current.
    pub fn load_baseline(
        &mut self,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Result<usize, ServerError> {
        let vertices = self.monitor.num_vertices();
        let mut builder = GraphBuilder::new(vertices);
        for &(u, v, w) in edges {
            if u != v && (u as usize) < vertices && (v as usize) < vertices {
                builder.add_edge(u, v, w);
            }
        }
        let baseline = builder.build();
        let loaded = baseline.num_edges();
        let next_base = self.version() + 1;
        self.monitor = StreamingDcs::new(baseline, *self.monitor.config())?;
        self.version_base = next_base;
        self.cache.clear();
        // The pack file no longer backs the live baseline.
        self.backing = "memory";
        self.pack_open_ms = None;
        Ok(loaded)
    }

    /// Applies a batch of observations.
    pub fn observe(&mut self, updates: &[(VertexId, VertexId, Weight)]) -> BatchOutcome {
        self.monitor.apply_batch(updates.iter().copied())
    }

    /// The session's graph version: monotone over both observations and
    /// baseline reloads.  This is the version mining results are cached
    /// under.
    pub fn version(&self) -> u64 {
        self.version_base + self.monitor.version()
    }

    /// The streaming monitor (mining snapshots, version, config).
    pub fn monitor(&self) -> &StreamingDcs {
        &self.monitor
    }

    /// Mutable access to the streaming monitor.  Mining jobs need this to take
    /// difference snapshots: the snapshot cache lives inside the monitor's
    /// delta engine, so snapshotting an unchanged session is a pointer-equal
    /// `Arc` clone rather than a rebuild.
    pub fn monitor_mut(&mut self) -> &mut StreamingDcs {
        &mut self.monitor
    }

    /// The session's result cache.
    pub fn cache_mut(&mut self) -> &mut ResultCache {
        &mut self.cache
    }

    /// Counter snapshot for the `stats` command.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            vertices: self.monitor.num_vertices(),
            observations: self.monitor.observations(),
            version: self.version(),
            observed_edges: self.monitor.observed_edge_count(),
            baseline_edges: self.monitor.baseline().num_edges(),
            cache_entries: self.cache.len(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            backing: self.backing,
            pack_open_ms: self.pack_open_ms,
        }
    }
}

/// A shared handle to one session.
pub type SharedSession = Arc<Mutex<Session>>;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thread-safe registry of named sessions.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: Mutex<BTreeMap<String, SharedSession>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// Creates a session; fails if the name is taken.
    pub fn create(
        &self,
        name: &str,
        vertices: usize,
        config: StreamingConfig,
    ) -> Result<(), ServerError> {
        let session = Session::new(vertices, config)?;
        let mut sessions = lock(&self.sessions);
        if sessions.contains_key(name) {
            return Err(ServerError::SessionExists(name.to_string()));
        }
        sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
        Ok(())
    }

    /// Creates a pack-backed session; fails if the name is taken, or if
    /// `expected_vertices` is given and disagrees with the pack header.
    /// Returns the vertex count read from the pack.
    pub fn create_from_pack(
        &self,
        name: &str,
        path: &str,
        config: StreamingConfig,
        max_vertices: usize,
        expected_vertices: Option<usize>,
    ) -> Result<usize, ServerError> {
        let session = Session::from_pack(path, config, max_vertices)?;
        let vertices = session.monitor().num_vertices();
        if let Some(expected) = expected_vertices {
            if expected != vertices {
                return Err(ServerError::BadRequest(format!(
                    "request declares {expected} vertices but the pack has {vertices}"
                )));
            }
        }
        let mut sessions = lock(&self.sessions);
        if sessions.contains_key(name) {
            return Err(ServerError::SessionExists(name.to_string()));
        }
        sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
        Ok(vertices)
    }

    /// Looks up a session by name.
    pub fn get(&self, name: &str) -> Result<SharedSession, ServerError> {
        lock(&self.sessions)
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownSession(name.to_string()))
    }

    /// Removes a session by name.
    pub fn drop_session(&self, name: &str) -> Result<(), ServerError> {
        lock(&self.sessions)
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServerError::UnknownSession(name.to_string()))
    }

    /// The session names, sorted.
    pub fn names(&self) -> Vec<String> {
        lock(&self.sessions).keys().cloned().collect()
    }

    /// Handles to every live session, sorted by name.  Used by the server-wide
    /// `stats` surface to aggregate per-session counters; callers lock each
    /// session briefly, never while holding the registry lock.
    pub fn sessions(&self) -> Vec<(String, SharedSession)> {
        lock(&self.sessions)
            .iter()
            .map(|(name, session)| (name.clone(), Arc::clone(session)))
            .collect()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        lock(&self.sessions).len()
    }

    /// Whether the registry has no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::DensityMeasure;

    fn config() -> StreamingConfig {
        StreamingConfig {
            remine_every: 0,
            alert_threshold: 0.5,
            measure: DensityMeasure::GraphAffinity,
        }
    }

    #[test]
    fn registry_create_get_drop() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        registry.create("a", 10, config()).unwrap();
        registry.create("b", 5, config()).unwrap();
        assert!(matches!(
            registry.create("a", 3, config()),
            Err(ServerError::SessionExists(_))
        ));
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(registry.len(), 2);
        registry.get("a").unwrap();
        assert!(matches!(
            registry.get("zzz"),
            Err(ServerError::UnknownSession(_))
        ));
        registry.drop_session("a").unwrap();
        assert!(matches!(
            registry.drop_session("a"),
            Err(ServerError::UnknownSession(_))
        ));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn session_lifecycle_and_stats() {
        let mut session = Session::new(6, config()).unwrap();
        let loaded = session
            .load_baseline(&[(0, 1, 1.0), (2, 3, 2.0), (4, 4, 9.0), (0, 99, 1.0)])
            .unwrap();
        assert_eq!(loaded, 2); // self-loop and out-of-range edges are dropped

        let outcome = session.observe(&[(0, 1, 3.0), (1, 2, 2.0), (7, 8, 1.0)]);
        assert_eq!(outcome.applied, 2);
        assert_eq!(outcome.ignored, 1);

        let stats = session.stats();
        assert_eq!(stats.vertices, 6);
        assert_eq!(stats.observations, 2);
        // Baseline load advanced the version to 1; two observations on top.
        assert_eq!(stats.version, 3);
        assert_eq!(stats.observed_edges, 2);
        assert_eq!(stats.baseline_edges, 2);
        assert_eq!(stats.cache_entries, 0);
    }

    #[test]
    fn pack_backed_sessions_report_their_backing() {
        let path = std::env::temp_dir().join(format!(
            "dcs_server_session_pack_{}.pack",
            std::process::id()
        ));
        let g = dcs_graph::GraphBuilder::from_edges(6, vec![(0, 1, 2.0), (2, 3, 1.0)]);
        dcs_datasets::PackWriter::write_graph(&g, &path).unwrap();

        let mut session = Session::from_pack(path.to_str().unwrap(), config(), 1_000).unwrap();
        let stats = session.stats();
        assert_eq!(stats.backing, "pack");
        assert_eq!(stats.vertices, 6);
        assert_eq!(stats.baseline_edges, 2);
        assert!(stats.pack_open_ms.is_some());

        // The pack graph is the baseline snapshot: observations diff against it.
        let outcome = session.observe(&[(0, 1, 5.0)]);
        assert_eq!(outcome.applied, 1);

        // Replacing the baseline from the protocol drops the pack backing.
        session.load_baseline(&[(0, 1, 1.0)]).unwrap();
        let stats = session.stats();
        assert_eq!(stats.backing, "memory");
        assert!(stats.pack_open_ms.is_none());

        // Vertex-count guard reads the header.
        assert!(matches!(
            Session::from_pack(path.to_str().unwrap(), config(), 3),
            Err(ServerError::BadRequest(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshots_at_an_unchanged_version_share_one_graph() {
        let mut session = Session::new(8, config()).unwrap();
        session.load_baseline(&[(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        session.observe(&[(0, 1, 3.0), (4, 5, 1.0)]);
        // Two jobs snapshotting the same version receive the same Arc — the
        // serving layer never materialises a graph copy per job.
        let first = session.monitor_mut().difference_snapshot();
        let second = session.monitor_mut().difference_snapshot();
        assert!(Arc::ptr_eq(&first, &second));
        // An applied observation moves the version and the snapshot.
        session.observe(&[(4, 5, 1.0)]);
        let third = session.monitor_mut().difference_snapshot();
        assert!(!Arc::ptr_eq(&first, &third));
        // An ignored batch (no-ops only) does not.
        let outcome = session.observe(&[(4, 5, 0.0), (6, 6, 1.0)]);
        assert_eq!(outcome.applied, 0);
        assert_eq!(outcome.ignored, 2);
        assert!(Arc::ptr_eq(
            &third,
            &session.monitor_mut().difference_snapshot()
        ));
    }

    #[test]
    fn load_baseline_advances_version_and_clears_cache() {
        let mut session = Session::new(4, config()).unwrap();
        session.observe(&[(0, 1, 2.0)]);
        session.cache_mut().store(
            "mine|affinity".into(),
            1,
            serde_json::json!({"stale": true}),
        );
        assert_eq!(session.version(), 1);
        session.load_baseline(&[(0, 1, 1.0)]).unwrap();
        // Monotone across the reload: a job snapshotted at version 1 can
        // never collide with the fresh graph's version.
        assert_eq!(session.version(), 2);
        assert!(session.cache_mut().lookup("mine|affinity", 1).is_none());
        assert!(session.cache_mut().lookup("mine|affinity", 2).is_none());
        assert_eq!(session.monitor().observations(), 0);
        // Another reload keeps advancing.
        session.load_baseline(&[]).unwrap();
        assert_eq!(session.version(), 3);
        session.observe(&[(0, 1, 1.0)]);
        assert_eq!(session.version(), 4);
    }
}

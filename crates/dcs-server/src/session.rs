//! Named mining sessions and the registry that owns them.
//!
//! The registry is **sharded**: session names hash (FNV-1a) onto independent
//! `RwLock`-protected maps so lookups from many I/O threads never serialize
//! on one global lock.  Aggregating calls (`names`, `sessions`, `len`) walk
//! the shards; the public API is identical to the single-map registry it
//! replaced.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

use dcs_core::{BatchOutcome, StreamingConfig, StreamingDcs};
use dcs_graph::{GraphBuilder, SignedGraph, VertexId, Weight};

use crate::cache::ResultCache;
use crate::durable::{CheckpointState, DurableSession};
use crate::error::ServerError;

/// Admission counters for one session's pooled (cadence) observes.
///
/// The mailbox bounds how many observe batches a session may have queued in
/// the worker pool at once: a flood of observes against one session sheds
/// with `overloaded` instead of monopolizing the shared job queue.  Counters
/// are plain atomics — entering and leaving the mailbox is on the observe
/// hot path.
#[derive(Debug, Default)]
pub struct ObserveMailbox {
    pending: AtomicUsize,
    high_water: AtomicUsize,
    shed: AtomicU64,
}

impl ObserveMailbox {
    /// Tries to reserve a mailbox slot.  Returns `false` (and counts a shed)
    /// when `capacity` observes are already pending for this session.
    pub fn try_enter(&self, capacity: usize) -> bool {
        let mut pending = self.pending.load(Ordering::Relaxed);
        loop {
            if pending >= capacity {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.pending.compare_exchange_weak(
                pending,
                pending + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.high_water.fetch_max(pending + 1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => pending = seen,
            }
        }
    }

    /// Releases a slot reserved by [`ObserveMailbox::try_enter`] (called from
    /// the job's completion, whether it succeeded or errored).
    pub fn exit(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// Observe batches currently queued.
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Highest queue depth seen since the session was created.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Observe batches refused because the mailbox was full.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// One monitored baseline/observed graph pair plus its result cache.
#[derive(Debug)]
pub struct Session {
    monitor: StreamingDcs,
    cache: ResultCache,
    /// Admission counters for pooled observes.  Shared (`Arc`) so the wire
    /// layer can enter/exit the mailbox without holding the session mutex.
    mailbox: Arc<ObserveMailbox>,
    /// Added to the monitor's per-observation counter so the session version
    /// stays **monotone across baseline reloads** (the rebuilt monitor starts
    /// again at 0).  Without this, a mining job snapshotted before a
    /// `load_baseline` could match versions with the fresh graph and poison
    /// the result cache.
    version_base: u64,
    /// How the current baseline entered the session: `"memory"` (built from
    /// protocol edge lists) or `"pack"` (opened from a graph-pack file).
    backing: &'static str,
    /// Wall time of the pack open + decode, when `backing == "pack"`.
    pack_open_ms: Option<f64>,
    /// The durable half, for sessions created with `"durable": true`:
    /// write-ahead log plus checkpoint directory.  `None` for ephemeral
    /// sessions — the observe hot path pays nothing for durability it did
    /// not ask for.
    durable: Option<DurableSession>,
}

/// A snapshot of a session's counters (the `stats` command).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Number of vertices of the monitored pair.
    pub vertices: usize,
    /// Observations applied so far.
    pub observations: usize,
    /// Current graph version.
    pub version: u64,
    /// Edges currently present in the observed graph.
    pub observed_edges: usize,
    /// Edges of the baseline graph.
    pub baseline_edges: usize,
    /// Live cache entries.
    pub cache_entries: usize,
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Cache misses so far.
    pub cache_misses: u64,
    /// Cache entries removed by capacity pressure so far.
    pub cache_evictions: u64,
    /// How the current baseline is backed: `"memory"` or `"pack"`.
    pub backing: &'static str,
    /// Wall time spent opening + decoding the pack, for pack-backed sessions.
    pub pack_open_ms: Option<f64>,
    /// Whether the session writes a WAL and checkpoints (survives restarts).
    pub durable: bool,
}

impl Session {
    /// Creates a session over an empty baseline with `vertices` vertices.
    pub fn new(vertices: usize, config: StreamingConfig) -> Result<Self, ServerError> {
        let monitor = StreamingDcs::new(SignedGraph::empty(vertices), config)?;
        Ok(Session {
            monitor,
            cache: ResultCache::new(),
            mailbox: Arc::new(ObserveMailbox::default()),
            version_base: 0,
            backing: "memory",
            pack_open_ms: None,
            durable: None,
        })
    }

    /// Creates a session whose baseline is a graph pack opened (memory-mapped
    /// when the platform allows) from `path` — no edge-list upload, no
    /// `GraphBuilder` pass: the pack's CSR arrays *are* the baseline snapshot.
    ///
    /// `max_vertices` guards the server the same way `create_session` does
    /// for explicit vertex counts; the check runs against the pack header
    /// before the graph is decoded.
    pub fn from_pack(
        path: &str,
        config: StreamingConfig,
        max_vertices: usize,
    ) -> Result<Self, ServerError> {
        let start = std::time::Instant::now();
        let pack = dcs_graph::GraphPack::open(path)?;
        if pack.vertices() == 0 || pack.vertices() > max_vertices {
            return Err(ServerError::BadRequest(format!(
                "pack has {} vertices, accepted range is 1..={max_vertices}",
                pack.vertices()
            )));
        }
        let baseline = pack.to_graph().map_err(ServerError::Pack)?;
        let monitor = StreamingDcs::new(baseline, config)?;
        Ok(Session {
            monitor,
            cache: ResultCache::new(),
            mailbox: Arc::new(ObserveMailbox::default()),
            version_base: 0,
            backing: "pack",
            pack_open_ms: Some(start.elapsed().as_secs_f64() * 1e3),
            durable: None,
        })
    }

    /// Rebuilds a session from recovered state (see [`crate::durable`]): the
    /// monitor already holds the checkpointed + replayed observations.
    pub(crate) fn from_recovered(
        monitor: StreamingDcs,
        version_base: u64,
        backing: &'static str,
        pack_open_ms: Option<f64>,
        durable: DurableSession,
    ) -> Self {
        Session {
            monitor,
            cache: ResultCache::new(),
            mailbox: Arc::new(ObserveMailbox::default()),
            version_base,
            backing,
            pack_open_ms,
            durable: Some(durable),
        }
    }

    /// Attaches the durable half to a freshly created session.
    pub(crate) fn attach_durable(&mut self, durable: DurableSession) {
        self.durable = Some(durable);
    }

    /// Detaches and returns the durable half (used when dropping a durable
    /// session so its directory can be removed after the registry forgets it).
    pub(crate) fn take_durable(&mut self) -> Option<DurableSession> {
        self.durable.take()
    }

    /// Whether the session writes a WAL and checkpoints.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Fault injection for the crash-recovery tests: after `limit` total WAL
    /// bytes, the next append tears (writes a prefix and fails).  No effect
    /// on ephemeral sessions.
    #[doc(hidden)]
    pub fn wal_fault_after_bytes(&mut self, limit: Option<u64>) {
        if let Some(durable) = &mut self.durable {
            durable.set_fault_after(limit);
        }
    }

    /// Flushes group-committed WAL bytes and, when the live segment has
    /// accumulated `checkpoint_every` records (0 disables the trigger),
    /// writes a checkpoint.  Called by the server's durability thread on the
    /// group-commit interval; a no-op for ephemeral sessions.
    pub(crate) fn durable_tick(&mut self, checkpoint_every: u64) -> Result<(), ServerError> {
        let due = match &mut self.durable {
            None => return Ok(()),
            Some(durable) => {
                durable.flush()?;
                checkpoint_every > 0 && durable.wal_records() >= checkpoint_every
            }
        };
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Writes a checkpoint now: the observed graph as a pack with a
    /// session-metadata section, then rotates the WAL.  Returns `false`
    /// (without touching the disk) for ephemeral sessions.
    pub fn checkpoint(&mut self) -> Result<bool, ServerError> {
        let state = match &self.durable {
            None => return Ok(false),
            Some(_) => CheckpointState {
                monitor_version: self.monitor.version(),
                version_base: self.version_base,
                observations: self.monitor.observations(),
                updates_since_mine: self.monitor.updates_since_mine(),
                last_support: self.monitor.last_support().map(|s| s.to_vec()),
                observed: self.monitor.observed_edges_sorted(),
                vertices: self.monitor.num_vertices(),
                config: *self.monitor.config(),
                cache_keys: self.cache.keys(),
            },
        };
        self.durable
            .as_mut()
            .expect("checked above")
            .checkpoint(&state)?;
        Ok(true)
    }

    /// Replaces the baseline graph, resetting observations and clearing the
    /// cache.  The session version **advances** (never resets), so results
    /// computed against the old baseline can never be mistaken for current.
    pub fn load_baseline(
        &mut self,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Result<usize, ServerError> {
        let vertices = self.monitor.num_vertices();
        let mut builder = GraphBuilder::new(vertices);
        for &(u, v, w) in edges {
            if u != v && (u as usize) < vertices && (v as usize) < vertices {
                builder.add_edge(u, v, w);
            }
        }
        let baseline = builder.build();
        let loaded = baseline.num_edges();
        let next_base = self.version() + 1;
        self.monitor = StreamingDcs::new(baseline, *self.monitor.config())?;
        self.version_base = next_base;
        self.cache.clear();
        // The pack file no longer backs the live baseline.
        self.backing = "memory";
        self.pack_open_ms = None;
        if let Some(durable) = &mut self.durable {
            durable.log_baseline(next_base, self.monitor.baseline())?;
        }
        Ok(loaded)
    }

    /// Applies a batch of observations.  For durable sessions the accepted
    /// batch is appended to the WAL before the outcome is returned — an
    /// errored observe is **not** acknowledged and recovery is not required
    /// to reproduce it.  Batches that apply nothing leave the version (and
    /// the WAL) untouched.
    pub fn observe(
        &mut self,
        updates: &[(VertexId, VertexId, Weight)],
    ) -> Result<BatchOutcome, ServerError> {
        if let Some(durable) = &self.durable {
            if durable.is_poisoned() {
                return Err(ServerError::Io(std::io::Error::other(
                    "session WAL previously failed; the session is read-only until recovered",
                )));
            }
        }
        let outcome = self.monitor.apply_batch(updates.iter().copied());
        if outcome.applied > 0 {
            if let Some(durable) = &mut self.durable {
                let version = self.version_base + self.monitor.version();
                durable.append_observe(version, updates)?;
            }
        }
        Ok(outcome)
    }

    /// The session's graph version: monotone over both observations and
    /// baseline reloads.  This is the version mining results are cached
    /// under.
    pub fn version(&self) -> u64 {
        self.version_base + self.monitor.version()
    }

    /// The streaming monitor (mining snapshots, version, config).
    pub fn monitor(&self) -> &StreamingDcs {
        &self.monitor
    }

    /// Mutable access to the streaming monitor.  Mining jobs need this to take
    /// difference snapshots: the snapshot cache lives inside the monitor's
    /// delta engine, so snapshotting an unchanged session is a pointer-equal
    /// `Arc` clone rather than a rebuild.
    pub fn monitor_mut(&mut self) -> &mut StreamingDcs {
        &mut self.monitor
    }

    /// The session's result cache.
    pub fn cache_mut(&mut self) -> &mut ResultCache {
        &mut self.cache
    }

    /// The session's observe-admission mailbox.
    pub fn mailbox(&self) -> &Arc<ObserveMailbox> {
        &self.mailbox
    }

    /// Counter snapshot for the `stats` command.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            vertices: self.monitor.num_vertices(),
            observations: self.monitor.observations(),
            version: self.version(),
            observed_edges: self.monitor.observed_edge_count(),
            baseline_edges: self.monitor.baseline().num_edges(),
            cache_entries: self.cache.len(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            backing: self.backing,
            pack_open_ms: self.pack_open_ms,
            durable: self.durable.is_some(),
        }
    }
}

/// A shared handle to one session.
pub type SharedSession = Arc<Mutex<Session>>;

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read_shard<T>(shard: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    shard.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_shard<T>(shard: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    shard.write().unwrap_or_else(PoisonError::into_inner)
}

/// Aggregated counters of one registry shard, reported by the server-wide
/// `stats` command (`shards` array).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Sessions living on this shard.
    pub sessions: usize,
    /// Result-cache hits summed over the shard's sessions.
    pub cache_hits: u64,
    /// Result-cache misses summed over the shard's sessions.
    pub cache_misses: u64,
    /// Observe batches currently queued across the shard's sessions.
    pub mailbox_pending: usize,
    /// Highest per-session mailbox depth seen on this shard.
    pub mailbox_high_water: usize,
    /// Observe batches shed (mailbox full) across the shard's sessions.
    pub mailbox_shed: u64,
}

impl ShardStats {
    /// Fraction of cache lookups on this shard that hit (0 when idle).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// Thread-safe registry of named sessions, sharded by name hash.
#[derive(Debug)]
pub struct SessionRegistry {
    shards: Vec<RwLock<BTreeMap<String, SharedSession>>>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry with one shard per available core.
    pub fn new() -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SessionRegistry::with_shards(shards)
    }

    /// An empty registry with an explicit shard count (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        SessionRegistry {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
        }
    }

    /// Number of shards the registry spreads sessions over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session name lives on (FNV-1a over the name bytes).
    fn shard_for(&self, name: &str) -> &RwLock<BTreeMap<String, SharedSession>> {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Inserts an already-built session (the durable create/recovery paths
    /// construct sessions before registering them); fails if the name is
    /// taken.
    pub(crate) fn insert(&self, name: &str, session: Session) -> Result<(), ServerError> {
        let mut sessions = write_shard(self.shard_for(name));
        if sessions.contains_key(name) {
            return Err(ServerError::SessionExists(name.to_string()));
        }
        sessions.insert(name.to_string(), Arc::new(Mutex::new(session)));
        Ok(())
    }

    /// Creates a session; fails if the name is taken.
    pub fn create(
        &self,
        name: &str,
        vertices: usize,
        config: StreamingConfig,
    ) -> Result<(), ServerError> {
        let session = Session::new(vertices, config)?;
        self.insert(name, session)
    }

    /// Creates a pack-backed session; fails if the name is taken, or if
    /// `expected_vertices` is given and disagrees with the pack header.
    /// Returns the vertex count read from the pack.
    pub fn create_from_pack(
        &self,
        name: &str,
        path: &str,
        config: StreamingConfig,
        max_vertices: usize,
        expected_vertices: Option<usize>,
    ) -> Result<usize, ServerError> {
        let session = Session::from_pack(path, config, max_vertices)?;
        let vertices = session.monitor().num_vertices();
        if let Some(expected) = expected_vertices {
            if expected != vertices {
                return Err(ServerError::BadRequest(format!(
                    "request declares {expected} vertices but the pack has {vertices}"
                )));
            }
        }
        self.insert(name, session)?;
        Ok(vertices)
    }

    /// Looks up a session by name.
    pub fn get(&self, name: &str) -> Result<SharedSession, ServerError> {
        read_shard(self.shard_for(name))
            .get(name)
            .cloned()
            .ok_or_else(|| ServerError::UnknownSession(name.to_string()))
    }

    /// Removes a session by name.
    pub fn drop_session(&self, name: &str) -> Result<(), ServerError> {
        write_shard(self.shard_for(name))
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServerError::UnknownSession(name.to_string()))
    }

    /// The session names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| read_shard(shard).keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Handles to every live session, sorted by name.  Used by the server-wide
    /// `stats` surface to aggregate per-session counters; callers lock each
    /// session briefly, never while holding a shard lock.
    pub fn sessions(&self) -> Vec<(String, SharedSession)> {
        let mut sessions: Vec<(String, SharedSession)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                read_shard(shard)
                    .iter()
                    .map(|(name, session)| (name.clone(), Arc::clone(session)))
                    .collect::<Vec<_>>()
            })
            .collect();
        sessions.sort_by(|a, b| a.0.cmp(&b.0));
        sessions
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| read_shard(shard).len())
            .sum()
    }

    /// Whether the registry has no sessions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard counter aggregates for the server-wide `stats` surface:
    /// session counts, result-cache hit/miss totals, and observe-mailbox
    /// pressure.  Shard handles are cloned out before the per-session locks
    /// are taken, so stats collection never blocks shard writers.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| {
                let handles: Vec<SharedSession> =
                    read_shard(shard).values().map(Arc::clone).collect();
                let mut stats = ShardStats {
                    sessions: handles.len(),
                    ..ShardStats::default()
                };
                for handle in handles {
                    let session = lock(&handle);
                    let mailbox = Arc::clone(session.mailbox());
                    let counters = session.stats();
                    drop(session);
                    stats.cache_hits += counters.cache_hits;
                    stats.cache_misses += counters.cache_misses;
                    stats.mailbox_pending += mailbox.pending();
                    stats.mailbox_high_water = stats.mailbox_high_water.max(mailbox.high_water());
                    stats.mailbox_shed += mailbox.shed();
                }
                stats
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::DensityMeasure;

    fn config() -> StreamingConfig {
        StreamingConfig {
            remine_every: 0,
            alert_threshold: 0.5,
            measure: DensityMeasure::GraphAffinity,
        }
    }

    #[test]
    fn registry_create_get_drop() {
        let registry = SessionRegistry::new();
        assert!(registry.is_empty());
        registry.create("a", 10, config()).unwrap();
        registry.create("b", 5, config()).unwrap();
        assert!(matches!(
            registry.create("a", 3, config()),
            Err(ServerError::SessionExists(_))
        ));
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(registry.len(), 2);
        registry.get("a").unwrap();
        assert!(matches!(
            registry.get("zzz"),
            Err(ServerError::UnknownSession(_))
        ));
        registry.drop_session("a").unwrap();
        assert!(matches!(
            registry.drop_session("a"),
            Err(ServerError::UnknownSession(_))
        ));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn session_lifecycle_and_stats() {
        let mut session = Session::new(6, config()).unwrap();
        let loaded = session
            .load_baseline(&[(0, 1, 1.0), (2, 3, 2.0), (4, 4, 9.0), (0, 99, 1.0)])
            .unwrap();
        assert_eq!(loaded, 2); // self-loop and out-of-range edges are dropped

        let outcome = session
            .observe(&[(0, 1, 3.0), (1, 2, 2.0), (7, 8, 1.0)])
            .unwrap();
        assert_eq!(outcome.applied, 2);
        assert_eq!(outcome.ignored, 1);

        let stats = session.stats();
        assert_eq!(stats.vertices, 6);
        assert_eq!(stats.observations, 2);
        // Baseline load advanced the version to 1; two observations on top.
        assert_eq!(stats.version, 3);
        assert_eq!(stats.observed_edges, 2);
        assert_eq!(stats.baseline_edges, 2);
        assert_eq!(stats.cache_entries, 0);
    }

    #[test]
    fn pack_backed_sessions_report_their_backing() {
        let path = std::env::temp_dir().join(format!(
            "dcs_server_session_pack_{}.pack",
            std::process::id()
        ));
        let g = dcs_graph::GraphBuilder::from_edges(6, vec![(0, 1, 2.0), (2, 3, 1.0)]);
        dcs_datasets::PackWriter::write_graph(&g, &path).unwrap();

        let mut session = Session::from_pack(path.to_str().unwrap(), config(), 1_000).unwrap();
        let stats = session.stats();
        assert_eq!(stats.backing, "pack");
        assert_eq!(stats.vertices, 6);
        assert_eq!(stats.baseline_edges, 2);
        assert!(stats.pack_open_ms.is_some());

        // The pack graph is the baseline snapshot: observations diff against it.
        let outcome = session.observe(&[(0, 1, 5.0)]).unwrap();
        assert_eq!(outcome.applied, 1);

        // Replacing the baseline from the protocol drops the pack backing.
        session.load_baseline(&[(0, 1, 1.0)]).unwrap();
        let stats = session.stats();
        assert_eq!(stats.backing, "memory");
        assert!(stats.pack_open_ms.is_none());

        // Vertex-count guard reads the header.
        assert!(matches!(
            Session::from_pack(path.to_str().unwrap(), config(), 3),
            Err(ServerError::BadRequest(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshots_at_an_unchanged_version_share_one_graph() {
        let mut session = Session::new(8, config()).unwrap();
        session.load_baseline(&[(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        session.observe(&[(0, 1, 3.0), (4, 5, 1.0)]).unwrap();
        // Two jobs snapshotting the same version receive the same Arc — the
        // serving layer never materialises a graph copy per job.
        let first = session.monitor_mut().difference_snapshot();
        let second = session.monitor_mut().difference_snapshot();
        assert!(Arc::ptr_eq(&first, &second));
        // An applied observation moves the version and the snapshot.
        session.observe(&[(4, 5, 1.0)]).unwrap();
        let third = session.monitor_mut().difference_snapshot();
        assert!(!Arc::ptr_eq(&first, &third));
        // An ignored batch (no-ops only) does not.
        let outcome = session.observe(&[(4, 5, 0.0), (6, 6, 1.0)]).unwrap();
        assert_eq!(outcome.applied, 0);
        assert_eq!(outcome.ignored, 2);
        assert!(Arc::ptr_eq(
            &third,
            &session.monitor_mut().difference_snapshot()
        ));
    }

    #[test]
    fn sharded_registry_spreads_and_aggregates() {
        let registry = SessionRegistry::with_shards(4);
        assert_eq!(registry.shard_count(), 4);
        for i in 0..12 {
            registry.create(&format!("s{i}"), 4, config()).unwrap();
        }
        assert_eq!(registry.len(), 12);
        let names = registry.names();
        assert_eq!(names.len(), 12);
        assert!(names.windows(2).all(|w| w[0] < w[1]), "names stay sorted");
        // Aggregated shard stats see every session exactly once.
        let shards = registry.shard_stats();
        assert_eq!(shards.len(), 4);
        assert_eq!(shards.iter().map(|s| s.sessions).sum::<usize>(), 12);
        // The hash actually spreads: 12 sessions cannot all share one shard.
        assert!(shards.iter().filter(|s| s.sessions > 0).count() > 1);
        registry.drop_session("s3").unwrap();
        assert_eq!(registry.len(), 11);
        assert_eq!(registry.sessions().len(), 11);
    }

    #[test]
    fn observe_mailbox_bounds_and_counts() {
        let mailbox = ObserveMailbox::default();
        assert!(mailbox.try_enter(2));
        assert!(mailbox.try_enter(2));
        assert!(!mailbox.try_enter(2), "third entry exceeds capacity");
        assert_eq!(mailbox.pending(), 2);
        assert_eq!(mailbox.high_water(), 2);
        assert_eq!(mailbox.shed(), 1);
        mailbox.exit();
        assert!(mailbox.try_enter(2), "slot frees on exit");
        mailbox.exit();
        mailbox.exit();
        assert_eq!(mailbox.pending(), 0);
        assert_eq!(mailbox.high_water(), 2, "high water is sticky");
    }

    #[test]
    fn load_baseline_advances_version_and_clears_cache() {
        let mut session = Session::new(4, config()).unwrap();
        session.observe(&[(0, 1, 2.0)]).unwrap();
        session.cache_mut().store(
            "mine|affinity".into(),
            1,
            serde_json::json!({"stale": true}),
        );
        assert_eq!(session.version(), 1);
        session.load_baseline(&[(0, 1, 1.0)]).unwrap();
        // Monotone across the reload: a job snapshotted at version 1 can
        // never collide with the fresh graph's version.
        assert_eq!(session.version(), 2);
        assert!(session.cache_mut().lookup("mine|affinity", 1).is_none());
        assert!(session.cache_mut().lookup("mine|affinity", 2).is_none());
        assert_eq!(session.monitor().observations(), 0);
        // Another reload keeps advancing.
        session.load_baseline(&[]).unwrap();
        assert_eq!(session.version(), 3);
        session.observe(&[(0, 1, 1.0)]).unwrap();
        assert_eq!(session.version(), 4);
    }
}

//! The TCP server: accept loop, per-connection NDJSON handling, dispatch.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dcs_core::{CancelToken, DensityMeasure, SolveContext, StreamingConfig};
use serde_json::{json, Value};

use crate::error::ServerError;
use crate::jobs::{JobSpec, JobTable, WorkerPool};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    alert_to_json, error_response, ok_response, optional_f64, optional_u64, optional_u64_opt,
    parse_alphas, parse_measure, parse_triples, required_str, required_u64,
};
use crate::session::SessionRegistry;
use crate::ServerConfig;

/// A bound but not yet running mining server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

/// Shared state of a running server.
struct Shared {
    registry: SessionRegistry,
    pool: WorkerPool,
    jobs: JobTable,
    config: ServerConfig,
    metrics: ServerMetrics,
    shutting_down: AtomicBool,
}

/// Handle to a running server: address, shutdown, join.
pub struct ServerHandle {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Self, ServerError> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address (useful before [`Self::start`] with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Starts the accept loop on a background thread and returns the handle.
    pub fn start(self) -> ServerHandle {
        let addr = self.local_addr();
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new(),
            pool: WorkerPool::new(self.config.worker_threads, self.config.queue_capacity),
            jobs: JobTable::new(),
            config: self.config,
            metrics: ServerMetrics::new(),
            shutting_down: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let listener = self.listener;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let connection_shared = Arc::clone(&accept_shared);
                std::thread::spawn(move || handle_connection(stream, connection_shared));
            }
        });
        ServerHandle {
            addr,
            accept_thread: Some(accept_thread),
            shared,
        }
    }
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `shutdown` command has been received.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Requests shutdown from the handle side (equivalent to the protocol's
    /// `shutdown` command) and wakes the accept loop.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the accept loop to exit.  Connections that are mid-request
    /// drain naturally; idle keep-alive connections are not force-closed.
    pub fn join(mut self) {
        // Always wake the acceptor: the shutdown flag may have been set by a
        // protocol `shutdown` command while the loop is blocked in accept().
        self.shutdown();
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    let Ok(peer) = stream.peer_addr() else { return };
    let _ = peer; // kept for symmetry; per-connection logging hooks go here
    let reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request: Value = match serde_json::from_str(&line) {
            Ok(value) => value,
            Err(e) => {
                let response = error_response(
                    &Value::Null,
                    &ServerError::BadRequest(format!("invalid JSON: {e}")),
                );
                if write_line(&mut writer, &response).is_err() {
                    break;
                }
                continue;
            }
        };
        shared.metrics.note_request();
        let response = match dispatch(&request, &shared, &writer) {
            Ok(body) => ok_response(&request, body),
            Err(error) => {
                shared.metrics.note_error();
                error_response(&request, &error)
            }
        };
        if write_line(&mut writer, &response).is_err() {
            break;
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn write_line(writer: &mut TcpStream, value: &Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string());
    text.push('\n');
    writer.write_all(text.as_bytes())
}

fn dispatch(request: &Value, shared: &Shared, stream: &TcpStream) -> Result<Value, ServerError> {
    let cmd = required_str(request, "cmd")?;
    match cmd {
        "ping" => Ok(json!({ "pong": true })),
        "create_session" => create_session(request, shared),
        "load_baseline" => load_baseline(request, shared),
        "observe" => observe(request, shared),
        "mine" => run_job(
            request,
            shared,
            stream,
            JobSpec::Mine {
                measure: parse_measure(request["measure"].as_str())?,
            },
        ),
        "topk" => run_job(
            request,
            shared,
            stream,
            JobSpec::TopK {
                k: required_u64(request, "k")? as usize,
                measure: parse_measure(request["measure"].as_str())?,
            },
        ),
        "sweep" => run_job(
            request,
            shared,
            stream,
            JobSpec::Sweep {
                alphas: parse_alphas(request)?,
                measure: parse_measure(request["measure"].as_str())?,
            },
        ),
        "cancel" => {
            let id = required_str(request, "job")?;
            Ok(json!({ "cancelled": shared.jobs.cancel(id) }))
        }
        "stats" => stats(request, shared),
        "list_sessions" => Ok(json!({ "sessions": shared.registry.names() })),
        "drop_session" => {
            let name = required_str(request, "session")?;
            shared.registry.drop_session(name)?;
            Ok(json!({ "dropped": true }))
        }
        "server_stats" => Ok(json!({
            "sessions": shared.registry.len(),
            "worker_threads": shared.pool.threads(),
            "solver_threads": shared.config.solver_threads,
            "queue_capacity": shared.pool.capacity(),
            "jobs_executed": shared.pool.executed(),
            "jobs_rejected": shared.pool.rejected(),
            "jobs_inflight_named": shared.jobs.len(),
        })),
        "shutdown" => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            Ok(json!({ "shutting_down": true }))
        }
        other => Err(ServerError::BadRequest(format!("unknown cmd {other:?}"))),
    }
}

fn create_session(request: &Value, shared: &Shared) -> Result<Value, ServerError> {
    let name = required_str(request, "session")?;
    let measure =
        parse_measure(request["measure"].as_str())?.unwrap_or(DensityMeasure::GraphAffinity);
    let config = StreamingConfig {
        remine_every: optional_u64(request, "remine_every", 0)? as usize,
        alert_threshold: optional_f64(request, "alert_threshold", 0.0)?,
        measure,
    };
    // With a "pack" field the baseline comes from a graph-pack file on the
    // server's filesystem and the vertex count comes from the pack header —
    // "vertices" becomes optional and, when present, is cross-checked.
    if let Some(path) = request["pack"].as_str() {
        let declared = optional_u64_opt(request, "vertices")?.map(|v| v as usize);
        let vertices = shared.registry.create_from_pack(
            name,
            path,
            config,
            shared.config.max_vertices,
            declared,
        )?;
        return Ok(json!({ "session": name, "vertices": vertices, "backing": "pack" }));
    }
    let vertices = required_u64(request, "vertices")? as usize;
    if vertices == 0 || vertices > shared.config.max_vertices {
        return Err(ServerError::BadRequest(format!(
            "vertices must be in 1..={}",
            shared.config.max_vertices
        )));
    }
    shared.registry.create(name, vertices, config)?;
    Ok(json!({ "session": name, "vertices": vertices, "backing": "memory" }))
}

fn load_baseline(request: &Value, shared: &Shared) -> Result<Value, ServerError> {
    let name = required_str(request, "session")?;
    let edges = parse_triples(request, "edges")?;
    let session = shared.registry.get(name)?;
    let mut guard = session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let loaded = guard.load_baseline(&edges)?;
    Ok(json!({ "baseline_edges": loaded, "version": guard.version() }))
}

fn observe(request: &Value, shared: &Shared) -> Result<Value, ServerError> {
    let name = required_str(request, "session")?;
    let updates = parse_triples(request, "updates")?;
    let session = shared.registry.get(name)?;
    let cadence_mining = {
        let guard = session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.monitor().config().remine_every > 0
    };
    let outcome = if cadence_mining {
        // Completing a re-mining period solves inside `Session::observe`, so
        // this observe is CPU-bound: run it on the worker pool like any other
        // mining job (bounded queue → `busy` under overload) instead of on
        // the connection thread.
        let receiver = shared.pool.submit_task(Box::new(move |_workspace| {
            Ok(apply_observe(&session, &updates))
        }))?;
        receiver
            .recv()
            .map_err(|_| ServerError::Remote("worker pool shut down mid-observe".into()))?
    } else {
        // No mining can trigger: apply inline, keeping streaming cheap.
        Ok(apply_observe(&session, &updates))
    };
    if let Ok(body) = &outcome {
        shared
            .metrics
            .note_observe(body["applied"].as_u64().unwrap_or(0));
    }
    outcome
}

fn apply_observe(
    session: &crate::session::SharedSession,
    updates: &[(dcs_graph::VertexId, dcs_graph::VertexId, dcs_graph::Weight)],
) -> Value {
    let mut guard = session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let outcome = guard.observe(updates);
    let version = guard.version();
    drop(guard);
    let alerts: Vec<Value> = outcome.alerts.iter().map(alert_to_json).collect();
    json!({
        "applied": outcome.applied,
        "ignored": outcome.ignored,
        "version": version,
        "alerts": alerts,
    })
}

fn stats(request: &Value, shared: &Shared) -> Result<Value, ServerError> {
    // Without a `session` field, `stats` reports the server-wide
    // observability payload; with one, the session's counters as before.
    let Some(name) = request["session"].as_str() else {
        return Ok(shared
            .metrics
            .render(&shared.pool, &shared.jobs, &shared.registry));
    };
    let session = shared.registry.get(name)?;
    let guard = session
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let stats = guard.stats();
    Ok(json!({
        "vertices": stats.vertices,
        "observations": stats.observations,
        "version": stats.version,
        "observed_edges": stats.observed_edges,
        "baseline_edges": stats.baseline_edges,
        "backing": stats.backing,
        "pack_open_ms": stats.pack_open_ms,
        "cache": {
            "entries": stats.cache_entries,
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "evictions": stats.cache_evictions,
        },
    }))
}

fn run_job(
    request: &Value,
    shared: &Shared,
    stream: &TcpStream,
    spec: JobSpec,
) -> Result<Value, ServerError> {
    let name = required_str(request, "session")?;
    let session = shared.registry.get(name)?;
    let measure = {
        let guard = session
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        spec.resolved_measure(guard.monitor().config().measure)
    };

    // Per-job bounds: an absolute deadline (queue time counts), a work budget,
    // and a cancellation token reachable from other connections via the
    // optional client-chosen `job` id.  The server's `max_job_ms` cap is a
    // deadline of its own — the tighter of the two wins — so no job outlives
    // it even when disconnect detection is defeated.
    let token = CancelToken::new();
    let mut cx = SolveContext::unbounded()
        .with_cancel(&token)
        .with_threads(shared.config.solver_threads);
    let now = Instant::now();
    let client_deadline =
        optional_u64_opt(request, "deadline_ms")?.map(|ms| now + Duration::from_millis(ms));
    let server_cap = shared
        .config
        .max_job_ms
        .map(|ms| now + Duration::from_millis(ms));
    if let Some(at) = client_deadline.into_iter().chain(server_cap).min() {
        cx = cx.with_deadline_at(at);
    }
    if let Some(units) = optional_u64_opt(request, "budget")? {
        cx = cx.with_budget(units);
    }
    let job_id = match request["job"].as_str() {
        Some(id) => {
            shared.jobs.register(id, token.clone())?;
            Some(id.to_string())
        }
        None => None,
    };

    let kind = spec.kind_token();
    let outcome = shared
        .pool
        .submit(session, spec, cx)
        .and_then(|receiver| wait_cancelling_on_disconnect(receiver, stream, &token));
    if let Some(id) = &job_id {
        shared.jobs.remove(id);
    }
    if let Ok(body) = &outcome {
        // Wall time as the client saw it: queue wait plus solve.  Cache hits
        // are counted but excluded from the latency histograms.
        shared.metrics.record_job(
            kind,
            crate::protocol::measure_token(measure),
            now.elapsed(),
            body["termination"].as_str(),
            body["cached"].as_bool().unwrap_or(false),
        );
    }
    outcome
}

/// Waits for a job's reply while watching the client connection: if the peer
/// disconnects mid-job, the job's [`CancelToken`] is cancelled so the worker
/// returns (best-so-far, discarded) instead of mining for a client that is
/// gone — one adversarial long job can no longer wedge a worker.
fn wait_cancelling_on_disconnect(
    receiver: Receiver<Result<Value, ServerError>>,
    stream: &TcpStream,
    token: &CancelToken,
) -> Result<Value, ServerError> {
    loop {
        match receiver.recv_timeout(Duration::from_millis(50)) {
            Ok(outcome) => return outcome,
            Err(RecvTimeoutError::Timeout) => {
                if connection_closed(stream) {
                    token.cancel();
                    // Keep waiting: the worker observes the token and replies
                    // promptly; the response write will then fail and close
                    // this connection thread.
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(ServerError::Remote("worker pool shut down mid-job".into()))
            }
        }
    }
}

/// Non-destructive end-of-stream probe.  While a request is being served the
/// client is not expected to send anything, so pipelined bytes simply report
/// "still connected" — only a clean EOF (or a hard socket error) counts as a
/// disconnect.  A half-close (`shutdown(SHUT_WR)` while still reading) is
/// indistinguishable from abandonment at this layer and is treated as one;
/// the protocol docs require clients to keep the write side open while a
/// mining response is pending.
fn connection_closed(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    if stream.set_nonblocking(true).is_err() {
        return false;
    }
    let closed = match stream.peek(&mut probe) {
        Ok(0) => true,
        Ok(_) => false,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
        Err(_) => true,
    };
    let _ = stream.set_nonblocking(false);
    closed
}

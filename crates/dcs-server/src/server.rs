//! The TCP serving tier: readiness event loops, per-connection NDJSON state
//! machines, dispatch, and admission control.
//!
//! Connections are **not** one-thread-each.  A blocking accept thread hands
//! fresh sockets round-robin to a small fixed set of I/O threads; each I/O
//! thread runs a readiness event loop (epoll on Linux, `poll(2)` elsewhere —
//! the [`netpoll`] shim) over the connections it owns.  Requests are framed
//! incrementally from partial reads, dispatched serially per connection (one
//! in-flight job each, preserving response order), and CPU-bound work goes to
//! the worker pool with a completion callback that posts the rendered
//! response back to the owning event loop — an I/O thread never blocks on a
//! socket, a lock held across a solve, or a reply channel.
//!
//! Admission control runs end to end: the pool's bounded queue and each
//! session's observe mailbox shed excess load with a structured
//! `{"error": "overloaded", "retry_after_ms": N}` reply, and a connection
//! whose peer stops reading is write-backpressured (the loop stops reading —
//! and therefore parsing and dispatching — until its write buffer drains)
//! without stalling any other connection.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dcs_core::{CancelToken, DensityMeasure, SolveContext, StreamingConfig};
use netpoll::{Event, Interest, Poller, Waker};
use serde_json::{json, Value};

use crate::durable;
use crate::error::ServerError;
use crate::jobs::{JobSpec, JobTable, WorkerPool};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    alert_to_json, error_response, ok_response, CreateSessionRequest, JobBounds, Request, Response,
};
use crate::session::{Session, SessionRegistry, SharedSession};
use crate::ServerConfig;

/// Token the event loop's self-pipe waker is registered under (never a valid
/// connection slot).
const WAKER_TOKEN: usize = usize::MAX;

/// Stop dispatching (and reading) for a connection once this much unflushed
/// response data has accumulated — the peer is not keeping up.
const HIGH_WATER: usize = 256 * 1024;

/// Resume a write-throttled connection once its backlog drains below this.
const LOW_WATER: usize = 64 * 1024;

/// Bytes per `read(2)` pass.
const READ_CHUNK: usize = 16 * 1024;

/// Stop reading a socket once this many parsed-but-undispatched requests are
/// queued for it (requests dispatch one at a time per connection, so a
/// pipelining flood would otherwise buffer unboundedly in memory).
const MAX_PIPELINE: usize = 128;

/// After shutdown, how long the event loops keep flushing connections that
/// have no job in flight before force-closing what remains.
const SHUTDOWN_DRAIN_CAP: Duration = Duration::from_secs(5);

/// A bound but not yet running mining server.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
}

/// Per-server I/O event counters (the `io` block of the `stats` payload).
#[derive(Default)]
struct IoStats {
    accepts: AtomicU64,
    read_events: AtomicU64,
    write_events: AtomicU64,
    opened: AtomicU64,
    closed: AtomicU64,
    /// Requests answered with `overloaded` (queue full or mailbox full).
    shed: AtomicU64,
}

/// Mailbox and waker of one I/O event loop: the accept thread posts new
/// connections here, pool-worker completions post finished responses.
struct IoShared {
    inbox: Mutex<Vec<IoMsg>>,
    waker: Waker,
}

impl IoShared {
    fn post(&self, msg: IoMsg) {
        self.inbox
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(msg);
        self.waker.wake();
    }
}

/// Work delivered to an I/O thread through its inbox.
enum IoMsg {
    /// A freshly accepted (already nonblocking) connection to adopt.
    Conn(TcpStream),
    /// A pooled job finished: deliver `line` to `slot` if it still holds
    /// connection `conn_id` (slots are reused; stale deliveries are dropped —
    /// the job's accounting already happened in its completion callback).
    JobDone {
        slot: usize,
        conn_id: u64,
        line: String,
    },
}

/// Shared state of a running server.
struct Shared {
    registry: SessionRegistry,
    pool: WorkerPool,
    jobs: JobTable,
    config: ServerConfig,
    metrics: ServerMetrics,
    shutting_down: AtomicBool,
    io: Vec<Arc<IoShared>>,
    io_stats: IoStats,
    io_backend: &'static str,
}

impl Shared {
    fn wake_io(&self) {
        for io in &self.io {
            io.waker.wake();
        }
    }
}

/// Handle to a running server: address, shutdown, join.
pub struct ServerHandle {
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    io_handles: Vec<JoinHandle<()>>,
    durable_thread: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Self, ServerError> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            config,
        })
    }

    /// The bound address (useful before [`Self::start`] with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Starts the accept thread and the I/O event loops and returns the
    /// handle.
    pub fn start(self) -> ServerHandle {
        let addr = self.local_addr();
        let io_threads = self.config.resolved_io_threads();
        let mut pollers = Vec::with_capacity(io_threads);
        let mut io = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let poller = Poller::new().expect("open readiness poller");
            let waker = Waker::new(&poller, WAKER_TOKEN).expect("open event-loop waker");
            io.push(Arc::new(IoShared {
                inbox: Mutex::new(Vec::new()),
                waker,
            }));
            pollers.push(poller);
        }
        let io_backend = pollers[0].backend_name();
        let shared = Arc::new(Shared {
            registry: SessionRegistry::new(),
            pool: WorkerPool::new(self.config.worker_threads, self.config.queue_capacity),
            jobs: JobTable::new(),
            config: self.config,
            metrics: ServerMetrics::new(),
            shutting_down: AtomicBool::new(false),
            io: io.clone(),
            io_stats: IoStats::default(),
            io_backend,
        });
        // Recover durable sessions before serving a single request: a client
        // reconnecting right after a restart must see its sessions.
        if let Some(data_dir) = shared.config.data_dir.clone() {
            let _ = std::fs::create_dir_all(&data_dir);
            for (name, session) in durable::recover_data_dir(&data_dir, shared.config.wal_sync) {
                if let Err(e) = shared.registry.insert(&name, session) {
                    eprintln!("dcs-server: cannot register recovered session {name:?}: {e}");
                }
            }
        }
        // The durability thread: every group-commit interval it fsyncs each
        // durable session's WAL and checkpoints segments past the trigger.
        let durable_thread = shared.config.data_dir.as_ref().map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dcs-durable".into())
                .spawn(move || {
                    let interval = Duration::from_millis(shared.config.group_commit_ms.max(1));
                    loop {
                        // Read the flag first so a final flush always runs
                        // after shutdown is requested.
                        let shutting = shared.shutting_down.load(Ordering::SeqCst);
                        for (name, session) in shared.registry.sessions() {
                            let mut guard = lock_session(&session);
                            if let Err(e) = guard.durable_tick(shared.config.checkpoint_every) {
                                drop(guard);
                                eprintln!(
                                    "dcs-server: durability tick failed for session {name:?}: {e}"
                                );
                            }
                        }
                        if shutting {
                            break;
                        }
                        std::thread::park_timeout(interval);
                    }
                })
                .expect("spawn durability thread")
        });
        let io_handles = pollers
            .into_iter()
            .zip(io)
            .enumerate()
            .map(|(index, (poller, io))| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dcs-io-{index}"))
                    .spawn(move || IoLoop::new(poller, io, shared).run())
                    .expect("spawn I/O thread")
            })
            .collect();
        let accept_shared = Arc::clone(&shared);
        let listener = self.listener;
        let accept_thread = std::thread::spawn(move || {
            let mut next = 0usize;
            for stream in listener.incoming() {
                if accept_shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                accept_shared
                    .io_stats
                    .accepts
                    .fetch_add(1, Ordering::Relaxed);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Round-robin connections over the event loops.
                let target = &accept_shared.io[next % accept_shared.io.len()];
                next = next.wrapping_add(1);
                target.post(IoMsg::Conn(stream));
            }
        });
        ServerHandle {
            addr,
            accept_thread: Some(accept_thread),
            io_handles,
            durable_thread,
            shared,
        }
    }
}

impl ServerHandle {
    /// The address the server listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a `shutdown` command has been received.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Requests shutdown from the handle side (equivalent to the protocol's
    /// `shutdown` command) and wakes the accept loop and the event loops.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.wake_io();
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the accept thread and the I/O threads to exit.  Connections
    /// with a job in flight or unflushed output drain first (bounded by a
    /// short grace period once jobs are done); idle connections are closed.
    pub fn join(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.wake_io();
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        for thread in self.io_handles.drain(..) {
            let _ = thread.join();
        }
        if let Some(thread) = self.durable_thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock_session(session: &SharedSession) -> MutexGuard<'_, Session> {
    session.lock().unwrap_or_else(PoisonError::into_inner)
}

fn render_line(value: &Value) -> String {
    let mut text = serde_json::to_string(value).unwrap_or_else(|_| "{}".to_string());
    text.push('\n');
    text
}

/// A job's cancellation handle while its response is pending.
struct Inflight {
    cancel: Option<CancelToken>,
}

/// How a request left the dispatch layer.
enum Dispatch {
    /// Answered synchronously (inline commands and submission errors).
    Done(Result<Value, ServerError>),
    /// Submitted to the worker pool; the rendered response arrives later as
    /// an [`IoMsg::JobDone`].
    Pooled { cancel: Option<CancelToken> },
}

/// One connection's state machine.
struct Conn {
    /// Monotone per event loop; guards slot reuse against stale `JobDone`s.
    id: u64,
    stream: TcpStream,
    fd: RawFd,
    /// Unparsed request bytes (at most one partial line after parsing).
    read_buf: Vec<u8>,
    /// Offset into `read_buf` the newline scan resumes from.
    scan_from: usize,
    /// Parsed requests waiting to dispatch (one at a time).
    lines: VecDeque<String>,
    /// Rendered responses not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    awaiting: Option<Inflight>,
    eof: bool,
    dead: bool,
    /// Write-backpressured: trips at [`HIGH_WATER`], clears at [`LOW_WATER`].
    throttled: bool,
    registered: bool,
    interest: Interest,
}

impl Conn {
    fn new(id: u64, stream: TcpStream, fd: RawFd) -> Conn {
        Conn {
            id,
            stream,
            fd,
            read_buf: Vec::new(),
            scan_from: 0,
            lines: VecDeque::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            awaiting: None,
            eof: false,
            dead: false,
            throttled: false,
            registered: true,
            interest: Interest::READABLE,
        }
    }

    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn update_throttle(&mut self) {
        if !self.throttled && self.unflushed() >= HIGH_WATER {
            self.throttled = true;
        } else if self.throttled && self.unflushed() <= LOW_WATER {
            self.throttled = false;
        }
    }

    /// Splits complete lines out of `read_buf` (incremental: the scan resumes
    /// where the last one stopped, so a slowly arriving giant line is not
    /// rescanned from the start on every read).
    fn parse_lines(&mut self) {
        let mut start = 0usize;
        let mut index = self.scan_from;
        while index < self.read_buf.len() {
            if self.read_buf[index] == b'\n' {
                let line = String::from_utf8_lossy(&self.read_buf[start..index]).into_owned();
                self.lines.push_back(line);
                start = index + 1;
            }
            index += 1;
        }
        if start > 0 {
            self.read_buf.drain(..start);
        }
        self.scan_from = self.read_buf.len();
    }

    /// Drains readable bytes (bounded per event so one firehose connection
    /// cannot starve the loop; level-triggered polling re-reports leftovers).
    fn fill_read(&mut self) {
        if self.eof || self.dead || self.throttled || self.lines.len() >= MAX_PIPELINE {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        for _ in 0..16 {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    return;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Writes as much buffered output as the socket accepts right now.
    fn flush(&mut self) {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > LOW_WATER {
            // Compact occasionally so a long-lived throttled connection does
            // not keep already-sent bytes around.
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
    }
}

/// Registration change a pump decided on (applied outside the borrow).
enum RegAction {
    Keep,
    Register(RawFd, Interest),
    Modify(RawFd, Interest),
    Deregister(RawFd),
}

/// One I/O thread's event loop over the connections it owns.
struct IoLoop {
    poller: Poller,
    io: Arc<IoShared>,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_conn_id: u64,
}

impl IoLoop {
    fn new(poller: Poller, io: Arc<IoShared>, shared: Arc<Shared>) -> IoLoop {
        IoLoop {
            poller,
            io,
            shared,
            conns: Vec::new(),
            free: Vec::new(),
            next_conn_id: 1,
        }
    }

    fn live(&self) -> usize {
        self.conns.iter().flatten().count()
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut drain_started: Option<Instant> = None;
        loop {
            let shutting = self.shared.shutting_down.load(Ordering::SeqCst);
            if shutting {
                self.shutdown_sweep();
                if self.live() == 0 {
                    break;
                }
                // Connections still waiting on a pooled job get unlimited
                // time (the pool always answers); pure write-draining gets a
                // bounded grace period.
                let busy = self
                    .conns
                    .iter()
                    .flatten()
                    .any(|conn| conn.awaiting.is_some() || !conn.lines.is_empty());
                if busy {
                    drain_started = None;
                } else {
                    let started = *drain_started.get_or_insert_with(Instant::now);
                    if started.elapsed() > SHUTDOWN_DRAIN_CAP {
                        break;
                    }
                }
            }
            let timeout = if shutting {
                Duration::from_millis(25)
            } else {
                Duration::from_millis(500)
            };
            let _ = self.poller.wait(&mut events, Some(timeout));
            for &event in &events {
                if event.token == WAKER_TOKEN {
                    self.io.waker.drain();
                    continue;
                }
                self.on_event(event);
            }
            let msgs =
                std::mem::take(&mut *self.io.inbox.lock().unwrap_or_else(PoisonError::into_inner));
            for msg in msgs {
                match msg {
                    IoMsg::Conn(stream) => self.adopt(stream),
                    IoMsg::JobDone {
                        slot,
                        conn_id,
                        line,
                    } => self.job_done(slot, conn_id, line),
                }
            }
        }
        for slot in 0..self.conns.len() {
            self.close(slot);
        }
    }

    /// Closes connections that have nothing pending (shutdown path).
    fn shutdown_sweep(&mut self) {
        for slot in 0..self.conns.len() {
            let idle = matches!(
                &self.conns[slot],
                Some(conn)
                    if conn.awaiting.is_none() && conn.lines.is_empty() && conn.unflushed() == 0
            );
            if idle {
                self.close(slot);
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        let fd = stream.as_raw_fd();
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if self.poller.register(fd, slot, Interest::READABLE).is_err() {
            self.free.push(slot);
            return; // dropping the stream closes the socket
        }
        let id = self.next_conn_id;
        self.next_conn_id += 1;
        self.shared.io_stats.opened.fetch_add(1, Ordering::Relaxed);
        self.conns[slot] = Some(Conn::new(id, stream, fd));
        self.pump(slot);
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            if let Some(inflight) = &conn.awaiting {
                if let Some(token) = &inflight.cancel {
                    token.cancel();
                }
            }
            if conn.registered {
                // Remove before the stream drops: the poll(2) backend must
                // not watch a closed fd.
                let _ = self.poller.deregister(conn.fd);
            }
            self.shared.io_stats.closed.fetch_add(1, Ordering::Relaxed);
            self.free.push(slot);
        }
    }

    fn on_event(&mut self, event: Event) {
        let Some(conn) = self.conns.get_mut(event.token).and_then(Option::as_mut) else {
            return; // closed earlier in this batch
        };
        if event.readable || event.hangup {
            self.shared
                .io_stats
                .read_events
                .fetch_add(1, Ordering::Relaxed);
            conn.fill_read();
        }
        if event.writable {
            self.shared
                .io_stats
                .write_events
                .fetch_add(1, Ordering::Relaxed);
        }
        if event.hangup && !conn.eof {
            // Hard hangup (reset / error) without a clean EOF: no more bytes
            // will arrive.
            conn.eof = true;
        }
        self.pump(slot_of(event));
    }

    fn job_done(&mut self, slot: usize, conn_id: u64, line: String) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.id != conn_id {
            return; // slot reused since the job was submitted
        }
        conn.awaiting = None;
        conn.write_buf.extend_from_slice(line.as_bytes());
        self.pump(slot);
    }

    /// Advances a connection's state machine: parse → dispatch → flush →
    /// lifecycle/interest bookkeeping.  Everything that changes a
    /// connection's state funnels through here.
    fn pump(&mut self, slot: usize) {
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            conn.parse_lines();
            if conn.eof && !conn.read_buf.is_empty() {
                // `BufRead::lines` parity: a final unterminated line still
                // parses once the stream ends.
                let line = String::from_utf8_lossy(&conn.read_buf).into_owned();
                conn.read_buf.clear();
                conn.scan_from = 0;
                conn.lines.push_back(line);
            }
        }
        // Serialized dispatch: one in-flight job per connection preserves
        // response ordering; write backpressure pauses the whole pipeline.
        loop {
            let line = {
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return;
                };
                conn.update_throttle();
                if conn.dead || conn.awaiting.is_some() || conn.throttled {
                    break;
                }
                match conn.lines.pop_front() {
                    Some(line) => line,
                    None => break,
                }
            };
            let conn_id = match self.conns[slot].as_ref() {
                Some(conn) => conn.id,
                None => return,
            };
            self.handle_line(slot, conn_id, line);
        }
        let action = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            conn.flush();
            conn.update_throttle();
            if conn.eof {
                if let Some(inflight) = &conn.awaiting {
                    // The peer is gone (or half-closed); stop mining for it.
                    // The worker still answers promptly with best-so-far,
                    // which flushes if the write side survives (half-close).
                    if let Some(token) = &inflight.cancel {
                        token.cancel();
                    }
                }
            }
            let drained = conn.awaiting.is_none() && conn.lines.is_empty() && conn.unflushed() == 0;
            if conn.dead || (conn.eof && drained) {
                None // close below
            } else {
                let shutting = self.shared.shutting_down.load(Ordering::SeqCst);
                let desired = Interest {
                    readable: !conn.eof
                        && !conn.throttled
                        && conn.lines.len() < MAX_PIPELINE
                        && !shutting,
                    writable: conn.unflushed() > 0,
                };
                let action = if conn.eof && !desired.readable && !desired.writable {
                    // Nothing to watch; progress arrives via JobDone only.
                    // Deregistering also stops a half-closed peer's
                    // level-triggered hangup reports from spinning the loop.
                    if conn.registered {
                        conn.registered = false;
                        RegAction::Deregister(conn.fd)
                    } else {
                        RegAction::Keep
                    }
                } else if !conn.registered {
                    conn.registered = true;
                    conn.interest = desired;
                    RegAction::Register(conn.fd, desired)
                } else if desired != conn.interest {
                    conn.interest = desired;
                    RegAction::Modify(conn.fd, desired)
                } else {
                    RegAction::Keep
                };
                Some(action)
            }
        };
        match action {
            None => self.close(slot),
            Some(RegAction::Keep) => {}
            Some(RegAction::Deregister(fd)) => {
                let _ = self.poller.deregister(fd);
            }
            Some(RegAction::Register(fd, interest)) => {
                if self.poller.register(fd, slot, interest).is_err() {
                    self.close(slot);
                }
            }
            Some(RegAction::Modify(fd, interest)) => {
                if self.poller.modify(fd, slot, interest).is_err() {
                    self.close(slot);
                }
            }
        }
    }

    fn queue_response(&mut self, slot: usize, response: &Value) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.write_buf
                .extend_from_slice(render_line(response).as_bytes());
        }
    }

    fn handle_line(&mut self, slot: usize, conn_id: u64, line: String) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return;
        }
        let request: Value = match serde_json::from_str(trimmed) {
            Ok(value) => value,
            Err(e) => {
                let response = error_response(
                    &Value::Null,
                    &ServerError::BadRequest(format!("invalid JSON: {e}")),
                );
                self.queue_response(slot, &response);
                return;
            }
        };
        self.shared.metrics.note_request();
        match self.dispatch(slot, conn_id, &request) {
            Dispatch::Done(Ok(body)) => {
                let response = ok_response(&request, body);
                self.queue_response(slot, &response);
            }
            Dispatch::Done(Err(error)) => {
                self.shared.metrics.note_error();
                let response = error_response(&request, &error);
                self.queue_response(slot, &response);
            }
            Dispatch::Pooled { cancel } => {
                if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                    conn.awaiting = Some(Inflight { cancel });
                }
            }
        }
    }

    fn dispatch(&mut self, slot: usize, conn_id: u64, request: &Value) -> Dispatch {
        let typed = match Request::from_value(request) {
            Ok(typed) => typed,
            Err(error) => return Dispatch::Done(Err(error)),
        };
        let shared = &self.shared;
        match typed {
            Request::Ping => Dispatch::Done(Ok(Response::Pong.into_body())),
            Request::CreateSession(create) => Dispatch::Done(create_session(create, shared)),
            Request::LoadBaseline { session, edges } => {
                Dispatch::Done(load_baseline(&session, &edges, shared))
            }
            Request::Observe { session, updates } => {
                match self.observe(slot, conn_id, request, &session, updates) {
                    Ok(dispatch) => dispatch,
                    Err(error) => Dispatch::Done(Err(error)),
                }
            }
            Request::Mine {
                session,
                measure,
                bounds,
            } => self.job(
                slot,
                conn_id,
                request,
                &session,
                JobSpec::Mine { measure },
                &bounds,
            ),
            Request::TopK {
                session,
                k,
                measure,
                bounds,
            } => self.job(
                slot,
                conn_id,
                request,
                &session,
                JobSpec::TopK { k, measure },
                &bounds,
            ),
            Request::Sweep {
                session,
                alphas,
                measure,
                bounds,
            } => self.job(
                slot,
                conn_id,
                request,
                &session,
                JobSpec::Sweep { alphas, measure },
                &bounds,
            ),
            Request::Cancel { job } => Dispatch::Done(Ok(Response::Cancelled {
                cancelled: shared.jobs.cancel(&job),
            }
            .into_body())),
            Request::Stats { session } => Dispatch::Done(stats(session.as_deref(), shared)),
            Request::ListSessions => Dispatch::Done(Ok(Response::SessionList {
                sessions: shared.registry.names(),
            }
            .into_body())),
            Request::DropSession { session } => Dispatch::Done(drop_session(&session, shared)),
            Request::ServerStats => Dispatch::Done(Ok(json!({
                "sessions": shared.registry.len(),
                "worker_threads": shared.pool.threads(),
                "solver_threads": shared.config.solver_threads,
                "io_threads": shared.io.len(),
                "queue_capacity": shared.pool.capacity(),
                "jobs_executed": shared.pool.executed(),
                "jobs_rejected": shared.pool.rejected(),
                "jobs_inflight_named": shared.jobs.len(),
            }))),
            Request::Shutdown => {
                shared.shutting_down.store(true, Ordering::SeqCst);
                shared.wake_io();
                Dispatch::Done(Ok(Response::ShuttingDown.into_body()))
            }
        }
    }

    /// Flattens a mining-job submission into the dispatch result.
    #[allow(clippy::too_many_arguments)]
    fn job(
        &mut self,
        slot: usize,
        conn_id: u64,
        request: &Value,
        name: &str,
        spec: JobSpec,
        bounds: &JobBounds,
    ) -> Dispatch {
        match self.start_job(slot, conn_id, request, name, spec, bounds) {
            Ok(dispatch) => dispatch,
            Err(error) => Dispatch::Done(Err(error)),
        }
    }

    /// Converts a pool-level `Busy` into the wire-level load-shed reply and
    /// counts the shed.
    fn overloaded(&self) -> ServerError {
        self.shared.io_stats.shed.fetch_add(1, Ordering::Relaxed);
        let capacity = self.shared.pool.capacity().max(1) as u64;
        let depth = (self.shared.pool.queue_depth().max(0) as u64).min(capacity);
        ServerError::Overloaded {
            retry_after_ms: 25 + 175 * depth / capacity,
        }
    }

    /// Dispatches an `observe`: inline for plain sessions, pooled (behind the
    /// session's mailbox) for cadence-mining sessions whose observes can
    /// trigger a solve.
    fn observe(
        &mut self,
        slot: usize,
        conn_id: u64,
        request: &Value,
        name: &str,
        updates: Vec<(dcs_graph::VertexId, dcs_graph::VertexId, dcs_graph::Weight)>,
    ) -> Result<Dispatch, ServerError> {
        let session = self.shared.registry.get(name)?;
        let (cadence_mining, mailbox) = {
            let guard = lock_session(&session);
            (
                guard.monitor().config().remine_every > 0,
                Arc::clone(guard.mailbox()),
            )
        };
        if !cadence_mining {
            // No mining can trigger: apply inline, keeping streaming cheap.
            let body = apply_observe(&session, &updates)?;
            self.shared
                .metrics
                .note_observe(body["applied"].as_u64().unwrap_or(0));
            return Ok(Dispatch::Done(Ok(body)));
        }
        // Completing a re-mining period solves inside `Session::observe`, so
        // this observe is CPU-bound: run it on the worker pool, bounded both
        // by the pool queue and by the session's observe mailbox.
        if !mailbox.try_enter(self.shared.config.observe_mailbox.max(1)) {
            return Err(self.overloaded());
        }
        let completion = {
            let shared = Arc::clone(&self.shared);
            let io = Arc::clone(&self.io);
            let request = request.clone();
            let mailbox = Arc::clone(&mailbox);
            Box::new(move |outcome: Result<Value, ServerError>| {
                mailbox.exit();
                let response = match outcome {
                    Ok(body) => {
                        shared
                            .metrics
                            .note_observe(body["applied"].as_u64().unwrap_or(0));
                        ok_response(&request, body)
                    }
                    Err(error) => {
                        shared.metrics.note_error();
                        error_response(&request, &error)
                    }
                };
                io.post(IoMsg::JobDone {
                    slot,
                    conn_id,
                    line: render_line(&response),
                });
            })
        };
        let task_session = Arc::clone(&session);
        let submitted = self.shared.pool.submit_task_with(
            Box::new(move |_workspace| apply_observe(&task_session, &updates)),
            completion,
        );
        match submitted {
            Ok(()) => Ok(Dispatch::Pooled { cancel: None }),
            Err(error) => {
                mailbox.exit();
                match error {
                    ServerError::Busy => Err(self.overloaded()),
                    other => Err(other),
                }
            }
        }
    }

    /// Submits a mining job with the same per-job bounds as before: an
    /// absolute deadline (queue time counts), a work budget, and a
    /// cancellation token reachable from other connections via the optional
    /// client-chosen `job` id.  The server's `max_job_ms` cap is a deadline
    /// of its own — the tighter of the two wins.
    #[allow(clippy::too_many_arguments)]
    fn start_job(
        &mut self,
        slot: usize,
        conn_id: u64,
        request: &Value,
        name: &str,
        spec: JobSpec,
        bounds: &JobBounds,
    ) -> Result<Dispatch, ServerError> {
        let shared = &self.shared;
        let session = shared.registry.get(name)?;
        let measure = {
            let guard = lock_session(&session);
            spec.resolved_measure(guard.monitor().config().measure)
        };

        let token = CancelToken::new();
        let mut cx = SolveContext::unbounded()
            .with_cancel(&token)
            .with_threads(shared.config.solver_threads);
        let now = Instant::now();
        let client_deadline = bounds.deadline_ms.map(|ms| now + Duration::from_millis(ms));
        let server_cap = shared
            .config
            .max_job_ms
            .map(|ms| now + Duration::from_millis(ms));
        if let Some(at) = client_deadline.into_iter().chain(server_cap).min() {
            cx = cx.with_deadline_at(at);
        }
        if let Some(units) = bounds.budget {
            cx = cx.with_budget(units);
        }
        let job_id = match &bounds.job {
            Some(id) => {
                shared.jobs.register(id, token.clone())?;
                Some(id.clone())
            }
            None => None,
        };

        let kind = spec.kind_token();
        let measure = crate::protocol::measure_token(measure);
        let completion = {
            let shared = Arc::clone(&self.shared);
            let io = Arc::clone(&self.io);
            let request = request.clone();
            let job_id = job_id.clone();
            Box::new(move |outcome: Result<Value, ServerError>| {
                if let Some(id) = &job_id {
                    shared.jobs.remove(id);
                }
                let response = match outcome {
                    Ok(body) => {
                        // Wall time as the client saw it: queue wait plus
                        // solve.  Cache hits are counted but excluded from
                        // the latency histograms.
                        shared.metrics.record_job(
                            kind,
                            measure,
                            now.elapsed(),
                            body["termination"].as_str(),
                            body["cached"].as_bool().unwrap_or(false),
                        );
                        ok_response(&request, body)
                    }
                    Err(error) => {
                        shared.metrics.note_error();
                        error_response(&request, &error)
                    }
                };
                io.post(IoMsg::JobDone {
                    slot,
                    conn_id,
                    line: render_line(&response),
                });
            })
        };
        match shared.pool.submit_with(session, spec, cx, completion) {
            Ok(()) => Ok(Dispatch::Pooled {
                cancel: Some(token),
            }),
            Err(error) => {
                if let Some(id) = &job_id {
                    shared.jobs.remove(id);
                }
                match error {
                    ServerError::Busy => Err(self.overloaded()),
                    other => Err(other),
                }
            }
        }
    }
}

fn slot_of(event: Event) -> usize {
    event.token
}

fn create_session(create: CreateSessionRequest, shared: &Shared) -> Result<Value, ServerError> {
    let config = StreamingConfig {
        remine_every: create.remine_every as usize,
        alert_threshold: create.alert_threshold,
        measure: create.measure.unwrap_or(DensityMeasure::GraphAffinity),
    };
    if create.durable {
        return create_durable(create, config, shared);
    }
    // With a "pack" field the baseline comes from a graph-pack file on the
    // server's filesystem and the vertex count comes from the pack header —
    // "vertices" becomes optional and, when present, is cross-checked.
    if let Some(path) = &create.pack {
        let declared = create.vertices.map(|v| v as usize);
        let vertices = shared.registry.create_from_pack(
            &create.session,
            path,
            config,
            shared.config.max_vertices,
            declared,
        )?;
        return Ok(Response::SessionCreated {
            session: create.session,
            vertices,
            backing: "pack",
            durable: None,
        }
        .into_body());
    }
    let vertices = create.vertices.unwrap_or(0) as usize;
    if vertices == 0 || vertices > shared.config.max_vertices {
        return Err(ServerError::BadRequest(format!(
            "vertices must be in 1..={}",
            shared.config.max_vertices
        )));
    }
    shared.registry.create(&create.session, vertices, config)?;
    Ok(Response::SessionCreated {
        session: create.session,
        vertices,
        backing: "memory",
        durable: None,
    }
    .into_body())
}

/// Creates (or recovers) a durable session under the server's data
/// directory.  An existing on-disk session directory for the name is
/// recovered in place — checkpoint load plus WAL replay — rather than
/// treated as a conflict, so `create_session {"durable": true}` doubles as
/// the recover-on-demand entry point.
fn create_durable(
    create: CreateSessionRequest,
    config: StreamingConfig,
    shared: &Shared,
) -> Result<Value, ServerError> {
    let Some(data_dir) = &shared.config.data_dir else {
        return Err(ServerError::BadRequest(
            "durable sessions require a server data directory (serve --data-dir)".into(),
        ));
    };
    if shared.registry.get(&create.session).is_ok() {
        return Err(ServerError::SessionExists(create.session));
    }
    let dir = data_dir.join(durable::encode_session_dir(&create.session));
    if durable::is_session_dir(&dir) {
        let (_, session) = durable::open_session_dir(&dir, shared.config.wal_sync)?;
        let stats = session.stats();
        let (vertices, backing) = (stats.vertices, stats.backing);
        shared.registry.insert(&create.session, session)?;
        return Ok(Response::SessionCreated {
            session: create.session,
            vertices,
            backing,
            durable: Some(true),
        }
        .into_body());
    }
    let (mut session, vertices, backing) = if let Some(path) = &create.pack {
        let session = Session::from_pack(path, config, shared.config.max_vertices)?;
        let vertices = session.stats().vertices;
        if let Some(declared) = create.vertices {
            if declared as usize != vertices {
                return Err(ServerError::BadRequest(format!(
                    "request declares {declared} vertices but the pack has {vertices}"
                )));
            }
        }
        (session, vertices, "pack")
    } else {
        let vertices = create.vertices.unwrap_or(0) as usize;
        if vertices == 0 || vertices > shared.config.max_vertices {
            return Err(ServerError::BadRequest(format!(
                "vertices must be in 1..={}",
                shared.config.max_vertices
            )));
        }
        (Session::new(vertices, config)?, vertices, "memory")
    };
    let record = durable::CreationRecord {
        name: create.session.clone(),
        vertices,
        remine_every: config.remine_every,
        alert_threshold: config.alert_threshold,
        measure: config.measure,
        pack: create.pack.clone(),
    };
    session.attach_durable(durable::create_session_dir(
        data_dir,
        &record,
        shared.config.wal_sync,
    )?);
    shared.registry.insert(&create.session, session)?;
    Ok(Response::SessionCreated {
        session: create.session,
        vertices,
        backing,
        durable: Some(false),
    }
    .into_body())
}

/// Drops a session; a durable session's on-disk state is deleted with it
/// (drop is an explicit client decision, not a crash).
fn drop_session(name: &str, shared: &Shared) -> Result<Value, ServerError> {
    let session = shared.registry.get(name)?;
    shared.registry.drop_session(name)?;
    let durable = lock_session(&session).take_durable();
    if let Some(durable) = durable {
        let _ = std::fs::remove_dir_all(&durable.dir);
    }
    Ok(Response::SessionDropped.into_body())
}

fn load_baseline(
    name: &str,
    edges: &[(dcs_graph::VertexId, dcs_graph::VertexId, dcs_graph::Weight)],
    shared: &Shared,
) -> Result<Value, ServerError> {
    let session = shared.registry.get(name)?;
    let mut guard = lock_session(&session);
    let loaded = guard.load_baseline(edges)?;
    Ok(Response::BaselineLoaded {
        baseline_edges: loaded,
        version: guard.version(),
    }
    .into_body())
}

fn apply_observe(
    session: &SharedSession,
    updates: &[(dcs_graph::VertexId, dcs_graph::VertexId, dcs_graph::Weight)],
) -> Result<Value, ServerError> {
    let mut guard = lock_session(session);
    let outcome = guard.observe(updates)?;
    let version = guard.version();
    drop(guard);
    let alerts: Vec<Value> = outcome.alerts.iter().map(alert_to_json).collect();
    Ok(Response::Observed {
        applied: outcome.applied,
        ignored: outcome.ignored,
        version,
        alerts,
    }
    .into_body())
}

fn stats(name: Option<&str>, shared: &Shared) -> Result<Value, ServerError> {
    // Without a `session` field, `stats` reports the server-wide
    // observability payload; with one, the session's counters as before.
    let Some(name) = name else {
        let mut payload = shared
            .metrics
            .render(&shared.pool, &shared.jobs, &shared.registry);
        payload["queue"]["shard_depths"] = json!(shared.pool.shard_depths());
        let io = &shared.io_stats;
        let opened = io.opened.load(Ordering::Relaxed);
        let closed = io.closed.load(Ordering::Relaxed);
        payload["io"] = json!({
            "threads": shared.io.len(),
            "backend": shared.io_backend,
            "accepts": io.accepts.load(Ordering::Relaxed),
            "read_events": io.read_events.load(Ordering::Relaxed),
            "write_events": io.write_events.load(Ordering::Relaxed),
            "connections_opened": opened,
            "connections_open": opened.saturating_sub(closed),
            "shed": io.shed.load(Ordering::Relaxed),
        });
        payload["shards"] = Value::Array(
            shared
                .registry
                .shard_stats()
                .iter()
                .map(|shard| {
                    json!({
                        "sessions": shard.sessions,
                        "cache": {
                            "hits": shard.cache_hits,
                            "misses": shard.cache_misses,
                            "hit_rate": shard.cache_hit_rate(),
                        },
                        "mailbox": {
                            "pending": shard.mailbox_pending,
                            "high_water": shard.mailbox_high_water,
                            "shed": shard.mailbox_shed,
                        },
                    })
                })
                .collect(),
        );
        return Ok(payload);
    };
    let session = shared.registry.get(name)?;
    let guard = lock_session(&session);
    let stats = guard.stats();
    Ok(json!({
        "vertices": stats.vertices,
        "observations": stats.observations,
        "version": stats.version,
        "observed_edges": stats.observed_edges,
        "baseline_edges": stats.baseline_edges,
        "backing": stats.backing,
        "pack_open_ms": stats.pack_open_ms,
        "cache": {
            "entries": stats.cache_entries,
            "hits": stats.cache_hits,
            "misses": stats.cache_misses,
            "evictions": stats.cache_evictions,
        },
        "durable": stats.durable,
    }))
}

//! Error type of the mining service.

/// Everything that can go wrong while serving or speaking the protocol.
#[derive(Debug)]
pub enum ServerError {
    /// A request was not a JSON object or lacked required fields.
    BadRequest(String),
    /// The named session does not exist.
    UnknownSession(String),
    /// A session with the name already exists.
    SessionExists(String),
    /// The mining-job queue is full.
    Busy,
    /// The server shed the request under load; retry after the hinted delay.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The underlying mining library rejected the input.
    Dcs(dcs_core::DcsError),
    /// Opening or decoding a binary graph pack failed.
    Pack(dcs_graph::PackError),
    /// The client declared a protocol version this server does not speak.
    UnsupportedProto {
        /// The `"proto"` value the client sent.
        requested: u64,
    },
    /// A socket-level failure.
    Io(std::io::Error),
    /// The peer answered with `ok: false` (client side).
    Remote(String),
    /// The connection closed before a response arrived (client side).
    ConnectionClosed,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServerError::UnknownSession(name) => write!(f, "unknown session {name:?}"),
            ServerError::SessionExists(name) => write!(f, "session {name:?} already exists"),
            ServerError::Busy => write!(f, "server busy: job queue full"),
            ServerError::Overloaded { .. } => write!(f, "overloaded"),
            ServerError::Dcs(e) => write!(f, "{e}"),
            ServerError::Pack(e) => write!(f, "cannot load graph pack: {e}"),
            ServerError::UnsupportedProto { requested } => write!(
                f,
                "unsupported proto {requested} (server speaks proto {})",
                crate::protocol::PROTO_VERSION
            ),
            ServerError::Io(e) => write!(f, "I/O error: {e}"),
            ServerError::Remote(msg) => write!(f, "server error: {msg}"),
            ServerError::ConnectionClosed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Dcs(e) => Some(e),
            ServerError::Pack(e) => Some(e),
            ServerError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dcs_core::DcsError> for ServerError {
    fn from(e: dcs_core::DcsError) -> Self {
        ServerError::Dcs(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<dcs_graph::PackError> for ServerError {
    fn from(e: dcs_graph::PackError) -> Self {
        ServerError::Pack(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ServerError::BadRequest("no cmd".into())
            .to_string()
            .contains("no cmd"));
        assert!(ServerError::UnknownSession("x".into())
            .to_string()
            .contains("x"));
        assert!(ServerError::Busy.to_string().contains("busy"));
        assert_eq!(
            ServerError::Overloaded { retry_after_ms: 50 }.to_string(),
            "overloaded"
        );
        assert!(ServerError::ConnectionClosed.to_string().contains("closed"));
        assert_eq!(
            ServerError::UnsupportedProto { requested: 9 }.to_string(),
            "unsupported proto 9 (server speaks proto 1)"
        );
    }
}

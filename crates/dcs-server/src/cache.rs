//! Per-session memoization of mining results.

use std::collections::HashMap;

use serde_json::Value;

/// Memoizes mining results per `(graph version, job key)`.
///
/// A cached entry is valid only while the session's graph version equals the
/// version it was computed at; stale entries are overwritten on store.  The
/// cache is bounded: when full, storing a new key clears entries computed at
/// older versions first and falls back to clearing everything (mining results
/// are cheap to recompute relative to unbounded memory growth).
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<String, (u64, Value)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    capacity: usize,
}

const DEFAULT_CAPACITY: usize = 128;

impl ResultCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An empty cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key` at the given graph version, counting a hit or miss.
    pub fn lookup(&mut self, key: &str, version: u64) -> Option<Value> {
        match self.entries.get(key) {
            Some((v, value)) if *v == version => {
                self.hits += 1;
                Some(value.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a result computed at `version` under `key`.
    pub fn store(&mut self, key: String, version: u64, value: Value) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            let before = self.entries.len();
            // Evict entries stale relative to the version being stored.
            self.entries.retain(|_, (v, _)| *v == version);
            if self.entries.len() >= self.capacity {
                self.entries.clear();
            }
            self.evictions += (before - self.entries.len()) as u64;
        }
        self.entries.insert(key, (version, value));
    }

    /// Drops everything (used when the baseline is replaced).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total lookups that were answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups that required computing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries removed by capacity pressure so far.  `clear()` (baseline
    /// replacement) is invalidation, not eviction, and is not counted here.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The live cache keys, sorted.  Checkpoints record them (metadata only —
    /// cached values are recomputed, never persisted).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.entries.keys().cloned().collect();
        keys.sort();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn hit_only_on_matching_version() {
        let mut cache = ResultCache::new();
        assert!(cache.lookup("mine|affinity", 3).is_none());
        cache.store("mine|affinity".into(), 3, json!({"x": 1}));
        assert_eq!(cache.lookup("mine|affinity", 3), Some(json!({"x": 1})));
        // The graph moved: the entry no longer applies.
        assert!(cache.lookup("mine|affinity", 4).is_none());
        // Different job key at the same version: miss.
        assert!(cache.lookup("topk|3|affinity", 3).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn store_overwrites_stale_entry() {
        let mut cache = ResultCache::new();
        cache.store("k".into(), 1, json!(1));
        cache.store("k".into(), 2, json!(2));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("k", 1).is_none());
        assert_eq!(cache.lookup("k", 2), Some(json!(2)));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut cache = ResultCache::with_capacity(4);
        for i in 0..4 {
            cache.store(format!("old-{i}"), 1, json!(i));
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 0);
        // Storing at a newer version evicts the stale generation.
        cache.store("new".into(), 2, json!("fresh"));
        assert!(cache.len() <= 4);
        assert_eq!(cache.lookup("new", 2), Some(json!("fresh")));
        assert_eq!(cache.evictions(), 4);
        // Same-version overflow falls back to a full clear but still stores.
        let mut same = ResultCache::with_capacity(2);
        same.store("a".into(), 7, json!(1));
        same.store("b".into(), 7, json!(2));
        same.store("c".into(), 7, json!(3));
        assert!(same.len() <= 2);
        assert_eq!(same.lookup("c", 7), Some(json!(3)));
        assert_eq!(same.evictions(), 2);
        // clear() is invalidation, not eviction.
        same.clear();
        assert_eq!(same.evictions(), 2);
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = ResultCache::new();
        cache.store("k".into(), 1, json!(1));
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}

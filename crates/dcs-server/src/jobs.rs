//! Mining jobs and the fixed worker-thread pool that executes them.
//!
//! Mining is CPU-bound, so connection threads never solve anything themselves:
//! they submit a [`JobSpec`] and block on the job's reply channel.  The pool
//! has a fixed number of workers and a **bounded** queue — when the queue is
//! full, submission fails immediately with [`ServerError::Busy`] and the
//! client sees a `busy` error instead of unbounded latency.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use dcs_core::dcsga::DcsgaConfig;
use dcs_core::{
    alpha_sweep_in, default_alpha_grid, mine_difference_in, top_k_in, CancelToken, DensityMeasure,
    SharedWorkspace, SolveContext, Termination,
};
use dcs_graph::VertexId;
use dcs_obs::metrics::{Gauge, Histogram, HistogramSnapshot};
use dcs_obs::trace;
use serde_json::{json, Value};

use crate::error::ServerError;
use crate::protocol::{alert_to_json, measure_token, report_to_json, stats_to_json};
use crate::session::SharedSession;

/// Description of one mining job; doubles as the cache key.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Mine the current DCS (the `mine` command).
    Mine {
        /// Measure override; `None` uses the session's configured measure.
        measure: Option<DensityMeasure>,
    },
    /// Mine up to `k` vertex-disjoint contrast subgraphs (the `topk` command).
    TopK {
        /// Maximum number of subgraphs.
        k: usize,
        /// Measure override.
        measure: Option<DensityMeasure>,
    },
    /// α-sweep of the scaled difference graph (the `sweep` command).
    Sweep {
        /// α grid; `None` uses [`default_alpha_grid`].
        alphas: Option<Vec<f64>>,
        /// Measure override.
        measure: Option<DensityMeasure>,
    },
}

impl JobSpec {
    /// Stable lowercase token naming the job kind (`"mine"` / `"topk"` /
    /// `"sweep"`) — the label latency metrics are aggregated under.
    pub fn kind_token(&self) -> &'static str {
        match self {
            JobSpec::Mine { .. } => "mine",
            JobSpec::TopK { .. } => "topk",
            JobSpec::Sweep { .. } => "sweep",
        }
    }

    /// The measure this job will solve with, given the session's default.
    pub fn resolved_measure(&self, default_measure: DensityMeasure) -> DensityMeasure {
        let measure = match self {
            JobSpec::Mine { measure } => measure,
            JobSpec::TopK { measure, .. } => measure,
            JobSpec::Sweep { measure, .. } => measure,
        };
        measure.unwrap_or(default_measure)
    }

    /// The cache key of this job given the session's default measure.  Two
    /// requests with the same key against the same graph version are
    /// interchangeable.
    pub fn cache_key(&self, default_measure: DensityMeasure) -> String {
        let resolved = |m: &Option<DensityMeasure>| measure_token(m.unwrap_or(default_measure));
        match self {
            JobSpec::Mine { measure } => format!("mine|{}", resolved(measure)),
            JobSpec::TopK { k, measure } => format!("topk|{k}|{}", resolved(measure)),
            JobSpec::Sweep { alphas, measure } => {
                let grid = match alphas {
                    None => "default".to_string(),
                    Some(values) => values
                        .iter()
                        .map(|a| format!("{a}"))
                        .collect::<Vec<_>>()
                        .join(","),
                };
                format!("sweep|{grid}|{}", resolved(measure))
            }
        }
    }

    /// Executes the job against a session under a [`SolveContext`].
    ///
    /// The session lock is held only while snapshotting inputs and while
    /// storing the result — never while solving — so observers keep streaming
    /// into the session during long mines.  Snapshots are `Arc` handles to the
    /// session's incrementally maintained difference graph: an unchanged
    /// session hands out the same graph pointer to every worker, and even a
    /// changed one only rebuilds the adjacency rows its updates dirtied.
    ///
    /// The context's deadline / budget / cancellation token bound the solve:
    /// a tripped bound returns the best-so-far result with a non-`converged`
    /// `termination` field instead of blocking a worker indefinitely.  Only
    /// **converged** results enter the session cache — a truncated result is
    /// never served to another client.
    pub fn execute(
        &self,
        session: &SharedSession,
        cx: &SolveContext,
    ) -> Result<Value, ServerError> {
        // Snapshot under the lock.
        let (key, version, body, converged) = {
            let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
            let default_measure = guard.monitor().config().measure;
            let key = self.cache_key(default_measure);
            let version = guard.version();
            if let Some(mut hit) = guard.cache_mut().lookup(&key, version) {
                hit["cached"] = json!(true);
                return Ok(hit);
            }
            let snapshot = self.snapshot(&mut guard);
            drop(guard);

            // Solve without holding the session lock.
            let (body, termination) = self.solve(snapshot, version, cx)?;
            (key, version, body, termination.is_converged())
        };

        // Store for future identical queries at this version — converged
        // results only (a deadline/cancel/budget-truncated result is partial).
        if converged {
            let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
            if guard.version() == version {
                guard.cache_mut().store(key, version, body.clone());
            }
        }

        let mut response = body;
        response["cached"] = json!(false);
        Ok(response)
    }

    fn snapshot(&self, session: &mut crate::session::Session) -> Snapshot {
        let monitor = session.monitor_mut();
        match self {
            JobSpec::Mine { measure } => {
                let mut config = *monitor.config();
                if let Some(m) = measure {
                    config.measure = *m;
                }
                Snapshot::Mine {
                    seed: monitor.last_support().map(<[VertexId]>::to_vec),
                    observations: monitor.observations(),
                    gd: monitor.difference_snapshot(),
                    config,
                }
            }
            JobSpec::TopK { k, measure } => Snapshot::TopK {
                k: *k,
                measure: measure.unwrap_or(monitor.config().measure),
                gd: monitor.difference_snapshot(),
            },
            JobSpec::Sweep { alphas, measure } => Snapshot::Sweep {
                g2: monitor.observed_graph(),
                g1: monitor.baseline_arc(),
                alphas: alphas.clone().unwrap_or_else(default_alpha_grid),
                measure: measure.unwrap_or(monitor.config().measure),
            },
        }
    }

    fn solve(
        &self,
        snapshot: Snapshot,
        version: u64,
        cx: &SolveContext,
    ) -> Result<(Value, Termination), ServerError> {
        match snapshot {
            Snapshot::Mine {
                gd,
                config,
                observations,
                seed,
            } => {
                let alert = mine_difference_in(&gd, &config, observations, seed.as_deref(), cx);
                let termination = alert.stats.termination;
                Ok((
                    json!({
                        "version": version,
                        "result": alert_to_json(&alert),
                        "termination": termination.as_str(),
                    }),
                    termination,
                ))
            }
            Snapshot::TopK { gd, k, measure } => {
                // Measure dispatch lives in the engine (`MeasureSolver` inside
                // `top_k_in`) — the server no longer hard-codes solver choice.
                let outcome = top_k_in(&gd, k, measure, DcsgaConfig::default(), cx);
                let results: Vec<Value> = outcome
                    .solutions
                    .iter()
                    .enumerate()
                    .map(|(rank, solution)| {
                        let mut value = report_to_json(&solution.report_in(&gd, cx));
                        value["rank"] = json!(rank + 1);
                        value["objective"] = json!(solution.objective);
                        value
                    })
                    .collect();
                Ok((
                    json!({
                        "version": version,
                        "results": results,
                        "termination": outcome.termination.as_str(),
                        "stats": stats_to_json(&outcome.stats),
                    }),
                    outcome.termination,
                ))
            }
            Snapshot::Sweep {
                g2,
                g1,
                alphas,
                measure,
            } => {
                let sweep = alpha_sweep_in(&g2, &g1, &alphas, measure, cx)?;
                let rendered: Vec<Value> = sweep
                    .points
                    .iter()
                    .map(|point| {
                        let mut value = report_to_json(&point.report);
                        value["alpha"] = json!(point.alpha);
                        value["objective"] = json!(point.objective);
                        value
                    })
                    .collect();
                Ok((
                    json!({
                        "version": version,
                        "points": rendered,
                        "termination": sweep.termination.as_str(),
                        "stats": stats_to_json(&sweep.stats),
                    }),
                    sweep.termination,
                ))
            }
        }
    }
}

/// Inputs captured under the session lock, solved outside it.
///
/// Graphs are `Arc` handles into the session's delta engine (and baseline) —
/// capturing a snapshot clones pointers, not adjacency arrays.  Only the
/// observed graph of a sweep is materialised, because the sweep re-scales the
/// raw `(G2, G1)` pair rather than consuming `G_D`.
enum Snapshot {
    Mine {
        gd: Arc<dcs_graph::SignedGraph>,
        config: dcs_core::StreamingConfig,
        observations: usize,
        /// Warm-start seed: the support of the session's last cadence mine.
        seed: Option<Vec<VertexId>>,
    },
    TopK {
        gd: Arc<dcs_graph::SignedGraph>,
        k: usize,
        measure: DensityMeasure,
    },
    Sweep {
        g2: dcs_graph::SignedGraph,
        g1: Arc<dcs_graph::SignedGraph>,
        alphas: Vec<f64>,
        measure: DensityMeasure,
    },
}

/// Any unit of work the pool can run (mining queries, cadence observes).
///
/// The argument is the executing **worker thread's** [`SharedWorkspace`]: each worker
/// owns one workspace for its whole lifetime, so back-to-back jobs on a thread reuse
/// the same solver scratch buffers — peel heaps and the flow arena for average-degree
/// jobs, the dense DCSGA embedding arena for affinity jobs, which also mine the
/// snapshot's positive part as a filtered view instead of copying the CSR (mining
/// tasks thread the workspace into their [`SolveContext`]; observe tasks ignore it).
pub type Task = Box<dyn FnOnce(&SharedWorkspace) -> Result<Value, ServerError> + Send + 'static>;

struct Job {
    task: Task,
    reply: SyncSender<Result<Value, ServerError>>,
    /// When the job entered the queue — the worker that dequeues it records
    /// the wait into the pool's queue-wait histogram (and, when tracing is
    /// enabled, a [`trace::Phase::QueueWait`] event).
    enqueued: Instant,
}

/// A fixed set of worker threads draining a bounded job queue.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    executed: Arc<AtomicU64>,
    rejected: AtomicU64,
    threads: usize,
    capacity: usize,
    /// Jobs accepted but not yet picked up by a worker.
    queued: Arc<Gauge>,
    /// Jobs currently executing on a worker.
    inflight: Arc<Gauge>,
    /// Time jobs spent waiting in the queue, in microseconds.
    queue_wait_us: Arc<Histogram>,
}

impl WorkerPool {
    /// Spawns `threads` workers behind a queue of `capacity` pending jobs.
    pub fn new(threads: usize, capacity: usize) -> Self {
        let threads = threads.max(1);
        let capacity = capacity.max(1);
        let (sender, receiver) = sync_channel::<Job>(capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let executed = Arc::new(AtomicU64::new(0));
        let queued = Arc::new(Gauge::new());
        let inflight = Arc::new(Gauge::new());
        let queue_wait_us = Arc::new(Histogram::new());
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let executed = Arc::clone(&executed);
                let queued = Arc::clone(&queued);
                let inflight = Arc::clone(&inflight);
                let queue_wait_us = Arc::clone(&queue_wait_us);
                std::thread::spawn(move || {
                    // One solver workspace per worker, alive across jobs: the
                    // steady-state serving path re-mines into the same scratch
                    // buffers instead of allocating them per job.
                    let workspace = SharedWorkspace::new();
                    loop {
                        let job = {
                            let guard = receiver.lock().unwrap_or_else(PoisonError::into_inner);
                            guard.recv()
                        };
                        let Ok(job) = job else {
                            break; // queue closed: pool is shutting down
                        };
                        queued.dec();
                        inflight.inc();
                        let wait = job.enqueued.elapsed();
                        queue_wait_us.record_duration(wait);
                        trace::record(trace::Phase::QueueWait, job.enqueued, wait, 1);
                        let outcome = (job.task)(&workspace);
                        executed.fetch_add(1, Ordering::Relaxed);
                        inflight.dec();
                        // A dropped reply receiver (client went away) is fine.
                        let _ = job.reply.send(outcome);
                    }
                })
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            executed,
            rejected: AtomicU64::new(0),
            threads,
            capacity,
            queued,
            inflight,
            queue_wait_us,
        }
    }

    /// Submits a mining job bounded by `cx`; fails with [`ServerError::Busy`]
    /// when the queue is full.  On success, the returned receiver yields the
    /// job's result exactly once.  The context's deadline is absolute, so time
    /// spent waiting in the queue counts against the job's deadline — an
    /// overloaded server answers "deadline, best-so-far" rather than holding
    /// the client for queue time plus solve time.
    pub fn submit(
        &self,
        session: SharedSession,
        spec: JobSpec,
        cx: SolveContext,
    ) -> Result<Receiver<Result<Value, ServerError>>, ServerError> {
        self.submit_task(Box::new(move |workspace| {
            spec.execute(&session, &cx.with_workspace(workspace))
        }))
    }

    /// Submits an arbitrary task (used for observes on cadence-mining
    /// sessions, which can trigger a solve and therefore must not run on
    /// connection threads).  Same bounded-queue semantics as [`Self::submit`].
    pub fn submit_task(
        &self,
        task: Task,
    ) -> Result<Receiver<Result<Value, ServerError>>, ServerError> {
        let (reply, receiver) = sync_channel(1);
        let job = Job {
            task,
            reply,
            enqueued: Instant::now(),
        };
        let sender = self.sender.as_ref().ok_or(ServerError::Busy)?;
        // Count the job as queued *before* try_send: a worker may dequeue it
        // (and decrement) before try_send even returns, and a gauge that dips
        // negative transiently is worse than one that over-reports by one.
        self.queued.inc();
        match sender.try_send(job) {
            Ok(()) => Ok(receiver),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.queued.dec();
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServerError::Busy)
            }
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs executed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Jobs rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Jobs accepted but not yet picked up by a worker.  Racy by nature (a
    /// point-in-time gauge); may transiently over-report by one per worker.
    pub fn queue_depth(&self) -> i64 {
        self.queued.get().max(0)
    }

    /// Jobs currently executing on workers.
    pub fn inflight(&self) -> i64 {
        self.inflight.get().max(0)
    }

    /// Snapshot of the queue-wait distribution (microseconds).
    pub fn queue_wait_snapshot(&self) -> HistogramSnapshot {
        self.queue_wait_us.snapshot()
    }

    /// Closes the queue and joins every worker.
    pub fn shutdown(&mut self) {
        self.sender = None; // dropping the sender unblocks recv()
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Cancellation tokens of in-flight jobs, keyed by the client-supplied job id.
///
/// A mining request may carry a `"job"` field; the connection registers the job's
/// [`CancelToken`] here before submitting, so any *other* connection can abort it
/// with the `cancel` command.  Entries are removed when the job completes.
#[derive(Debug, Default)]
pub struct JobTable {
    tokens: Mutex<HashMap<String, CancelToken>>,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Registers an in-flight job; fails when the id is already in use (ids are
    /// client-chosen, so a duplicate is a client error, not a hash collision).
    pub fn register(&self, id: &str, token: CancelToken) -> Result<(), ServerError> {
        let mut tokens = self.tokens.lock().unwrap_or_else(PoisonError::into_inner);
        if tokens.contains_key(id) {
            return Err(ServerError::BadRequest(format!(
                "job id {id:?} is already in flight"
            )));
        }
        tokens.insert(id.to_string(), token);
        Ok(())
    }

    /// Cancels a registered job; returns whether the id was found.
    pub fn cancel(&self, id: &str) -> bool {
        let tokens = self.tokens.lock().unwrap_or_else(PoisonError::into_inner);
        match tokens.get(id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Removes a completed job's token.
    pub fn remove(&self, id: &str) {
        let mut tokens = self.tokens.lock().unwrap_or_else(PoisonError::into_inner);
        tokens.remove(id);
    }

    /// Number of registered (named, in-flight) jobs.
    pub fn len(&self) -> usize {
        self.tokens
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no named job is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dcs_core::StreamingConfig;

    fn shared_session(vertices: usize) -> SharedSession {
        let config = StreamingConfig {
            remine_every: 0,
            alert_threshold: 1.0,
            measure: DensityMeasure::GraphAffinity,
        };
        Arc::new(Mutex::new(Session::new(vertices, config).unwrap()))
    }

    fn seed_triangle(session: &SharedSession) {
        session
            .lock()
            .unwrap()
            .observe(&[(0, 1, 4.0), (0, 2, 4.0), (1, 2, 4.0), (3, 4, 0.5)]);
    }

    #[test]
    fn mine_job_finds_the_triangle_and_caches() {
        let session = shared_session(6);
        seed_triangle(&session);
        let spec = JobSpec::Mine { measure: None };
        let first = spec.execute(&session, &SolveContext::unbounded()).unwrap();
        assert_eq!(first["cached"], false);
        assert_eq!(first["result"]["subset"], serde_json::json!([0, 1, 2]));
        assert_eq!(first["result"]["triggered"], true);
        let second = spec.execute(&session, &SolveContext::unbounded()).unwrap();
        assert_eq!(second["cached"], true);
        assert_eq!(second["result"]["subset"], serde_json::json!([0, 1, 2]));
        // New observations invalidate the cache.
        session.lock().unwrap().observe(&[(3, 4, 1.0)]);
        let third = spec.execute(&session, &SolveContext::unbounded()).unwrap();
        assert_eq!(third["cached"], false);
    }

    #[test]
    fn distinct_specs_do_not_share_cache_entries() {
        let session = shared_session(6);
        seed_triangle(&session);
        let mine = JobSpec::Mine { measure: None };
        let mine_degree = JobSpec::Mine {
            measure: Some(DensityMeasure::AverageDegree),
        };
        assert_ne!(
            mine.cache_key(DensityMeasure::GraphAffinity),
            mine_degree.cache_key(DensityMeasure::GraphAffinity)
        );
        mine.execute(&session, &SolveContext::unbounded()).unwrap();
        let degree = mine_degree
            .execute(&session, &SolveContext::unbounded())
            .unwrap();
        assert_eq!(degree["cached"], false);
        // But an explicit measure equal to the default shares the key.
        let explicit = JobSpec::Mine {
            measure: Some(DensityMeasure::GraphAffinity),
        };
        assert_eq!(
            explicit
                .execute(&session, &SolveContext::unbounded())
                .unwrap()["cached"],
            true
        );
    }

    #[test]
    fn topk_and_sweep_jobs_produce_ranked_output() {
        let session = shared_session(8);
        session
            .lock()
            .unwrap()
            .observe(&[(0, 1, 6.0), (0, 2, 6.0), (1, 2, 6.0), (4, 5, 3.0)]);
        let topk = JobSpec::TopK {
            k: 3,
            measure: None,
        }
        .execute(&session, &SolveContext::unbounded())
        .unwrap();
        let results = topk["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0]["rank"], 1);
        assert_eq!(results[0]["subset"], serde_json::json!([0, 1, 2]));
        assert_eq!(results[1]["subset"], serde_json::json!([4, 5]));

        let sweep = JobSpec::Sweep {
            alphas: Some(vec![0.0, 1.0]),
            measure: None,
        }
        .execute(&session, &SolveContext::unbounded())
        .unwrap();
        let points = sweep["points"].as_array().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0]["alpha"], 0);
        assert_eq!(points[1]["alpha"], 1);
    }

    #[test]
    fn pool_executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8);
        let session = shared_session(6);
        seed_triangle(&session);
        let receivers: Vec<_> = (0..6)
            .map(|_| {
                pool.submit(
                    Arc::clone(&session),
                    JobSpec::Mine { measure: None },
                    SolveContext::unbounded(),
                )
                .unwrap()
            })
            .collect();
        let mut cached = 0;
        for receiver in receivers {
            let value = receiver.recv().unwrap().unwrap();
            assert_eq!(value["result"]["subset"], serde_json::json!([0, 1, 2]));
            if value["cached"] == true {
                cached += 1;
            }
        }
        assert!(cached >= 4, "later identical jobs come from the cache");
        assert_eq!(pool.executed(), 6);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.capacity(), 8);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One worker, capacity-1 queue, and jobs that block on the session
        // lock held by the test.  At most one job can sit in the worker's
        // hands (blocked on the lock) and one in the queue, so among three
        // submissions at least one must bounce with Busy — independent of
        // how the worker thread is scheduled.
        let pool = WorkerPool::new(1, 1);
        let session = shared_session(6);
        seed_triangle(&session);
        let guard = session.lock().unwrap();
        let mut receivers = Vec::new();
        let mut busy = 0usize;
        for _ in 0..3 {
            match pool.submit(
                Arc::clone(&session),
                JobSpec::Mine { measure: None },
                SolveContext::unbounded(),
            ) {
                Ok(receiver) => receivers.push(receiver),
                Err(ServerError::Busy) => busy += 1,
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        assert!(busy >= 1, "bounded queue must reject overload");
        assert!(pool.rejected() >= 1);
        // Unblock the session: every accepted job completes successfully.
        drop(guard);
        for receiver in receivers {
            assert!(receiver.recv().unwrap().is_ok());
        }
    }
}

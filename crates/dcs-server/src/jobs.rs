//! Mining jobs and the work-stealing worker pool that executes them.
//!
//! Mining is CPU-bound, so I/O threads never solve anything themselves: they
//! submit a [`JobSpec`] and either block on the job's reply channel
//! ([`WorkerPool::submit`], used by blocking callers and unit tests) or hand
//! the pool a completion callback ([`WorkerPool::submit_with`], the serving
//! tier's nonblocking path — the callback renders the response on the worker
//! thread and posts it back to the owning event loop).  The pool has a fixed
//! number of workers and a **bounded** admission count — when too many jobs
//! are pending, submission fails immediately with [`ServerError::Busy`] and
//! the caller decides how to shed the load.
//!
//! Scheduling is **work-stealing with snapshot batching**: mining jobs park in
//! a per-session pending list, and the worker that claims a session drains its
//! whole list in *one* session-lock pass — every claimed job sees the same
//! graph version and shares the same `Arc<SignedGraph>` snapshot handles.
//! Jobs with the same cache key are **coalesced** into one group solved once
//! (followers are answered with the leader's result, marked
//! `"coalesced": true`); distinct groups beyond the first are pushed onto the
//! claiming worker's deque, where idle workers steal them.  Batch sizes,
//! steal counts and coalesced-job counts are exported through the pool's
//! accessors into the server's `stats` payload.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker as WorkerDeque};

use dcs_core::dcsga::DcsgaConfig;
use dcs_core::{
    alpha_sweep_in, default_alpha_grid, mine_difference_in, top_k_in, CancelToken, DensityMeasure,
    SharedWorkspace, SolveContext, Termination,
};
use dcs_graph::VertexId;
use dcs_obs::metrics::{Gauge, Histogram, HistogramSnapshot};
use dcs_obs::trace;
use serde_json::{json, Value};

use crate::error::ServerError;
use crate::protocol::{alert_to_json, measure_token, report_to_json, stats_to_json};
use crate::session::SharedSession;

/// Description of one mining job; doubles as the cache key.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Mine the current DCS (the `mine` command).
    Mine {
        /// Measure override; `None` uses the session's configured measure.
        measure: Option<DensityMeasure>,
    },
    /// Mine up to `k` vertex-disjoint contrast subgraphs (the `topk` command).
    TopK {
        /// Maximum number of subgraphs.
        k: usize,
        /// Measure override.
        measure: Option<DensityMeasure>,
    },
    /// α-sweep of the scaled difference graph (the `sweep` command).
    Sweep {
        /// α grid; `None` uses [`default_alpha_grid`].
        alphas: Option<Vec<f64>>,
        /// Measure override.
        measure: Option<DensityMeasure>,
    },
}

impl JobSpec {
    /// Stable lowercase token naming the job kind (`"mine"` / `"topk"` /
    /// `"sweep"`) — the label latency metrics are aggregated under.
    pub fn kind_token(&self) -> &'static str {
        match self {
            JobSpec::Mine { .. } => "mine",
            JobSpec::TopK { .. } => "topk",
            JobSpec::Sweep { .. } => "sweep",
        }
    }

    /// The measure this job will solve with, given the session's default.
    pub fn resolved_measure(&self, default_measure: DensityMeasure) -> DensityMeasure {
        let measure = match self {
            JobSpec::Mine { measure } => measure,
            JobSpec::TopK { measure, .. } => measure,
            JobSpec::Sweep { measure, .. } => measure,
        };
        measure.unwrap_or(default_measure)
    }

    /// The cache key of this job given the session's default measure.  Two
    /// requests with the same key against the same graph version are
    /// interchangeable.
    pub fn cache_key(&self, default_measure: DensityMeasure) -> String {
        let resolved = |m: &Option<DensityMeasure>| measure_token(m.unwrap_or(default_measure));
        match self {
            JobSpec::Mine { measure } => format!("mine|{}", resolved(measure)),
            JobSpec::TopK { k, measure } => format!("topk|{k}|{}", resolved(measure)),
            JobSpec::Sweep { alphas, measure } => {
                let grid = match alphas {
                    None => "default".to_string(),
                    Some(values) => values
                        .iter()
                        .map(|a| format!("{a}"))
                        .collect::<Vec<_>>()
                        .join(","),
                };
                format!("sweep|{grid}|{}", resolved(measure))
            }
        }
    }

    /// Executes the job against a session under a [`SolveContext`].
    ///
    /// The session lock is held only while snapshotting inputs and while
    /// storing the result — never while solving — so observers keep streaming
    /// into the session during long mines.  Snapshots are `Arc` handles to the
    /// session's incrementally maintained difference graph: an unchanged
    /// session hands out the same graph pointer to every worker, and even a
    /// changed one only rebuilds the adjacency rows its updates dirtied.
    ///
    /// The context's deadline / budget / cancellation token bound the solve:
    /// a tripped bound returns the best-so-far result with a non-`converged`
    /// `termination` field instead of blocking a worker indefinitely.  Only
    /// **converged** results enter the session cache — a truncated result is
    /// never served to another client.
    pub fn execute(
        &self,
        session: &SharedSession,
        cx: &SolveContext,
    ) -> Result<Value, ServerError> {
        // Snapshot under the lock.
        let (key, version, body, converged) = {
            let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
            let default_measure = guard.monitor().config().measure;
            let key = self.cache_key(default_measure);
            let version = guard.version();
            if let Some(mut hit) = guard.cache_mut().lookup(&key, version) {
                hit["cached"] = json!(true);
                return Ok(hit);
            }
            let snapshot = self.snapshot(&mut guard);
            drop(guard);

            // Solve without holding the session lock.
            let (body, termination) = self.solve(snapshot, version, cx)?;
            (key, version, body, termination.is_converged())
        };

        // Store for future identical queries at this version — converged
        // results only (a deadline/cancel/budget-truncated result is partial).
        if converged {
            let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
            if guard.version() == version {
                guard.cache_mut().store(key, version, body.clone());
            }
        }

        let mut response = body;
        response["cached"] = json!(false);
        Ok(response)
    }

    fn snapshot(&self, session: &mut crate::session::Session) -> Snapshot {
        let monitor = session.monitor_mut();
        match self {
            JobSpec::Mine { measure } => {
                let mut config = *monitor.config();
                if let Some(m) = measure {
                    config.measure = *m;
                }
                Snapshot::Mine {
                    seed: monitor.last_support().map(<[VertexId]>::to_vec),
                    observations: monitor.observations(),
                    gd: monitor.difference_snapshot(),
                    config,
                }
            }
            JobSpec::TopK { k, measure } => Snapshot::TopK {
                k: *k,
                measure: measure.unwrap_or(monitor.config().measure),
                gd: monitor.difference_snapshot(),
            },
            JobSpec::Sweep { alphas, measure } => Snapshot::Sweep {
                g2: monitor.observed_graph(),
                g1: monitor.baseline_arc(),
                alphas: alphas.clone().unwrap_or_else(default_alpha_grid),
                measure: measure.unwrap_or(monitor.config().measure),
            },
        }
    }

    fn solve(
        &self,
        snapshot: Snapshot,
        version: u64,
        cx: &SolveContext,
    ) -> Result<(Value, Termination), ServerError> {
        match snapshot {
            Snapshot::Mine {
                gd,
                config,
                observations,
                seed,
            } => {
                let alert = mine_difference_in(&gd, &config, observations, seed.as_deref(), cx);
                let termination = alert.stats.termination;
                Ok((
                    json!({
                        "version": version,
                        "result": alert_to_json(&alert),
                        "termination": termination.as_str(),
                    }),
                    termination,
                ))
            }
            Snapshot::TopK { gd, k, measure } => {
                // Measure dispatch lives in the engine (`MeasureSolver` inside
                // `top_k_in`) — the server no longer hard-codes solver choice.
                let outcome = top_k_in(&gd, k, measure, DcsgaConfig::default(), cx);
                let results: Vec<Value> = outcome
                    .solutions
                    .iter()
                    .enumerate()
                    .map(|(rank, solution)| {
                        let mut value = report_to_json(&solution.report_in(&gd, cx));
                        value["rank"] = json!(rank + 1);
                        value["objective"] = json!(solution.objective);
                        value
                    })
                    .collect();
                Ok((
                    json!({
                        "version": version,
                        "results": results,
                        "termination": outcome.termination.as_str(),
                        "stats": stats_to_json(&outcome.stats),
                    }),
                    outcome.termination,
                ))
            }
            Snapshot::Sweep {
                g2,
                g1,
                alphas,
                measure,
            } => {
                let sweep = alpha_sweep_in(&g2, &g1, &alphas, measure, cx)?;
                let rendered: Vec<Value> = sweep
                    .points
                    .iter()
                    .map(|point| {
                        let mut value = report_to_json(&point.report);
                        value["alpha"] = json!(point.alpha);
                        value["objective"] = json!(point.objective);
                        value
                    })
                    .collect();
                Ok((
                    json!({
                        "version": version,
                        "points": rendered,
                        "termination": sweep.termination.as_str(),
                        "stats": stats_to_json(&sweep.stats),
                    }),
                    sweep.termination,
                ))
            }
        }
    }
}

/// Inputs captured under the session lock, solved outside it.
///
/// Graphs are `Arc` handles into the session's delta engine (and baseline) —
/// capturing a snapshot clones pointers, not adjacency arrays.  Only the
/// observed graph of a sweep is materialised, because the sweep re-scales the
/// raw `(G2, G1)` pair rather than consuming `G_D`.
enum Snapshot {
    Mine {
        gd: Arc<dcs_graph::SignedGraph>,
        config: dcs_core::StreamingConfig,
        observations: usize,
        /// Warm-start seed: the support of the session's last cadence mine.
        seed: Option<Vec<VertexId>>,
    },
    TopK {
        gd: Arc<dcs_graph::SignedGraph>,
        k: usize,
        measure: DensityMeasure,
    },
    Sweep {
        g2: dcs_graph::SignedGraph,
        g1: Arc<dcs_graph::SignedGraph>,
        alphas: Vec<f64>,
        measure: DensityMeasure,
    },
}

/// Any unit of work the pool can run (mining queries, cadence observes).
///
/// The argument is the executing **worker thread's** [`SharedWorkspace`]: each worker
/// owns one workspace for its whole lifetime, so back-to-back jobs on a thread reuse
/// the same solver scratch buffers — peel heaps and the flow arena for average-degree
/// jobs, the dense DCSGA embedding arena for affinity jobs, which also mine the
/// snapshot's positive part as a filtered view instead of copying the CSR (mining
/// tasks thread the workspace into their [`SolveContext`]; observe tasks ignore it).
pub type Task = Box<dyn FnOnce(&SharedWorkspace) -> Result<Value, ServerError> + Send + 'static>;

/// A completion callback invoked with the job's outcome on a worker thread.
///
/// The nonblocking counterpart of a reply channel: the serving tier's I/O
/// threads must never block on `recv`, so they hand the pool a callback that
/// renders the response and posts it back to the owning event loop.
pub type Completion = Box<dyn FnOnce(Result<Value, ServerError>) + Send + 'static>;

/// A reply slot of one submitted job: a synchronous channel (blocking
/// callers) or a completion callback (the event-loop path).
enum Reply {
    Channel(SyncSender<Result<Value, ServerError>>),
    Callback(Completion),
}

/// A mining job waiting in its session's pending list.
struct MiningJob {
    session: SharedSession,
    spec: JobSpec,
    cx: SolveContext,
    reply: Reply,
    /// When the job was accepted — the claiming worker records the wait into
    /// the pool's queue-wait histogram (and, when tracing is enabled, a
    /// [`trace::Phase::QueueWait`] event).
    enqueued: Instant,
}

/// An opaque task (cadence observes) — unbatchable, runs as-is.
struct OpaqueJob {
    task: Task,
    reply: Reply,
    enqueued: Instant,
}

/// A coalesced group snapshotted under the session lock and ready to solve.
/// Groups beyond the first of a claim are pushed onto the claiming worker's
/// deque, where idle workers steal them — the snapshot travels with the
/// ticket, so the thief never touches the session lock before solving.
struct ReadyGroup {
    session: SharedSession,
    spec: JobSpec,
    key: String,
    version: u64,
    snapshot: Snapshot,
    /// The leader's context: the whole group solves under its bounds.
    cx: SolveContext,
    /// Reply slots in arrival order; the first is the leader, the rest are
    /// answered with the leader's result marked `"coalesced": true`.
    members: Vec<Reply>,
}

/// A unit of scheduling in the pool's deques.
enum Ticket {
    /// "Session `key` has pending mining jobs" — the claiming worker drains
    /// them all in one lock pass.  Later tickets for an already-drained
    /// session are no-ops.
    Session(usize),
    /// A snapshotted group ready to solve (stealable).
    Group(Box<ReadyGroup>),
    /// An opaque task.
    Opaque(OpaqueJob),
}

/// State shared between the pool handle and its workers.
struct PoolShared {
    /// Global FIFO all submissions enter; workers take from it when their own
    /// deque is empty, and steal from each other when it is empty too.
    injector: Injector<Ticket>,
    stealers: Vec<Stealer<Ticket>>,
    /// Pending mining jobs per session (keyed by `Arc` pointer identity),
    /// sharded so submissions from many I/O threads do not serialize on one
    /// map lock.  `pending_depths[i]` mirrors shard `i`'s queued job count
    /// for the `stats` surface.
    pending_mining: Vec<Mutex<HashMap<usize, Vec<MiningJob>>>>,
    pending_depths: Vec<AtomicUsize>,
    /// Jobs accepted but not yet claimed by a worker — the admission counter.
    pending: AtomicUsize,
    /// Parking lot: a generation counter bumped on every submission, so idle
    /// workers sleep instead of spinning and wake promptly on new work.
    park: (Mutex<u64>, Condvar),
    shutdown: AtomicBool,
    executed: AtomicU64,
    steals: AtomicU64,
    coalesced: AtomicU64,
    queued: Gauge,
    inflight: Gauge,
    queue_wait_us: Histogram,
    /// Jobs per executed solve group (1 = no coalescing happened).
    batch_size: Histogram,
}

impl PoolShared {
    /// The pending-map shard of a session key.  Fibonacci multiplicative hash
    /// over the `Arc` address: the low bits are allocator-aligned zeros, so
    /// take the high bits of the product.
    fn mining_shard(&self, key: usize) -> usize {
        let hash = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
        (hash % self.pending_mining.len() as u64) as usize
    }

    fn generation(&self) -> u64 {
        *self.park.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wake(&self) {
        let mut generation = self.park.0.lock().unwrap_or_else(PoisonError::into_inner);
        *generation = generation.wrapping_add(1);
        self.park.1.notify_all();
    }

    /// Sleeps until the generation moves past `seen` (or a short timeout, as
    /// a lost-wakeup backstop).
    fn park(&self, seen: u64) {
        let guard = self.park.0.lock().unwrap_or_else(PoisonError::into_inner);
        if *guard != seen {
            return;
        }
        let _ = self
            .park
            .1
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
    }

    /// Counts one job as dequeued and records its queue wait.
    fn note_claimed(&self, enqueued: Instant) {
        self.pending.fetch_sub(1, Ordering::Relaxed);
        self.queued.dec();
        self.inflight.inc();
        let wait = enqueued.elapsed();
        self.queue_wait_us.record_duration(wait);
        trace::record(trace::Phase::QueueWait, enqueued, wait, 1);
    }

    /// Replies to one claimed job and closes its inflight accounting.
    fn finish(&self, reply: Reply, outcome: Result<Value, ServerError>) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.inflight.dec();
        match reply {
            // A dropped reply receiver (client went away) is fine.
            Reply::Channel(sender) => {
                let _ = sender.send(outcome);
            }
            Reply::Callback(done) => done(outcome),
        }
    }
}

/// A fixed set of work-stealing worker threads behind a bounded admission
/// count, with same-session mining jobs batched onto shared snapshots.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    rejected: AtomicU64,
    threads: usize,
    capacity: usize,
}

impl WorkerPool {
    /// Spawns `threads` workers admitting up to `capacity` pending jobs.
    pub fn new(threads: usize, capacity: usize) -> Self {
        let threads = threads.max(1);
        let capacity = capacity.max(1);
        let deques: Vec<WorkerDeque<Ticket>> =
            (0..threads).map(|_| WorkerDeque::new_fifo()).collect();
        let stealers: Vec<Stealer<Ticket>> = deques.iter().map(WorkerDeque::stealer).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            pending_mining: (0..threads).map(|_| Mutex::new(HashMap::new())).collect(),
            pending_depths: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
            pending: AtomicUsize::new(0),
            park: (Mutex::new(0), Condvar::new()),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            queued: Gauge::new(),
            inflight: Gauge::new(),
            queue_wait_us: Histogram::new(),
            batch_size: Histogram::new(),
        });
        let workers = deques
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, &deque, index))
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            rejected: AtomicU64::new(0),
            threads,
            capacity,
        }
    }

    /// Bounded admission: rejects with [`ServerError::Busy`] when `capacity`
    /// jobs are already pending (accepted but unclaimed) or the pool is
    /// shutting down.
    fn admit(&self) -> Result<(), ServerError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServerError::Busy);
        }
        let mut current = self.shared.pending.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServerError::Busy);
            }
            match self.shared.pending.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        self.shared.queued.inc();
        Ok(())
    }

    /// Submits a mining job bounded by `cx`; fails with [`ServerError::Busy`]
    /// when too many jobs are pending.  On success, the returned receiver
    /// yields the job's result exactly once.  The context's deadline is
    /// absolute, so time spent waiting in the queue counts against the job's
    /// deadline — an overloaded server answers "deadline, best-so-far" rather
    /// than holding the client for queue time plus solve time.
    ///
    /// Jobs against the same session are **batched**: the worker that claims
    /// them drains every pending job for that session in one session-lock
    /// pass, so all of them share one graph version and one set of
    /// `Arc<SignedGraph>` snapshots.  Jobs with the same cache key are solved
    /// once; the followers receive the leader's result with
    /// `"coalesced": true`.
    pub fn submit(
        &self,
        session: SharedSession,
        spec: JobSpec,
        cx: SolveContext,
    ) -> Result<Receiver<Result<Value, ServerError>>, ServerError> {
        let (reply, receiver) = sync_channel(1);
        self.submit_reply(session, spec, cx, Reply::Channel(reply))?;
        Ok(receiver)
    }

    /// Nonblocking variant of [`Self::submit`]: instead of a reply channel,
    /// `done` runs with the job's outcome **on the worker thread** that
    /// finishes it.  The serving tier's event loops use this to stay off
    /// blocking `recv` calls — the completion renders the response and posts
    /// it back to the connection's I/O thread.
    pub fn submit_with(
        &self,
        session: SharedSession,
        spec: JobSpec,
        cx: SolveContext,
        done: Completion,
    ) -> Result<(), ServerError> {
        self.submit_reply(session, spec, cx, Reply::Callback(done))
    }

    fn submit_reply(
        &self,
        session: SharedSession,
        spec: JobSpec,
        cx: SolveContext,
        reply: Reply,
    ) -> Result<(), ServerError> {
        self.admit()?;
        let key = Arc::as_ptr(&session) as usize;
        let job = MiningJob {
            session,
            spec,
            cx,
            reply,
            enqueued: Instant::now(),
        };
        let shard = self.shared.mining_shard(key);
        self.shared.pending_mining[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_default()
            .push(job);
        self.shared.pending_depths[shard].fetch_add(1, Ordering::Relaxed);
        // The ticket is pushed after the job is visible in the map, so every
        // ticket's job is claimable by the time the ticket is.
        self.shared.injector.push(Ticket::Session(key));
        self.shared.wake();
        Ok(())
    }

    /// Submits an arbitrary task (used for observes on cadence-mining
    /// sessions, which can trigger a solve and therefore must not run on
    /// I/O threads).  Same bounded-admission semantics as [`Self::submit`];
    /// opaque tasks are never batched.
    pub fn submit_task(
        &self,
        task: Task,
    ) -> Result<Receiver<Result<Value, ServerError>>, ServerError> {
        let (reply, receiver) = sync_channel(1);
        self.submit_task_reply(task, Reply::Channel(reply))?;
        Ok(receiver)
    }

    /// Nonblocking variant of [`Self::submit_task`] with a completion
    /// callback instead of a reply channel.
    pub fn submit_task_with(&self, task: Task, done: Completion) -> Result<(), ServerError> {
        self.submit_task_reply(task, Reply::Callback(done))
    }

    fn submit_task_reply(&self, task: Task, reply: Reply) -> Result<(), ServerError> {
        self.admit()?;
        self.shared.injector.push(Ticket::Opaque(OpaqueJob {
            task,
            reply,
            enqueued: Instant::now(),
        }));
        self.shared.wake();
        Ok(())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pending-job capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs executed so far (each coalesced follower counts as one job).
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs rejected because too many were pending.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Jobs accepted but not yet claimed by a worker.  Racy by nature (a
    /// point-in-time gauge); may transiently over-report by one per worker.
    pub fn queue_depth(&self) -> i64 {
        self.shared.queued.get().max(0)
    }

    /// Jobs claimed by workers and not yet answered (members of a group that
    /// is queued for stealing count as in flight).
    pub fn inflight(&self) -> i64 {
        self.shared.inflight.get().max(0)
    }

    /// Snapshot of the queue-wait distribution (microseconds).
    pub fn queue_wait_snapshot(&self) -> HistogramSnapshot {
        self.queue_wait_us_snapshot()
    }

    fn queue_wait_us_snapshot(&self) -> HistogramSnapshot {
        self.shared.queue_wait_us.snapshot()
    }

    /// Snapshot of the batch-size distribution: jobs answered per executed
    /// solve group (1 = no coalescing).
    pub fn batch_size_snapshot(&self) -> HistogramSnapshot {
        self.shared.batch_size.snapshot()
    }

    /// Tickets a worker obtained by stealing from another worker's deque.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Jobs answered from another job's solve (batch followers).
    pub fn coalesced(&self) -> u64 {
        self.shared.coalesced.load(Ordering::Relaxed)
    }

    /// Point-in-time pending mining jobs per internal session shard (the
    /// shard count equals the worker thread count).  Exposed through the
    /// server-wide `stats` surface as `queue.shard_depths`.
    pub fn shard_depths(&self) -> Vec<usize> {
        self.shared
            .pending_depths
            .iter()
            .map(|depth| depth.load(Ordering::Relaxed))
            .collect()
    }

    /// Stops admissions, drains the remaining work and joins every worker.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker thread: drain the local deque, then the injector, then steal;
/// park when everything is empty.  On shutdown the loop exits only once no
/// work is findable, so accepted jobs are drained, not dropped.
fn worker_loop(shared: &Arc<PoolShared>, deque: &WorkerDeque<Ticket>, index: usize) {
    // One solver workspace per worker, alive across jobs: the steady-state
    // serving path re-mines into the same scratch buffers instead of
    // allocating them per job.
    let workspace = SharedWorkspace::new();
    loop {
        // Read the generation *before* scanning, so a submission racing the
        // scan bumps it and the park below returns immediately.
        let generation = shared.generation();
        match find_ticket(shared, deque, index) {
            Some(ticket) => process_ticket(shared, deque, ticket, &workspace),
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                shared.park(generation);
            }
        }
    }
}

/// Local deque first (FIFO), then the shared injector, then stealing from the
/// other workers' deques (counted into the steal telemetry).
fn find_ticket(shared: &PoolShared, deque: &WorkerDeque<Ticket>, index: usize) -> Option<Ticket> {
    if let Some(ticket) = deque.pop() {
        return Some(ticket);
    }
    if let Steal::Success(ticket) = shared.injector.steal() {
        return Some(ticket);
    }
    for (other, stealer) in shared.stealers.iter().enumerate() {
        if other == index {
            continue;
        }
        if let Steal::Success(ticket) = stealer.steal() {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            return Some(ticket);
        }
    }
    None
}

fn process_ticket(
    shared: &Arc<PoolShared>,
    deque: &WorkerDeque<Ticket>,
    ticket: Ticket,
    workspace: &SharedWorkspace,
) {
    match ticket {
        Ticket::Session(key) => claim_session(shared, deque, key, workspace),
        Ticket::Group(group) => solve_group(shared, *group, workspace),
        Ticket::Opaque(job) => {
            shared.note_claimed(job.enqueued);
            let outcome = (job.task)(workspace);
            shared.finish(job.reply, outcome);
        }
    }
}

/// Drains every pending mining job of `key`'s session and serves the batch:
/// one session-lock pass answers cache hits and snapshots one [`ReadyGroup`]
/// per distinct cache key (all sharing the lock pass's graph version and
/// `Arc` snapshot handles).  The first group is solved on this worker; the
/// rest go onto its deque for other workers to steal.
fn claim_session(
    shared: &Arc<PoolShared>,
    deque: &WorkerDeque<Ticket>,
    key: usize,
    workspace: &SharedWorkspace,
) {
    let shard = shared.mining_shard(key);
    let jobs = shared.pending_mining[shard]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&key);
    let Some(jobs) = jobs else {
        return; // an earlier ticket already drained this session
    };
    if jobs.is_empty() {
        return;
    }
    shared.pending_depths[shard].fetch_sub(jobs.len(), Ordering::Relaxed);
    for job in &jobs {
        shared.note_claimed(job.enqueued);
    }

    let session = Arc::clone(&jobs[0].session);
    let mut groups: Vec<Box<ReadyGroup>> = Vec::new();
    {
        let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
        let default_measure = guard.monitor().config().measure;
        let version = guard.version();
        for job in jobs {
            let cache_key = job.spec.cache_key(default_measure);
            if let Some(mut hit) = guard.cache_mut().lookup(&cache_key, version) {
                hit["cached"] = json!(true);
                shared.finish(job.reply, Ok(hit));
                continue;
            }
            if let Some(group) = groups.iter_mut().find(|g| g.key == cache_key) {
                group.members.push(job.reply);
            } else {
                let snapshot = job.spec.snapshot(&mut guard);
                groups.push(Box::new(ReadyGroup {
                    session: Arc::clone(&session),
                    spec: job.spec,
                    key: cache_key,
                    version,
                    snapshot,
                    cx: job.cx,
                    members: vec![job.reply],
                }));
            }
        }
    }

    let mut groups = groups.into_iter();
    let first = groups.next();
    let mut pushed = false;
    for extra in groups {
        deque.push(Ticket::Group(extra));
        pushed = true;
    }
    if pushed {
        shared.wake(); // idle workers can steal the extra groups
    }
    if let Some(group) = first {
        solve_group(shared, *group, workspace);
    }
}

/// Solves one coalesced group: one solve under the leader's context, one
/// cache store (converged results at an unchanged version only), one reply
/// per member — followers marked `"coalesced": true`.
fn solve_group(shared: &PoolShared, group: ReadyGroup, workspace: &SharedWorkspace) {
    let ReadyGroup {
        session,
        spec,
        key,
        version,
        snapshot,
        cx,
        members,
    } = group;
    shared.batch_size.record(members.len() as u64);
    match spec.solve(snapshot, version, &cx.with_workspace(workspace)) {
        Ok((body, termination)) => {
            if termination.is_converged() {
                let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
                if guard.version() == version {
                    guard.cache_mut().store(key, version, body.clone());
                }
            }
            for (position, reply) in members.into_iter().enumerate() {
                let mut response = body.clone();
                response["cached"] = json!(false);
                if position > 0 {
                    response["coalesced"] = json!(true);
                    shared.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                shared.finish(reply, Ok(response));
            }
        }
        Err(error) => {
            // `ServerError` is not `Clone`: the leader gets the error itself,
            // followers a rendered copy.
            let message = error.to_string();
            let mut members = members.into_iter();
            if let Some(leader) = members.next() {
                shared.finish(leader, Err(error));
            }
            for reply in members {
                shared.finish(reply, Err(ServerError::Remote(message.clone())));
            }
        }
    }
}

/// Cancellation tokens of in-flight jobs, keyed by the client-supplied job id.
///
/// A mining request may carry a `"job"` field; the connection registers the job's
/// [`CancelToken`] here before submitting, so any *other* connection can abort it
/// with the `cancel` command.  Entries are removed when the job completes.
#[derive(Debug, Default)]
pub struct JobTable {
    tokens: Mutex<HashMap<String, CancelToken>>,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Registers an in-flight job; fails when the id is already in use (ids are
    /// client-chosen, so a duplicate is a client error, not a hash collision).
    pub fn register(&self, id: &str, token: CancelToken) -> Result<(), ServerError> {
        let mut tokens = self.tokens.lock().unwrap_or_else(PoisonError::into_inner);
        if tokens.contains_key(id) {
            return Err(ServerError::BadRequest(format!(
                "job id {id:?} is already in flight"
            )));
        }
        tokens.insert(id.to_string(), token);
        Ok(())
    }

    /// Cancels a registered job; returns whether the id was found.
    pub fn cancel(&self, id: &str) -> bool {
        let tokens = self.tokens.lock().unwrap_or_else(PoisonError::into_inner);
        match tokens.get(id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Removes a completed job's token.
    pub fn remove(&self, id: &str) {
        let mut tokens = self.tokens.lock().unwrap_or_else(PoisonError::into_inner);
        tokens.remove(id);
    }

    /// Number of registered (named, in-flight) jobs.
    pub fn len(&self) -> usize {
        self.tokens
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether no named job is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dcs_core::StreamingConfig;

    fn shared_session(vertices: usize) -> SharedSession {
        let config = StreamingConfig {
            remine_every: 0,
            alert_threshold: 1.0,
            measure: DensityMeasure::GraphAffinity,
        };
        Arc::new(Mutex::new(Session::new(vertices, config).unwrap()))
    }

    fn seed_triangle(session: &SharedSession) {
        session
            .lock()
            .unwrap()
            .observe(&[(0, 1, 4.0), (0, 2, 4.0), (1, 2, 4.0), (3, 4, 0.5)])
            .unwrap();
    }

    #[test]
    fn mine_job_finds_the_triangle_and_caches() {
        let session = shared_session(6);
        seed_triangle(&session);
        let spec = JobSpec::Mine { measure: None };
        let first = spec.execute(&session, &SolveContext::unbounded()).unwrap();
        assert_eq!(first["cached"], false);
        assert_eq!(first["result"]["subset"], serde_json::json!([0, 1, 2]));
        assert_eq!(first["result"]["triggered"], true);
        let second = spec.execute(&session, &SolveContext::unbounded()).unwrap();
        assert_eq!(second["cached"], true);
        assert_eq!(second["result"]["subset"], serde_json::json!([0, 1, 2]));
        // New observations invalidate the cache.
        session.lock().unwrap().observe(&[(3, 4, 1.0)]).unwrap();
        let third = spec.execute(&session, &SolveContext::unbounded()).unwrap();
        assert_eq!(third["cached"], false);
    }

    #[test]
    fn distinct_specs_do_not_share_cache_entries() {
        let session = shared_session(6);
        seed_triangle(&session);
        let mine = JobSpec::Mine { measure: None };
        let mine_degree = JobSpec::Mine {
            measure: Some(DensityMeasure::AverageDegree),
        };
        assert_ne!(
            mine.cache_key(DensityMeasure::GraphAffinity),
            mine_degree.cache_key(DensityMeasure::GraphAffinity)
        );
        mine.execute(&session, &SolveContext::unbounded()).unwrap();
        let degree = mine_degree
            .execute(&session, &SolveContext::unbounded())
            .unwrap();
        assert_eq!(degree["cached"], false);
        // But an explicit measure equal to the default shares the key.
        let explicit = JobSpec::Mine {
            measure: Some(DensityMeasure::GraphAffinity),
        };
        assert_eq!(
            explicit
                .execute(&session, &SolveContext::unbounded())
                .unwrap()["cached"],
            true
        );
    }

    #[test]
    fn topk_and_sweep_jobs_produce_ranked_output() {
        let session = shared_session(8);
        session
            .lock()
            .unwrap()
            .observe(&[(0, 1, 6.0), (0, 2, 6.0), (1, 2, 6.0), (4, 5, 3.0)])
            .unwrap();
        let topk = JobSpec::TopK {
            k: 3,
            measure: None,
        }
        .execute(&session, &SolveContext::unbounded())
        .unwrap();
        let results = topk["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0]["rank"], 1);
        assert_eq!(results[0]["subset"], serde_json::json!([0, 1, 2]));
        assert_eq!(results[1]["subset"], serde_json::json!([4, 5]));

        let sweep = JobSpec::Sweep {
            alphas: Some(vec![0.0, 1.0]),
            measure: None,
        }
        .execute(&session, &SolveContext::unbounded())
        .unwrap();
        let points = sweep["points"].as_array().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0]["alpha"], 0);
        assert_eq!(points[1]["alpha"], 1);
    }

    #[test]
    fn pool_executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8);
        let session = shared_session(6);
        seed_triangle(&session);
        let receivers: Vec<_> = (0..6)
            .map(|_| {
                pool.submit(
                    Arc::clone(&session),
                    JobSpec::Mine { measure: None },
                    SolveContext::unbounded(),
                )
                .unwrap()
            })
            .collect();
        let mut shared = 0;
        for receiver in receivers {
            let value = receiver.recv().unwrap().unwrap();
            assert_eq!(value["result"]["subset"], serde_json::json!([0, 1, 2]));
            // Identical jobs are answered either from the cache or from a
            // coalesced batch — exactly one of the six pays for a solve.
            if value["cached"] == true || value["coalesced"] == true {
                shared += 1;
            }
        }
        assert!(shared >= 4, "later identical jobs share the first solve");
        assert_eq!(pool.executed(), 6);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.capacity(), 8);
    }

    #[test]
    fn same_version_jobs_coalesce_into_one_batch() {
        // One worker.  The first job blocks the worker on the session lock
        // (held by the test); three more identical jobs pile up behind it.
        // A budget of 0 units keeps every result non-converged, so nothing
        // enters the cache and the pile-up must be answered by coalescing —
        // one solve, followers marked "coalesced".
        let pool = WorkerPool::new(1, 16);
        let session = shared_session(6);
        seed_triangle(&session);
        let cx = || SolveContext::unbounded().with_budget(0);
        let guard = session.lock().unwrap();
        let first = pool
            .submit(Arc::clone(&session), JobSpec::Mine { measure: None }, cx())
            .unwrap();
        // Give the worker time to claim the first job and block on the lock.
        std::thread::sleep(Duration::from_millis(100));
        let rest: Vec<_> = (0..3)
            .map(|_| {
                pool.submit(Arc::clone(&session), JobSpec::Mine { measure: None }, cx())
                    .unwrap()
            })
            .collect();
        drop(guard);
        let value = first.recv().unwrap().unwrap();
        assert_eq!(value["cached"], false);
        let mut coalesced = 0;
        for receiver in rest {
            let value = receiver.recv().unwrap().unwrap();
            assert_eq!(value["cached"], false, "budget-0 results must not cache");
            if value["coalesced"] == true {
                coalesced += 1;
            }
        }
        assert!(
            coalesced >= 2,
            "piled-up identical jobs must share one solve, got {coalesced}"
        );
        assert_eq!(pool.coalesced(), coalesced as u64);
        let batches = pool.batch_size_snapshot();
        assert!(batches.count >= 1, "batch sizes must be recorded");
        assert!(batches.max >= 3, "the pile-up forms a batch of at least 3");
        assert_eq!(pool.executed(), 4);
    }

    #[test]
    fn callback_submissions_complete_without_a_channel() {
        let pool = WorkerPool::new(2, 8);
        let session = shared_session(6);
        seed_triangle(&session);
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..3 {
            let tx = tx.clone();
            pool.submit_with(
                Arc::clone(&session),
                JobSpec::Mine { measure: None },
                SolveContext::unbounded(),
                Box::new(move |outcome| {
                    let value = outcome.unwrap();
                    tx.send(value["result"]["subset"].clone()).unwrap();
                }),
            )
            .unwrap();
        }
        for _ in 0..3 {
            let subset = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(subset, serde_json::json!([0, 1, 2]));
        }
        // Opaque-task callbacks run too.
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit_task_with(
            Box::new(|_| Ok(json!({"done": true}))),
            Box::new(move |outcome| tx.send(outcome.unwrap()).unwrap()),
        )
        .unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap()["done"],
            true
        );
        // The sharded pending maps drained back to empty.
        let depths = pool.shard_depths();
        assert_eq!(depths.len(), pool.threads());
        assert_eq!(depths.iter().sum::<usize>(), 0);
        assert_eq!(pool.executed(), 4);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One worker, capacity-1 queue, and jobs that block on the session
        // lock held by the test.  At most one job can sit in the worker's
        // hands (blocked on the lock) and one in the queue, so among three
        // submissions at least one must bounce with Busy — independent of
        // how the worker thread is scheduled.
        let pool = WorkerPool::new(1, 1);
        let session = shared_session(6);
        seed_triangle(&session);
        let guard = session.lock().unwrap();
        let mut receivers = Vec::new();
        let mut busy = 0usize;
        for _ in 0..3 {
            match pool.submit(
                Arc::clone(&session),
                JobSpec::Mine { measure: None },
                SolveContext::unbounded(),
            ) {
                Ok(receiver) => receivers.push(receiver),
                Err(ServerError::Busy) => busy += 1,
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        assert!(busy >= 1, "bounded queue must reject overload");
        assert!(pool.rejected() >= 1);
        // Unblock the session: every accepted job completes successfully.
        drop(guard);
        for receiver in receivers {
            assert!(receiver.recv().unwrap().is_ok());
        }
    }
}

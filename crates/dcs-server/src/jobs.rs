//! Mining jobs and the fixed worker-thread pool that executes them.
//!
//! Mining is CPU-bound, so connection threads never solve anything themselves:
//! they submit a [`JobSpec`] and block on the job's reply channel.  The pool
//! has a fixed number of workers and a **bounded** queue — when the queue is
//! full, submission fails immediately with [`ServerError::Busy`] and the
//! client sees a `busy` error instead of unbounded latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use dcs_core::dcsga::DcsgaConfig;
use dcs_core::{
    alpha_sweep, default_alpha_grid, mine_difference_seeded, top_k_affinity, top_k_average_degree,
    ContrastReport, DensityMeasure,
};
use dcs_graph::VertexId;
use serde_json::{json, Value};

use crate::error::ServerError;
use crate::protocol::{alert_to_json, measure_token, report_to_json};
use crate::session::SharedSession;

/// Description of one mining job; doubles as the cache key.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Mine the current DCS (the `mine` command).
    Mine {
        /// Measure override; `None` uses the session's configured measure.
        measure: Option<DensityMeasure>,
    },
    /// Mine up to `k` vertex-disjoint contrast subgraphs (the `topk` command).
    TopK {
        /// Maximum number of subgraphs.
        k: usize,
        /// Measure override.
        measure: Option<DensityMeasure>,
    },
    /// α-sweep of the scaled difference graph (the `sweep` command).
    Sweep {
        /// α grid; `None` uses [`default_alpha_grid`].
        alphas: Option<Vec<f64>>,
        /// Measure override.
        measure: Option<DensityMeasure>,
    },
}

impl JobSpec {
    /// The cache key of this job given the session's default measure.  Two
    /// requests with the same key against the same graph version are
    /// interchangeable.
    pub fn cache_key(&self, default_measure: DensityMeasure) -> String {
        let resolved = |m: &Option<DensityMeasure>| measure_token(m.unwrap_or(default_measure));
        match self {
            JobSpec::Mine { measure } => format!("mine|{}", resolved(measure)),
            JobSpec::TopK { k, measure } => format!("topk|{k}|{}", resolved(measure)),
            JobSpec::Sweep { alphas, measure } => {
                let grid = match alphas {
                    None => "default".to_string(),
                    Some(values) => values
                        .iter()
                        .map(|a| format!("{a}"))
                        .collect::<Vec<_>>()
                        .join(","),
                };
                format!("sweep|{grid}|{}", resolved(measure))
            }
        }
    }

    /// Executes the job against a session.
    ///
    /// The session lock is held only while snapshotting inputs and while
    /// storing the result — never while solving — so observers keep streaming
    /// into the session during long mines.  Snapshots are `Arc` handles to the
    /// session's incrementally maintained difference graph: an unchanged
    /// session hands out the same graph pointer to every worker, and even a
    /// changed one only rebuilds the adjacency rows its updates dirtied.
    pub fn execute(&self, session: &SharedSession) -> Result<Value, ServerError> {
        // Snapshot under the lock.
        let (key, version, body) = {
            let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
            let default_measure = guard.monitor().config().measure;
            let key = self.cache_key(default_measure);
            let version = guard.version();
            if let Some(mut hit) = guard.cache_mut().lookup(&key, version) {
                hit["cached"] = json!(true);
                return Ok(hit);
            }
            let snapshot = self.snapshot(&mut guard);
            drop(guard);

            // Solve without holding the session lock.
            let body = self.solve(snapshot, version)?;
            (key, version, body)
        };

        // Store for future identical queries at this version.
        let mut guard = session.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.version() == version {
            guard.cache_mut().store(key, version, body.clone());
        }
        drop(guard);

        let mut response = body;
        response["cached"] = json!(false);
        Ok(response)
    }

    fn snapshot(&self, session: &mut crate::session::Session) -> Snapshot {
        let monitor = session.monitor_mut();
        match self {
            JobSpec::Mine { measure } => {
                let mut config = *monitor.config();
                if let Some(m) = measure {
                    config.measure = *m;
                }
                Snapshot::Mine {
                    seed: monitor.last_support().map(<[VertexId]>::to_vec),
                    observations: monitor.observations(),
                    gd: monitor.difference_snapshot(),
                    config,
                }
            }
            JobSpec::TopK { k, measure } => Snapshot::TopK {
                k: *k,
                measure: measure.unwrap_or(monitor.config().measure),
                gd: monitor.difference_snapshot(),
            },
            JobSpec::Sweep { alphas, measure } => Snapshot::Sweep {
                g2: monitor.observed_graph(),
                g1: monitor.baseline_arc(),
                alphas: alphas.clone().unwrap_or_else(default_alpha_grid),
                measure: measure.unwrap_or(monitor.config().measure),
            },
        }
    }

    fn solve(&self, snapshot: Snapshot, version: u64) -> Result<Value, ServerError> {
        match snapshot {
            Snapshot::Mine {
                gd,
                config,
                observations,
                seed,
            } => {
                let alert = mine_difference_seeded(&gd, &config, observations, seed.as_deref());
                Ok(json!({ "version": version, "result": alert_to_json(&alert) }))
            }
            Snapshot::TopK { gd, k, measure } => {
                let mut results = Vec::new();
                match measure {
                    DensityMeasure::GraphAffinity => {
                        for (rank, solution) in top_k_affinity(&gd, k, DcsgaConfig::default())
                            .iter()
                            .enumerate()
                        {
                            let report = ContrastReport::for_embedding(&gd, &solution.embedding);
                            let mut value = report_to_json(&report);
                            value["rank"] = json!(rank + 1);
                            value["objective"] = json!(solution.affinity_difference);
                            results.push(value);
                        }
                    }
                    DensityMeasure::AverageDegree | DensityMeasure::TotalDegree => {
                        for (rank, solution) in top_k_average_degree(&gd, k).iter().enumerate() {
                            let report = ContrastReport::for_subset(&gd, &solution.subset);
                            let mut value = report_to_json(&report);
                            value["rank"] = json!(rank + 1);
                            value["objective"] = json!(solution.density_difference);
                            results.push(value);
                        }
                    }
                }
                Ok(json!({ "version": version, "results": results }))
            }
            Snapshot::Sweep {
                g2,
                g1,
                alphas,
                measure,
            } => {
                let points = alpha_sweep(&g2, &g1, &alphas, measure)?;
                let rendered: Vec<Value> = points
                    .iter()
                    .map(|point| {
                        let mut value = report_to_json(&point.report);
                        value["alpha"] = json!(point.alpha);
                        value["objective"] = json!(point.objective);
                        value
                    })
                    .collect();
                Ok(json!({ "version": version, "points": rendered }))
            }
        }
    }
}

/// Inputs captured under the session lock, solved outside it.
///
/// Graphs are `Arc` handles into the session's delta engine (and baseline) —
/// capturing a snapshot clones pointers, not adjacency arrays.  Only the
/// observed graph of a sweep is materialised, because the sweep re-scales the
/// raw `(G2, G1)` pair rather than consuming `G_D`.
enum Snapshot {
    Mine {
        gd: Arc<dcs_graph::SignedGraph>,
        config: dcs_core::StreamingConfig,
        observations: usize,
        /// Warm-start seed: the support of the session's last cadence mine.
        seed: Option<Vec<VertexId>>,
    },
    TopK {
        gd: Arc<dcs_graph::SignedGraph>,
        k: usize,
        measure: DensityMeasure,
    },
    Sweep {
        g2: dcs_graph::SignedGraph,
        g1: Arc<dcs_graph::SignedGraph>,
        alphas: Vec<f64>,
        measure: DensityMeasure,
    },
}

/// Any unit of work the pool can run (mining queries, cadence observes).
pub type Task = Box<dyn FnOnce() -> Result<Value, ServerError> + Send + 'static>;

struct Job {
    task: Task,
    reply: SyncSender<Result<Value, ServerError>>,
}

/// A fixed set of worker threads draining a bounded job queue.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    executed: Arc<AtomicU64>,
    rejected: AtomicU64,
    threads: usize,
    capacity: usize,
}

impl WorkerPool {
    /// Spawns `threads` workers behind a queue of `capacity` pending jobs.
    pub fn new(threads: usize, capacity: usize) -> Self {
        let threads = threads.max(1);
        let capacity = capacity.max(1);
        let (sender, receiver) = sync_channel::<Job>(capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let executed = Arc::new(AtomicU64::new(0));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let executed = Arc::clone(&executed);
                std::thread::spawn(move || loop {
                    let job = {
                        let guard = receiver.lock().unwrap_or_else(PoisonError::into_inner);
                        guard.recv()
                    };
                    let Ok(job) = job else {
                        break; // queue closed: pool is shutting down
                    };
                    let outcome = (job.task)();
                    executed.fetch_add(1, Ordering::Relaxed);
                    // A dropped reply receiver (client went away) is fine.
                    let _ = job.reply.send(outcome);
                })
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            executed,
            rejected: AtomicU64::new(0),
            threads,
            capacity,
        }
    }

    /// Submits a mining job; fails with [`ServerError::Busy`] when the queue
    /// is full.  On success, the returned receiver yields the job's result
    /// exactly once.
    pub fn submit(
        &self,
        session: SharedSession,
        spec: JobSpec,
    ) -> Result<Receiver<Result<Value, ServerError>>, ServerError> {
        self.submit_task(Box::new(move || spec.execute(&session)))
    }

    /// Submits an arbitrary task (used for observes on cadence-mining
    /// sessions, which can trigger a solve and therefore must not run on
    /// connection threads).  Same bounded-queue semantics as [`Self::submit`].
    pub fn submit_task(
        &self,
        task: Task,
    ) -> Result<Receiver<Result<Value, ServerError>>, ServerError> {
        let (reply, receiver) = sync_channel(1);
        let job = Job { task, reply };
        let sender = self.sender.as_ref().ok_or(ServerError::Busy)?;
        match sender.try_send(job) {
            Ok(()) => Ok(receiver),
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(ServerError::Busy)
            }
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs executed so far.
    pub fn executed(&self) -> u64 {
        self.executed.load(Ordering::Relaxed)
    }

    /// Jobs rejected because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Closes the queue and joins every worker.
    pub fn shutdown(&mut self) {
        self.sender = None; // dropping the sender unblocks recv()
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use dcs_core::StreamingConfig;

    fn shared_session(vertices: usize) -> SharedSession {
        let config = StreamingConfig {
            remine_every: 0,
            alert_threshold: 1.0,
            measure: DensityMeasure::GraphAffinity,
        };
        Arc::new(Mutex::new(Session::new(vertices, config).unwrap()))
    }

    fn seed_triangle(session: &SharedSession) {
        session
            .lock()
            .unwrap()
            .observe(&[(0, 1, 4.0), (0, 2, 4.0), (1, 2, 4.0), (3, 4, 0.5)]);
    }

    #[test]
    fn mine_job_finds_the_triangle_and_caches() {
        let session = shared_session(6);
        seed_triangle(&session);
        let spec = JobSpec::Mine { measure: None };
        let first = spec.execute(&session).unwrap();
        assert_eq!(first["cached"], false);
        assert_eq!(first["result"]["subset"], serde_json::json!([0, 1, 2]));
        assert_eq!(first["result"]["triggered"], true);
        let second = spec.execute(&session).unwrap();
        assert_eq!(second["cached"], true);
        assert_eq!(second["result"]["subset"], serde_json::json!([0, 1, 2]));
        // New observations invalidate the cache.
        session.lock().unwrap().observe(&[(3, 4, 1.0)]);
        let third = spec.execute(&session).unwrap();
        assert_eq!(third["cached"], false);
    }

    #[test]
    fn distinct_specs_do_not_share_cache_entries() {
        let session = shared_session(6);
        seed_triangle(&session);
        let mine = JobSpec::Mine { measure: None };
        let mine_degree = JobSpec::Mine {
            measure: Some(DensityMeasure::AverageDegree),
        };
        assert_ne!(
            mine.cache_key(DensityMeasure::GraphAffinity),
            mine_degree.cache_key(DensityMeasure::GraphAffinity)
        );
        mine.execute(&session).unwrap();
        let degree = mine_degree.execute(&session).unwrap();
        assert_eq!(degree["cached"], false);
        // But an explicit measure equal to the default shares the key.
        let explicit = JobSpec::Mine {
            measure: Some(DensityMeasure::GraphAffinity),
        };
        assert_eq!(explicit.execute(&session).unwrap()["cached"], true);
    }

    #[test]
    fn topk_and_sweep_jobs_produce_ranked_output() {
        let session = shared_session(8);
        session
            .lock()
            .unwrap()
            .observe(&[(0, 1, 6.0), (0, 2, 6.0), (1, 2, 6.0), (4, 5, 3.0)]);
        let topk = JobSpec::TopK {
            k: 3,
            measure: None,
        }
        .execute(&session)
        .unwrap();
        let results = topk["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0]["rank"], 1);
        assert_eq!(results[0]["subset"], serde_json::json!([0, 1, 2]));
        assert_eq!(results[1]["subset"], serde_json::json!([4, 5]));

        let sweep = JobSpec::Sweep {
            alphas: Some(vec![0.0, 1.0]),
            measure: None,
        }
        .execute(&session)
        .unwrap();
        let points = sweep["points"].as_array().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0]["alpha"], 0);
        assert_eq!(points[1]["alpha"], 1);
    }

    #[test]
    fn pool_executes_submitted_jobs() {
        let pool = WorkerPool::new(2, 8);
        let session = shared_session(6);
        seed_triangle(&session);
        let receivers: Vec<_> = (0..6)
            .map(|_| {
                pool.submit(Arc::clone(&session), JobSpec::Mine { measure: None })
                    .unwrap()
            })
            .collect();
        let mut cached = 0;
        for receiver in receivers {
            let value = receiver.recv().unwrap().unwrap();
            assert_eq!(value["result"]["subset"], serde_json::json!([0, 1, 2]));
            if value["cached"] == true {
                cached += 1;
            }
        }
        assert!(cached >= 4, "later identical jobs come from the cache");
        assert_eq!(pool.executed(), 6);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.capacity(), 8);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One worker, capacity-1 queue, and jobs that block on the session
        // lock held by the test.  At most one job can sit in the worker's
        // hands (blocked on the lock) and one in the queue, so among three
        // submissions at least one must bounce with Busy — independent of
        // how the worker thread is scheduled.
        let pool = WorkerPool::new(1, 1);
        let session = shared_session(6);
        seed_triangle(&session);
        let guard = session.lock().unwrap();
        let mut receivers = Vec::new();
        let mut busy = 0usize;
        for _ in 0..3 {
            match pool.submit(Arc::clone(&session), JobSpec::Mine { measure: None }) {
                Ok(receiver) => receivers.push(receiver),
                Err(ServerError::Busy) => busy += 1,
                Err(other) => panic!("unexpected submit error: {other}"),
            }
        }
        assert!(busy >= 1, "bounded queue must reject overload");
        assert!(pool.rejected() >= 1);
        // Unblock the session: every accepted job completes successfully.
        drop(guard);
        for receiver in receivers {
            assert!(receiver.recv().unwrap().is_ok());
        }
    }
}

//! Per-session durability: write-ahead logs of accepted observes, pack-format
//! checkpoints, and crash recovery.
//!
//! ## On-disk layout
//!
//! A durable session lives in its own directory under the server's data dir
//! (`dcs serve --data-dir`), named by percent-encoding the session name:
//!
//! ```text
//! <data-dir>/<session>/
//!   session.json          creation parameters (vertices, measure, cadence, …)
//!   wal-<G>.ndjson        write-ahead log segment following checkpoint G
//!   ckpt-<G>.dcspack      checkpoint at session version G: the observed graph
//!                         as a graph pack plus a session-metadata section
//!   baseline-<B>.dcspack  baseline installed by the `load_baseline` that
//!                         advanced the session version to B
//! ```
//!
//! The WAL is NDJSON, reusing the protocol's observe serialization — one
//! record per accepted observe batch
//! (`{"kind":"observe","v":V,"updates":[[u,v,w],…]}`, with `V` the session
//! version *after* the batch) or per baseline reload
//! (`{"kind":"baseline","v":V}`, referencing `baseline-<V>.dcspack`).
//! Batches that apply nothing never change the version and are not logged.
//!
//! A checkpoint compacts the log: the observed graph `G2` is written as an
//! ordinary graph pack whose session-metadata section
//! ([`dcs_graph::pack::KIND_SESSION`]) carries the counters a session cannot
//! reconstruct from the graph alone — version counter, observation count,
//! cadence phase, warm-start support, configured measure, result-cache keys.
//! After a checkpoint at version `V` the WAL rotates to a fresh
//! `wal-<V>.ndjson`; the generation *before* the previous one is pruned, so
//! at most two checkpoint generations (and their log segments) remain.
//!
//! ## Recovery
//!
//! [`open_session_dir`] restores a session by loading the **newest valid
//! checkpoint** — a checkpoint that fails to open, verify or decode falls
//! back to the previous generation — and replaying every WAL segment in
//! ascending generation order, skipping records at or below the restored
//! version.  Replay re-applies each batch through the ordinary streaming
//! engine and asserts the resulting version matches the record, so a
//! recovered session is observation-for-observation identical to one that
//! never stopped.  A **torn tail** (a crash mid-append) is tolerated in the
//! newest segment only — rotation syncs a segment before opening its
//! successor — and truncated; corruption anywhere else aborts recovery
//! rather than silently dropping acknowledged observes.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use dcs_core::{DensityMeasure, StreamingConfig, StreamingDcs};
use dcs_graph::{GraphBuilder, GraphPack, SignedGraph, VertexId, Weight};
use serde_json::{json, Value};

use crate::error::ServerError;
use crate::protocol::{measure_token, parse_measure, parse_triples};
use crate::session::Session;

/// When the write-ahead log is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalSync {
    /// `fsync` after every appended record — an acknowledged observe is on
    /// disk before the response leaves the server.
    Always,
    /// Group commit (the default): appends buffer in the OS page cache and a
    /// background flusher `fsync`s them on the
    /// [`group-commit interval`](crate::ServerConfig::group_commit_ms).  A
    /// crash can lose at most the last interval's acknowledged observes.
    #[default]
    Group,
    /// Never `fsync`; durability is left to the operating system.
    None,
}

impl WalSync {
    /// The mode's command-line token (`"always"` / `"group"` / `"none"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            WalSync::Always => "always",
            WalSync::Group => "group",
            WalSync::None => "none",
        }
    }
}

impl std::str::FromStr for WalSync {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_lowercase().as_str() {
            "always" => Ok(WalSync::Always),
            "group" => Ok(WalSync::Group),
            "none" => Ok(WalSync::None),
            other => Err(format!(
                "unknown WAL sync mode {other:?} (expected \"always\", \"group\" or \"none\")"
            )),
        }
    }
}

impl std::fmt::Display for WalSync {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

fn durability_error(msg: String) -> ServerError {
    ServerError::Io(io::Error::other(msg))
}

/// Encodes a session name as a filesystem-safe directory name: ASCII
/// letters, digits, `-` and `_` pass through, every other byte becomes
/// `%XX`.  The encoding is injective, so distinct session names never share
/// a directory (and `.`/`..` cannot be produced).
pub fn encode_session_dir(name: &str) -> String {
    let mut encoded = String::with_capacity(name.len());
    for byte in name.bytes() {
        match byte {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => encoded.push(byte as char),
            other => encoded.push_str(&format!("%{other:02X}")),
        }
    }
    encoded
}

/// Decodes a directory name produced by [`encode_session_dir`] back into the
/// session name (`None` if the encoding is malformed).
pub fn decode_session_dir(encoded: &str) -> Option<String> {
    let bytes = encoded.as_bytes();
    let mut decoded = Vec::with_capacity(bytes.len());
    let mut index = 0;
    while index < bytes.len() {
        match bytes[index] {
            b'%' => {
                let hex = encoded.get(index + 1..index + 3)?;
                decoded.push(u8::from_str_radix(hex, 16).ok()?);
                index += 3;
            }
            byte => {
                decoded.push(byte);
                index += 1;
            }
        }
    }
    String::from_utf8(decoded).ok()
}

/// The parameters a session was created with — the contents of
/// `session.json`, the durable record recovery rebuilds fresh sessions from.
#[derive(Debug, Clone)]
pub(crate) struct CreationRecord {
    pub name: String,
    pub vertices: usize,
    pub remine_every: usize,
    pub alert_threshold: f64,
    pub measure: DensityMeasure,
    /// Path of the graph pack backing the creation baseline, for sessions
    /// created with a `pack` field.  The path must remain readable across
    /// restarts — the pack is the baseline, it is not copied into the data
    /// directory.
    pub pack: Option<String>,
}

impl CreationRecord {
    pub fn config(&self) -> StreamingConfig {
        StreamingConfig {
            remine_every: self.remine_every,
            alert_threshold: self.alert_threshold,
            measure: self.measure,
        }
    }

    fn to_json(&self) -> Value {
        let mut record = json!({
            "format": 1,
            "name": self.name,
            "vertices": self.vertices,
            "remine_every": self.remine_every,
            "alert_threshold": self.alert_threshold,
            "measure": measure_token(self.measure),
        });
        if let Some(pack) = &self.pack {
            record["pack"] = json!(pack);
        }
        record
    }

    fn from_json(value: &Value) -> Result<Self, ServerError> {
        let field = |name: &str| -> Result<&Value, ServerError> {
            match &value[name] {
                Value::Null => Err(durability_error(format!(
                    "session.json lacks the {name:?} field"
                ))),
                present => Ok(present),
            }
        };
        let measure = parse_measure(field("measure")?.as_str())?
            .ok_or_else(|| durability_error("session.json has a non-string measure".into()))?;
        Ok(CreationRecord {
            name: field("name")?
                .as_str()
                .ok_or_else(|| durability_error("session.json name must be a string".into()))?
                .to_string(),
            vertices: field("vertices")?.as_u64().ok_or_else(|| {
                durability_error("session.json vertices must be an integer".into())
            })? as usize,
            remine_every: field("remine_every")?.as_u64().unwrap_or(0) as usize,
            alert_threshold: field("alert_threshold")?.as_f64().unwrap_or(0.0),
            measure,
            pack: value["pack"].as_str().map(str::to_string),
        })
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, rename, best-effort directory sync.
fn write_atomically(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

fn triples_to_json(triples: &[(VertexId, VertexId, Weight)]) -> Value {
    Value::Array(triples.iter().map(|&(u, v, w)| json!([u, v, w])).collect())
}

/// Appender over one WAL segment.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    sync: WalSync,
    dirty: bool,
    records: u64,
    written: u64,
    /// Fault injection for the crash-recovery test harness: once this many
    /// bytes have been written, the next append writes only the prefix that
    /// fits and fails — a genuine torn tail, exactly what a crash mid-write
    /// leaves behind.
    fault_after: Option<u64>,
}

impl WalWriter {
    fn open_append(path: PathBuf, sync: WalSync) -> io::Result<WalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let written = file.metadata()?.len();
        let records = if written == 0 {
            0
        } else {
            fs::read(&path)?.iter().filter(|&&b| b == b'\n').count() as u64
        };
        Ok(WalWriter {
            file,
            sync,
            dirty: false,
            records,
            written,
            fault_after: None,
        })
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn set_fault_after(&mut self, limit: Option<u64>) {
        self.fault_after = limit;
    }

    fn append(&mut self, record: &Value) -> Result<(), ServerError> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| durability_error(format!("unserializable WAL record: {e}")))?;
        line.push('\n');
        if let Some(limit) = self.fault_after {
            let room = limit.saturating_sub(self.written) as usize;
            if room < line.len() {
                // Simulated crash: a prefix of the record reaches the disk,
                // the rest never does.
                self.file.write_all(&line.as_bytes()[..room])?;
                let _ = self.file.sync_data();
                self.written += room as u64;
                return Err(durability_error(
                    "injected WAL fault: torn write".to_string(),
                ));
            }
        }
        self.file.write_all(line.as_bytes())?;
        self.written += line.len() as u64;
        self.records += 1;
        match self.sync {
            WalSync::Always => self.file.sync_data()?,
            WalSync::Group => self.dirty = true,
            WalSync::None => {}
        }
        Ok(())
    }

    fn flush_sync(&mut self) -> io::Result<()> {
        if self.dirty {
            self.file.sync_data()?;
            self.dirty = false;
        }
        Ok(())
    }
}

/// The durable half of a [`Session`]: its directory, current WAL segment and
/// checkpoint generation.
#[derive(Debug)]
pub(crate) struct DurableSession {
    pub dir: PathBuf,
    wal: WalWriter,
    /// Version of the newest checkpoint (0 before the first one): names the
    /// live WAL segment `wal-<generation>.ndjson`.
    generation: u64,
    sync: WalSync,
    /// Version of the baseline currently installed (0 = the creation
    /// baseline; otherwise `baseline-<id>.dcspack`).
    baseline_id: u64,
    /// Set when a WAL append fails partway: the in-memory session is now
    /// ahead of the log, so further appends would record versions replay
    /// cannot reproduce.  A poisoned session rejects mutations until it is
    /// recovered from disk (fail-stop, never silent divergence).
    poisoned: bool,
}

/// The session state a checkpoint persists (assembled under the session
/// lock by [`Session::checkpoint`]).
pub(crate) struct CheckpointState {
    pub monitor_version: u64,
    pub version_base: u64,
    pub observations: usize,
    pub updates_since_mine: usize,
    pub last_support: Option<Vec<VertexId>>,
    pub observed: Vec<(VertexId, VertexId, Weight)>,
    pub vertices: usize,
    pub config: StreamingConfig,
    pub cache_keys: Vec<String>,
}

fn ckpt_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation}.dcspack"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.ndjson"))
}

fn baseline_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("baseline-{id}.dcspack"))
}

/// Generations of the files `prefix-<n>.<ext>` present in `dir`, ascending.
fn generations(dir: &Path, prefix: &str, ext: &str) -> Vec<u64> {
    let mut gens = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix(prefix) {
                if let Some(number) = rest.strip_suffix(ext) {
                    if let Ok(generation) = number.parse::<u64>() {
                        gens.push(generation);
                    }
                }
            }
        }
    }
    gens.sort_unstable();
    gens
}

impl DurableSession {
    /// Whether a previous WAL failure left the log behind the in-memory
    /// session (see the `poisoned` field).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn check_poisoned(&self) -> Result<(), ServerError> {
        if self.poisoned {
            return Err(durability_error(
                "session WAL previously failed; the session is read-only until recovered"
                    .to_string(),
            ));
        }
        Ok(())
    }

    fn poison_on_err<T>(&mut self, result: Result<T, ServerError>) -> Result<T, ServerError> {
        if result.is_err() {
            self.poisoned = true;
        }
        result
    }

    /// Appends one accepted observe batch (`version` is the session version
    /// after applying it).
    pub fn append_observe(
        &mut self,
        version: u64,
        updates: &[(VertexId, VertexId, Weight)],
    ) -> Result<(), ServerError> {
        self.check_poisoned()?;
        let record = json!({
            "kind": "observe",
            "v": version,
            "updates": triples_to_json(updates),
        });
        let result = self.wal.append(&record);
        self.poison_on_err(result)
    }

    /// Persists a freshly installed baseline (`version` is the session's new
    /// `version_base`) as `baseline-<version>.dcspack` plus a WAL record.
    pub fn log_baseline(
        &mut self,
        version: u64,
        baseline: &SignedGraph,
    ) -> Result<(), ServerError> {
        self.check_poisoned()?;
        let result = (|| {
            let path = baseline_path(&self.dir, version);
            let tmp = path.with_extension("tmp");
            dcs_datasets::PackWriter::write_graph(baseline, &tmp)?;
            let file = File::open(&tmp)?;
            file.sync_data()?;
            drop(file);
            fs::rename(&tmp, &path)?;
            sync_parent_dir(&path);
            Ok(())
        })();
        let result = result.and_then(|()| {
            self.baseline_id = version;
            self.wal
                .append(&json!({ "kind": "baseline", "v": version }))
        });
        self.poison_on_err(result)
    }

    /// Flushes group-committed WAL bytes to stable storage.
    pub fn flush(&mut self) -> Result<(), ServerError> {
        let result = self.wal.flush_sync().map_err(ServerError::Io);
        self.poison_on_err(result)
    }

    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    pub fn set_fault_after(&mut self, limit: Option<u64>) {
        self.wal.set_fault_after(limit);
    }

    /// Writes a checkpoint of `state`, rotates the WAL and prunes all but the
    /// previous generation.
    pub fn checkpoint(&mut self, state: &CheckpointState) -> Result<(), ServerError> {
        self.check_poisoned()?;
        let version = state.version_base + state.monitor_version;
        let observed = GraphBuilder::from_edges(state.vertices, state.observed.iter().copied());
        let meta = json!({
            "format": 1,
            "monitor_version": state.monitor_version,
            "version_base": state.version_base,
            "observations": state.observations,
            "updates_since_mine": state.updates_since_mine,
            "last_support": match &state.last_support {
                None => Value::Null,
                Some(support) => json!(support.clone()),
            },
            "baseline": self.baseline_id,
            "measure": measure_token(state.config.measure),
            "remine_every": state.config.remine_every,
            "alert_threshold": state.config.alert_threshold,
            "cache_keys": state.cache_keys.clone(),
        });
        let meta_bytes = serde_json::to_string(&meta)
            .map_err(|e| durability_error(format!("unserializable checkpoint metadata: {e}")))?;

        // 1. The checkpoint pack, atomically (tmp + fsync + rename).
        let path = ckpt_path(&self.dir, version);
        let tmp = path.with_extension("tmp");
        dcs_datasets::PackWriter::write_graph_with_session(&observed, meta_bytes.as_bytes(), &tmp)?;
        let file = File::open(&tmp)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, &path)?;
        sync_parent_dir(&path);

        // 2. Rotate the WAL: sync the old segment, open the successor.  A
        //    crash between 1 and 2 is safe — recovery replays the old segment
        //    and skips every record at or below the checkpoint version.
        self.wal.flush_sync()?;
        self.wal = WalWriter::open_append(wal_path(&self.dir, version), self.sync)?;
        let previous = self.generation;
        self.generation = version;

        // 3. Prune generations older than the previous one (torn-tail and
        //    corrupt-checkpoint recovery fall back one generation, never two).
        for gen in generations(&self.dir, "ckpt-", ".dcspack") {
            if gen < previous {
                let _ = fs::remove_file(ckpt_path(&self.dir, gen));
            }
        }
        for gen in generations(&self.dir, "wal-", ".ndjson") {
            if gen < previous {
                let _ = fs::remove_file(wal_path(&self.dir, gen));
            }
        }
        Ok(())
    }
}

/// Creates the directory for a fresh durable session and its first WAL
/// segment, recording the creation parameters in `session.json`.
pub(crate) fn create_session_dir(
    data_dir: &Path,
    record: &CreationRecord,
    sync: WalSync,
) -> Result<DurableSession, ServerError> {
    let dir = data_dir.join(encode_session_dir(&record.name));
    fs::create_dir_all(&dir)?;
    let text = serde_json::to_string_pretty(&record.to_json())
        .map_err(|e| durability_error(format!("unserializable session record: {e}")))?;
    write_atomically(&dir.join("session.json"), format!("{text}\n").as_bytes())?;
    let wal = WalWriter::open_append(wal_path(&dir, 0), sync)?;
    Ok(DurableSession {
        dir,
        wal,
        generation: 0,
        sync,
        baseline_id: 0,
        poisoned: false,
    })
}

pub(crate) fn read_creation(dir: &Path) -> Result<CreationRecord, ServerError> {
    let text = fs::read_to_string(dir.join("session.json"))?;
    let value: Value = serde_json::from_str(&text)
        .map_err(|e| durability_error(format!("cannot parse session.json: {e}")))?;
    CreationRecord::from_json(&value)
}

/// Whether `dir` holds a durable session (its `session.json` exists).
pub(crate) fn is_session_dir(dir: &Path) -> bool {
    dir.join("session.json").is_file()
}

/// State restored from a checkpoint (or from the creation record when no
/// checkpoint is loadable).
struct RecoveredState {
    monitor: StreamingDcs,
    version_base: u64,
    baseline_id: u64,
    backing: &'static str,
    pack_open_ms: Option<f64>,
}

fn load_creation_baseline(
    record: &CreationRecord,
) -> Result<(SignedGraph, &'static str, Option<f64>), ServerError> {
    match &record.pack {
        None => Ok((SignedGraph::empty(record.vertices), "memory", None)),
        Some(path) => {
            let start = std::time::Instant::now();
            let pack = GraphPack::open(path)?;
            let graph = pack.to_graph()?;
            Ok((graph, "pack", Some(start.elapsed().as_secs_f64() * 1e3)))
        }
    }
}

fn fresh_state(record: &CreationRecord) -> Result<RecoveredState, ServerError> {
    let (baseline, backing, pack_open_ms) = load_creation_baseline(record)?;
    Ok(RecoveredState {
        monitor: StreamingDcs::new(baseline, record.config())?,
        version_base: 0,
        baseline_id: 0,
        backing,
        pack_open_ms,
    })
}

fn load_checkpoint(
    dir: &Path,
    generation: u64,
    record: &CreationRecord,
) -> Result<RecoveredState, ServerError> {
    let pack = GraphPack::open(ckpt_path(dir, generation))?;
    let meta_bytes = pack
        .session_bytes()
        .ok_or_else(|| durability_error("checkpoint lacks a session-metadata section".into()))?;
    let meta_text = std::str::from_utf8(meta_bytes)
        .map_err(|_| durability_error("checkpoint metadata is not UTF-8".into()))?;
    let meta: Value = serde_json::from_str(meta_text)
        .map_err(|e| durability_error(format!("cannot parse checkpoint metadata: {e}")))?;
    if meta["format"].as_u64() != Some(1) {
        return Err(durability_error(format!(
            "unsupported checkpoint metadata format {}",
            meta["format"]
        )));
    }
    let int = |name: &str| -> Result<u64, ServerError> {
        meta[name].as_u64().ok_or_else(|| {
            durability_error(format!("checkpoint metadata lacks the {name:?} counter"))
        })
    };
    let monitor_version = int("monitor_version")?;
    let version_base = int("version_base")?;
    let observations = int("observations")? as usize;
    let updates_since_mine = int("updates_since_mine")? as usize;
    let baseline_id = int("baseline")?;
    let last_support = match &meta["last_support"] {
        Value::Null => None,
        value => {
            let raw = value.as_array().ok_or_else(|| {
                durability_error("checkpoint metadata last_support must be an array".into())
            })?;
            let mut support = Vec::with_capacity(raw.len());
            for entry in raw {
                support.push(
                    entry
                        .as_u64()
                        .and_then(|v| VertexId::try_from(v).ok())
                        .ok_or_else(|| {
                            durability_error(
                                "checkpoint metadata last_support holds a non-vertex".into(),
                            )
                        })?,
                );
            }
            Some(support)
        }
    };

    let (baseline, backing, pack_open_ms) = if baseline_id == 0 {
        load_creation_baseline(record)?
    } else {
        let graph = GraphPack::open(baseline_path(dir, baseline_id))?.to_graph()?;
        (graph, "memory", None)
    };
    let observed = pack.to_graph()?;
    let mut monitor = StreamingDcs::with_initial_observation(baseline, &observed, record.config())?;
    monitor.restore_counters(
        monitor_version,
        observations,
        updates_since_mine,
        last_support,
    );
    Ok(RecoveredState {
        monitor,
        version_base,
        baseline_id,
        backing,
        pack_open_ms,
    })
}

/// Replays one WAL segment into `state`.  `newest` segments may end in a
/// torn tail, which is truncated when `repair` is set; any other
/// malformation is an error.
fn replay_segment(
    dir: &Path,
    path: &Path,
    state: &mut RecoveredState,
    config: StreamingConfig,
    newest: bool,
    repair: bool,
) -> Result<(), ServerError> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(ServerError::Io(e)),
    };
    let mut offset = 0usize;
    while offset < bytes.len() {
        let newline = bytes[offset..].iter().position(|&b| b == b'\n');
        let (line, next) = match newline {
            Some(end) => (&bytes[offset..offset + end], offset + end + 1),
            None => (&bytes[offset..], bytes.len()),
        };
        let record = std::str::from_utf8(line)
            .ok()
            .and_then(|text| serde_json::from_str::<Value>(text.trim()).ok());
        let Some(record) = record.filter(|_| newline.is_some()) else {
            // Unparsable or unterminated: a torn tail if this is the newest
            // segment, corruption otherwise.
            if !newest {
                return Err(durability_error(format!(
                    "corrupt WAL record in non-tail segment {}",
                    path.display()
                )));
            }
            if repair {
                OpenOptions::new()
                    .write(true)
                    .open(path)?
                    .set_len(offset as u64)?;
            }
            return Ok(());
        };
        let version = record["v"].as_u64().ok_or_else(|| {
            durability_error(format!(
                "WAL record without a version in {}",
                path.display()
            ))
        })?;
        if version > state.version_base + state.monitor.version() {
            match record["kind"].as_str() {
                Some("observe") => {
                    let updates = parse_triples(&record, "updates")?;
                    state.monitor.apply_batch(updates.iter().copied());
                    let replayed = state.version_base + state.monitor.version();
                    if replayed != version {
                        return Err(durability_error(format!(
                            "WAL replay diverged: record v={version}, replayed v={replayed}"
                        )));
                    }
                }
                Some("baseline") => {
                    let baseline = GraphPack::open(baseline_path(dir, version))?.to_graph()?;
                    state.monitor = StreamingDcs::new(baseline, config)?;
                    state.version_base = version;
                    state.baseline_id = version;
                    state.backing = "memory";
                    state.pack_open_ms = None;
                }
                other => {
                    return Err(durability_error(format!(
                        "unknown WAL record kind {other:?}"
                    )));
                }
            }
        }
        offset = next;
    }
    Ok(())
}

fn open_session_dir_impl(
    dir: &Path,
    sync: WalSync,
    repair: bool,
) -> Result<(String, Session), ServerError> {
    let record = read_creation(dir)?;
    let config = record.config();

    // Newest valid checkpoint, falling back a generation on corruption.
    let mut checkpoints = generations(dir, "ckpt-", ".dcspack");
    checkpoints.reverse();
    let mut state = None;
    let mut chosen = 0u64;
    for generation in checkpoints {
        match load_checkpoint(dir, generation, &record) {
            Ok(loaded) => {
                state = Some(loaded);
                chosen = generation;
                break;
            }
            Err(e) => {
                eprintln!(
                    "dcs-server: checkpoint {} unusable ({e}); falling back a generation",
                    ckpt_path(dir, generation).display()
                );
            }
        }
    }
    let mut state = match state {
        Some(state) => state,
        None => fresh_state(&record)?,
    };

    // Replay every WAL segment in ascending generation order; records at or
    // below the restored version are skipped.
    let segments = generations(dir, "wal-", ".ndjson");
    for (index, &generation) in segments.iter().enumerate() {
        let newest = index + 1 == segments.len();
        replay_segment(
            dir,
            &wal_path(dir, generation),
            &mut state,
            config,
            newest,
            repair,
        )?;
    }

    // Reopen (or create) the newest segment for appending.
    let generation = segments.last().copied().unwrap_or(chosen).max(chosen);
    let wal = WalWriter::open_append(wal_path(dir, generation), sync)?;
    let durable = DurableSession {
        dir: dir.to_path_buf(),
        wal,
        generation,
        sync,
        baseline_id: state.baseline_id,
        poisoned: false,
    };
    let session = Session::from_recovered(
        state.monitor,
        state.version_base,
        state.backing,
        state.pack_open_ms,
        durable,
    );
    Ok((record.name, session))
}

/// Recovers a durable session from its directory: newest valid checkpoint,
/// WAL tail replay, torn-tail truncation.  Returns the session name (from
/// `session.json`) and the restored [`Session`], ready for observes.
pub fn open_session_dir(dir: &Path, sync: WalSync) -> Result<(String, Session), ServerError> {
    open_session_dir_impl(dir, sync, true)
}

/// Creates a fresh durable session backed by `data_dir/<encoded name>`: an
/// empty baseline of `vertices` vertices, `session.json`, and WAL segment 0.
pub fn create_durable_session(
    data_dir: &Path,
    name: &str,
    vertices: usize,
    config: StreamingConfig,
    sync: WalSync,
) -> Result<Session, ServerError> {
    let record = CreationRecord {
        name: name.to_string(),
        vertices,
        remine_every: config.remine_every,
        alert_threshold: config.alert_threshold,
        measure: config.measure,
        pack: None,
    };
    let durable = create_session_dir(data_dir, &record, sync)?;
    let mut session = Session::new(vertices, config)?;
    session.attach_durable(durable);
    Ok(session)
}

/// One session directory's summary, as reported by `dcs sessions`.
#[derive(Debug, Clone)]
pub struct SessionDirSummary {
    /// The session name recorded in `session.json`.
    pub name: String,
    /// The session's directory under the data dir.
    pub directory: PathBuf,
    /// Vertex count the session was created with.
    pub vertices: usize,
    /// The configured density measure (`"affinity"` / `"degree"`).
    pub measure: String,
    /// The configured re-mining cadence (0 = on-demand mining only).
    pub remine_every: usize,
    /// Version of the newest checkpoint on disk, if any.
    pub checkpoint_generation: Option<u64>,
    /// Number of WAL segments on disk.
    pub wal_segments: usize,
    /// Total WAL bytes across the segments.
    pub wal_bytes: u64,
    /// The session version a recovery right now would restore (`None` when
    /// the directory cannot be recovered).
    pub recovered_version: Option<u64>,
}

/// Inspects a server data directory without modifying it (torn tails are
/// left in place): one summary per durable session directory, sorted by
/// name.
pub fn inspect_data_dir(data_dir: &Path) -> Result<Vec<SessionDirSummary>, ServerError> {
    let mut summaries = Vec::new();
    for entry in fs::read_dir(data_dir)? {
        let entry = entry?;
        let dir = entry.path();
        if !dir.is_dir() || !is_session_dir(&dir) {
            continue;
        }
        let record = read_creation(&dir)?;
        let wal_gens = generations(&dir, "wal-", ".ndjson");
        let wal_bytes = wal_gens
            .iter()
            .map(|&gen| {
                fs::metadata(wal_path(&dir, gen))
                    .map(|m| m.len())
                    .unwrap_or(0)
            })
            .sum();
        let recovered_version = open_session_dir_impl(&dir, WalSync::None, false)
            .ok()
            .map(|(_, session)| session.version());
        summaries.push(SessionDirSummary {
            name: record.name.clone(),
            directory: dir.clone(),
            vertices: record.vertices,
            measure: measure_token(record.measure).to_string(),
            remine_every: record.remine_every,
            checkpoint_generation: generations(&dir, "ckpt-", ".dcspack").last().copied(),
            wal_segments: wal_gens.len(),
            wal_bytes,
            recovered_version,
        });
    }
    summaries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(summaries)
}

/// Recovers every durable session under `data_dir` into fresh [`Session`]s.
/// Directories that fail to recover are reported on stderr and skipped —
/// a corrupt session must not keep the server from starting.
pub(crate) fn recover_data_dir(data_dir: &Path, sync: WalSync) -> Vec<(String, Session)> {
    let mut recovered = Vec::new();
    let Ok(entries) = fs::read_dir(data_dir) else {
        return recovered;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() || !is_session_dir(&dir) {
            continue;
        }
        match open_session_dir(&dir, sync) {
            Ok((name, session)) => recovered.push((name, session)),
            Err(e) => {
                eprintln!(
                    "dcs-server: cannot recover session directory {}: {e}",
                    dir.display()
                );
            }
        }
    }
    recovered.sort_by(|a, b| a.0.cmp(&b.0));
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcs_durable_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config() -> StreamingConfig {
        StreamingConfig {
            remine_every: 0,
            alert_threshold: 0.5,
            measure: DensityMeasure::GraphAffinity,
        }
    }

    #[test]
    fn session_names_encode_to_safe_directories() {
        for name in ["plain", "has space", "slash/../dots", "ünïcode", "."] {
            let encoded = encode_session_dir(name);
            assert!(
                encoded
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'),
                "{encoded:?} contains unsafe bytes"
            );
            assert_eq!(decode_session_dir(&encoded).as_deref(), Some(name));
        }
        assert_ne!(encode_session_dir("a/b"), encode_session_dir("a%2Fb"));
    }

    #[test]
    fn creation_record_roundtrips_through_json() {
        let record = CreationRecord {
            name: "s".into(),
            vertices: 42,
            remine_every: 3,
            alert_threshold: 1.5,
            measure: DensityMeasure::AverageDegree,
            pack: Some("/tmp/base.dcspack".into()),
        };
        let back = CreationRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back.name, "s");
        assert_eq!(back.vertices, 42);
        assert_eq!(back.remine_every, 3);
        assert_eq!(back.alert_threshold, 1.5);
        assert_eq!(back.measure, DensityMeasure::AverageDegree);
        assert_eq!(back.pack.as_deref(), Some("/tmp/base.dcspack"));
    }

    #[test]
    fn fresh_create_then_recover_is_identity() {
        let data = temp_dir("fresh");
        let mut session =
            create_durable_session(&data, "fresh", 8, config(), WalSync::None).unwrap();
        session.observe(&[(0, 1, 2.0), (2, 3, 1.0)]).unwrap();
        session.observe(&[(0, 1, 1.0)]).unwrap();
        let version = session.version();
        drop(session);

        let (name, recovered) =
            open_session_dir(&data.join(encode_session_dir("fresh")), WalSync::None).unwrap();
        assert_eq!(name, "fresh");
        assert_eq!(recovered.version(), version);
        assert_eq!(recovered.monitor().observations(), 3);
        assert_eq!(
            recovered.monitor().observed_edges_sorted(),
            vec![(0, 1, 3.0), (2, 3, 1.0)]
        );
        fs::remove_dir_all(&data).ok();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_replays_the_tail() {
        let data = temp_dir("ckpt");
        let mut session = create_durable_session(&data, "c", 8, config(), WalSync::None).unwrap();
        session.observe(&[(0, 1, 2.0)]).unwrap();
        session.observe(&[(1, 2, 4.0)]).unwrap();
        assert!(session.checkpoint().unwrap());
        session.observe(&[(2, 3, 1.0)]).unwrap();
        let version = session.version();
        let edges = session.monitor().observed_edges_sorted();
        drop(session);

        let dir = data.join(encode_session_dir("c"));
        assert!(dir.join("ckpt-2.dcspack").is_file());
        assert!(dir.join("wal-2.ndjson").is_file());
        let (_, recovered) = open_session_dir(&dir, WalSync::None).unwrap();
        assert_eq!(recovered.version(), version);
        assert_eq!(recovered.monitor().observed_edges_sorted(), edges);
        fs::remove_dir_all(&data).ok();
    }

    #[test]
    fn inspection_reports_without_repairing() {
        let data = temp_dir("inspect");
        let mut session = create_durable_session(&data, "i", 6, config(), WalSync::None).unwrap();
        session.observe(&[(0, 1, 1.0)]).unwrap();
        drop(session);
        // A torn tail appended by a "crash".
        let wal = data.join(encode_session_dir("i")).join("wal-0.ndjson");
        let before = fs::metadata(&wal).unwrap().len();
        let mut file = OpenOptions::new().append(true).open(&wal).unwrap();
        file.write_all(b"{\"kind\":\"obse").unwrap();
        drop(file);

        let summaries = inspect_data_dir(&data).unwrap();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].name, "i");
        assert_eq!(summaries[0].vertices, 6);
        assert_eq!(summaries[0].recovered_version, Some(1));
        // Inspection must not truncate the torn tail.
        assert!(fs::metadata(&wal).unwrap().len() > before);
        fs::remove_dir_all(&data).ok();
    }
}

//! A blocking NDJSON client for the mining server.
//!
//! The modern surface is typed: build a [`crate::Request`] (or let
//! [`Client::session`] build one for you) and [`Client::send`] it.  The
//! historical string-and-`Value` helpers remain as thin wrappers so existing
//! callers keep compiling, but new code should prefer
//! [`Client::session`] / [`SessionHandle`].

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dcs_graph::{VertexId, Weight};
use serde_json::{json, Value};

use crate::error::ServerError;
use crate::protocol::{CreateSessionRequest, JobBounds, Request};

/// A blocking client speaking the server's NDJSON protocol over one TCP
/// connection.  All helpers return the full response object after checking
/// `ok`; protocol failures surface as [`ServerError::Remote`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request object and waits for its response line.
    ///
    /// This is the raw escape hatch; prefer [`Client::send`] with a typed
    /// [`Request`] where one exists.
    pub fn request(&mut self, request: Value) -> Result<Value, ServerError> {
        let mut text = serde_json::to_string(&request)
            .map_err(|e| ServerError::BadRequest(format!("unserializable request: {e}")))?;
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ServerError::ConnectionClosed);
        }
        let response: Value = serde_json::from_str(line.trim_end())
            .map_err(|e| ServerError::Remote(format!("unparseable response: {e}")))?;
        if response["ok"] == true {
            Ok(response)
        } else {
            Err(ServerError::Remote(
                response["error"]
                    .as_str()
                    .unwrap_or("unknown error")
                    .to_string(),
            ))
        }
    }

    /// Sends a typed request and waits for its response object.
    pub fn send(&mut self, request: &Request) -> Result<Value, ServerError> {
        self.request(request.to_value())
    }

    /// A handle that scopes protocol commands to one named session:
    /// `client.session("s").observe(&updates)` instead of hand-building the
    /// wire object.  The handle borrows the client (one in-flight request per
    /// connection) and is free to construct — no round trip happens until a
    /// method is called.
    pub fn session<'a>(&'a mut self, name: &str) -> SessionHandle<'a> {
        SessionHandle {
            client: self,
            name: name.to_string(),
        }
    }

    /// `ping` round trip.
    pub fn ping(&mut self) -> Result<Value, ServerError> {
        self.send(&Request::Ping)
    }

    /// Creates a session; `options` may carry `remine_every`,
    /// `alert_threshold`, `measure` and `durable` (any other fields are
    /// ignored by the server).
    ///
    /// Deprecated: prefer [`Client::create`] with a typed
    /// [`CreateSessionRequest`].
    pub fn create_session(
        &mut self,
        name: &str,
        vertices: usize,
        options: Value,
    ) -> Result<Value, ServerError> {
        let mut request = options;
        if !matches!(request, Value::Object(_)) {
            request = json!({});
        }
        request["cmd"] = json!("create_session");
        request["session"] = json!(name);
        request["vertices"] = json!(vertices);
        self.request(request)
    }

    /// Creates a session whose baseline is a graph-pack file on the
    /// **server's** filesystem (the path travels over the wire, not the
    /// bytes).  `options` may carry the same fields as [`Self::create_session`].
    ///
    /// Deprecated: prefer [`Client::create`] with a typed
    /// [`CreateSessionRequest`].
    pub fn create_session_from_pack(
        &mut self,
        name: &str,
        pack_path: &str,
        options: Value,
    ) -> Result<Value, ServerError> {
        let mut request = options;
        if !matches!(request, Value::Object(_)) {
            request = json!({});
        }
        request["cmd"] = json!("create_session");
        request["session"] = json!(name);
        request["pack"] = json!(pack_path);
        self.request(request)
    }

    /// Creates a session from a typed [`CreateSessionRequest`].
    pub fn create(&mut self, create: CreateSessionRequest) -> Result<Value, ServerError> {
        self.send(&Request::CreateSession(create))
    }

    /// Replaces the session's baseline graph.
    ///
    /// Deprecated: prefer [`SessionHandle::load_baseline`] via
    /// [`Client::session`].
    pub fn load_baseline(
        &mut self,
        name: &str,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Result<Value, ServerError> {
        self.session(name).load_baseline(edges)
    }

    /// Streams a batch of weight updates into the observed graph.
    ///
    /// Deprecated: prefer [`SessionHandle::observe`] via [`Client::session`].
    pub fn observe(
        &mut self,
        name: &str,
        updates: &[(VertexId, VertexId, Weight)],
    ) -> Result<Value, ServerError> {
        self.session(name).observe(updates)
    }

    /// Mines the current DCS under the session's configured measure.
    ///
    /// Deprecated: prefer [`SessionHandle::mine`] via [`Client::session`].
    pub fn mine(&mut self, name: &str) -> Result<Value, ServerError> {
        self.session(name).mine()
    }

    /// Mines the current DCS under an explicit measure (`"affinity"` or
    /// `"degree"`).
    ///
    /// Deprecated: prefer [`SessionHandle::mine_with`] via
    /// [`Client::session`].
    pub fn mine_with_measure(&mut self, name: &str, measure: &str) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "mine", "session": name, "measure": measure }))
    }

    /// Mines up to `k` vertex-disjoint contrast subgraphs.
    ///
    /// Deprecated: prefer [`SessionHandle::topk`] via [`Client::session`].
    pub fn topk(&mut self, name: &str, k: usize) -> Result<Value, ServerError> {
        self.session(name).topk(k)
    }

    /// Runs an α-sweep; `alphas = None` uses the server's default grid.
    ///
    /// Deprecated: prefer [`SessionHandle::sweep`] via [`Client::session`].
    pub fn sweep(&mut self, name: &str, alphas: Option<&[f64]>) -> Result<Value, ServerError> {
        self.session(name).sweep(alphas)
    }

    /// Mines the current DCS with a wall-clock deadline in milliseconds: the
    /// response is best-so-far with `"termination": "deadline"` when the
    /// deadline expires before the solver converges.
    ///
    /// Deprecated: prefer [`SessionHandle::mine_bounded`] via
    /// [`Client::session`].
    pub fn mine_with_deadline(
        &mut self,
        name: &str,
        deadline_ms: u64,
    ) -> Result<Value, ServerError> {
        self.session(name).mine_bounded(JobBounds {
            deadline_ms: Some(deadline_ms),
            ..JobBounds::default()
        })
    }

    /// Cancels an in-flight job submitted with a `"job"` id (from any
    /// connection).  The response's `cancelled` field reports whether the id
    /// was found.
    pub fn cancel(&mut self, job_id: &str) -> Result<Value, ServerError> {
        self.send(&Request::Cancel {
            job: job_id.to_string(),
        })
    }

    /// Session counters.
    ///
    /// Deprecated: prefer [`SessionHandle::stats`] via [`Client::session`].
    pub fn stats(&mut self, name: &str) -> Result<Value, ServerError> {
        self.session(name).stats()
    }

    /// Names of live sessions.
    pub fn list_sessions(&mut self) -> Result<Value, ServerError> {
        self.send(&Request::ListSessions)
    }

    /// Drops a session.
    ///
    /// Deprecated: prefer [`SessionHandle::drop_session`] via
    /// [`Client::session`].
    pub fn drop_session(&mut self, name: &str) -> Result<Value, ServerError> {
        self.session(name).drop_session()
    }

    /// Server-wide counters.
    pub fn server_stats(&mut self) -> Result<Value, ServerError> {
        self.send(&Request::ServerStats)
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<Value, ServerError> {
        self.send(&Request::Shutdown)
    }
}

/// Protocol commands scoped to one named session, from [`Client::session`].
///
/// Each method is one round trip on the underlying client connection and
/// returns the full response object.
pub struct SessionHandle<'a> {
    client: &'a mut Client,
    name: String,
}

impl SessionHandle<'_> {
    /// The session name this handle addresses.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the session's baseline graph.
    pub fn load_baseline(
        &mut self,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Result<Value, ServerError> {
        self.client.send(&Request::LoadBaseline {
            session: self.name.clone(),
            edges: edges.to_vec(),
        })
    }

    /// Streams a batch of weight updates into the observed graph.
    pub fn observe(
        &mut self,
        updates: &[(VertexId, VertexId, Weight)],
    ) -> Result<Value, ServerError> {
        self.client.send(&Request::Observe {
            session: self.name.clone(),
            updates: updates.to_vec(),
        })
    }

    /// Mines the current DCS under the session's configured measure.
    pub fn mine(&mut self) -> Result<Value, ServerError> {
        self.mine_bounded(JobBounds::default())
    }

    /// Mines under per-job bounds (deadline, budget, cancellable job id).
    pub fn mine_bounded(&mut self, bounds: JobBounds) -> Result<Value, ServerError> {
        self.client.send(&Request::Mine {
            session: self.name.clone(),
            measure: None,
            bounds,
        })
    }

    /// Mines under an explicit measure override.
    pub fn mine_with(
        &mut self,
        measure: dcs_core::DensityMeasure,
        bounds: JobBounds,
    ) -> Result<Value, ServerError> {
        self.client.send(&Request::Mine {
            session: self.name.clone(),
            measure: Some(measure),
            bounds,
        })
    }

    /// Mines up to `k` vertex-disjoint contrast subgraphs.
    pub fn topk(&mut self, k: usize) -> Result<Value, ServerError> {
        self.client.send(&Request::TopK {
            session: self.name.clone(),
            k,
            measure: None,
            bounds: JobBounds::default(),
        })
    }

    /// Runs an α-sweep; `alphas = None` uses the server's default grid.
    pub fn sweep(&mut self, alphas: Option<&[f64]>) -> Result<Value, ServerError> {
        self.client.send(&Request::Sweep {
            session: self.name.clone(),
            alphas: alphas.map(<[f64]>::to_vec),
            bounds: JobBounds::default(),
            measure: None,
        })
    }

    /// Session counters.
    pub fn stats(&mut self) -> Result<Value, ServerError> {
        self.client.send(&Request::Stats {
            session: Some(self.name.clone()),
        })
    }

    /// Drops the session on the server (the handle stays usable only for
    /// creating it again).
    pub fn drop_session(&mut self) -> Result<Value, ServerError> {
        self.client.send(&Request::DropSession {
            session: self.name.clone(),
        })
    }
}

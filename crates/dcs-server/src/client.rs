//! A blocking NDJSON client for the mining server.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dcs_graph::{VertexId, Weight};
use serde_json::{json, Value};

use crate::error::ServerError;

/// A blocking client speaking the server's NDJSON protocol over one TCP
/// connection.  All helpers return the full response object after checking
/// `ok`; protocol failures surface as [`ServerError::Remote`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one request object and waits for its response line.
    pub fn request(&mut self, request: Value) -> Result<Value, ServerError> {
        let mut text = serde_json::to_string(&request)
            .map_err(|e| ServerError::BadRequest(format!("unserializable request: {e}")))?;
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ServerError::ConnectionClosed);
        }
        let response: Value = serde_json::from_str(line.trim_end())
            .map_err(|e| ServerError::Remote(format!("unparseable response: {e}")))?;
        if response["ok"] == true {
            Ok(response)
        } else {
            Err(ServerError::Remote(
                response["error"]
                    .as_str()
                    .unwrap_or("unknown error")
                    .to_string(),
            ))
        }
    }

    /// `ping` round trip.
    pub fn ping(&mut self) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "ping" }))
    }

    /// Creates a session; `options` may carry `remine_every`,
    /// `alert_threshold` and `measure` (any other fields are ignored by the
    /// server).
    pub fn create_session(
        &mut self,
        name: &str,
        vertices: usize,
        options: Value,
    ) -> Result<Value, ServerError> {
        let mut request = options;
        if !matches!(request, Value::Object(_)) {
            request = json!({});
        }
        request["cmd"] = json!("create_session");
        request["session"] = json!(name);
        request["vertices"] = json!(vertices);
        self.request(request)
    }

    /// Creates a session whose baseline is a graph-pack file on the
    /// **server's** filesystem (the path travels over the wire, not the
    /// bytes).  `options` may carry the same fields as [`Self::create_session`].
    pub fn create_session_from_pack(
        &mut self,
        name: &str,
        pack_path: &str,
        options: Value,
    ) -> Result<Value, ServerError> {
        let mut request = options;
        if !matches!(request, Value::Object(_)) {
            request = json!({});
        }
        request["cmd"] = json!("create_session");
        request["session"] = json!(name);
        request["pack"] = json!(pack_path);
        self.request(request)
    }

    /// Replaces the session's baseline graph.
    pub fn load_baseline(
        &mut self,
        name: &str,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Result<Value, ServerError> {
        self.request(json!({
            "cmd": "load_baseline",
            "session": name,
            "edges": triples_to_json(edges),
        }))
    }

    /// Streams a batch of weight updates into the observed graph.
    pub fn observe(
        &mut self,
        name: &str,
        updates: &[(VertexId, VertexId, Weight)],
    ) -> Result<Value, ServerError> {
        self.request(json!({
            "cmd": "observe",
            "session": name,
            "updates": triples_to_json(updates),
        }))
    }

    /// Mines the current DCS under the session's configured measure.
    pub fn mine(&mut self, name: &str) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "mine", "session": name }))
    }

    /// Mines the current DCS under an explicit measure (`"affinity"` or
    /// `"degree"`).
    pub fn mine_with_measure(&mut self, name: &str, measure: &str) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "mine", "session": name, "measure": measure }))
    }

    /// Mines up to `k` vertex-disjoint contrast subgraphs.
    pub fn topk(&mut self, name: &str, k: usize) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "topk", "session": name, "k": k }))
    }

    /// Runs an α-sweep; `alphas = None` uses the server's default grid.
    pub fn sweep(&mut self, name: &str, alphas: Option<&[f64]>) -> Result<Value, ServerError> {
        match alphas {
            None => self.request(json!({ "cmd": "sweep", "session": name })),
            Some(grid) => self.request(json!({
                "cmd": "sweep",
                "session": name,
                "alphas": grid.to_vec(),
            })),
        }
    }

    /// Mines the current DCS with a wall-clock deadline in milliseconds: the
    /// response is best-so-far with `"termination": "deadline"` when the
    /// deadline expires before the solver converges.
    pub fn mine_with_deadline(
        &mut self,
        name: &str,
        deadline_ms: u64,
    ) -> Result<Value, ServerError> {
        self.request(json!({
            "cmd": "mine",
            "session": name,
            "deadline_ms": deadline_ms,
        }))
    }

    /// Cancels an in-flight job submitted with a `"job"` id (from any
    /// connection).  The response's `cancelled` field reports whether the id
    /// was found.
    pub fn cancel(&mut self, job_id: &str) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "cancel", "job": job_id }))
    }

    /// Session counters.
    pub fn stats(&mut self, name: &str) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "stats", "session": name }))
    }

    /// Names of live sessions.
    pub fn list_sessions(&mut self) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "list_sessions" }))
    }

    /// Drops a session.
    pub fn drop_session(&mut self, name: &str) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "drop_session", "session": name }))
    }

    /// Server-wide counters.
    pub fn server_stats(&mut self) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "server_stats" }))
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<Value, ServerError> {
        self.request(json!({ "cmd": "shutdown" }))
    }
}

fn triples_to_json(triples: &[(VertexId, VertexId, Weight)]) -> Value {
    Value::Array(triples.iter().map(|&(u, v, w)| json!([u, v, w])).collect())
}

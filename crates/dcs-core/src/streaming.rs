//! Streaming anomaly detection against a historical baseline.
//!
//! The introduction of the paper motivates DCS with "detecting current anomalies against
//! historical data": build a weighted graph `G1` of *expected* connection strengths from
//! history, observe the *current* connection strengths as `G2`, and mine the subgraph
//! whose density gap is largest (emerging traffic hot-spot clutters, emerging
//! communities, money-laundering dark networks).
//!
//! In that scenario `G2` is not a static file but a stream of observations.  This module
//! maintains the **difference graph** incrementally and re-mines the DCS on a
//! configurable cadence:
//!
//! * [`StreamingDcs::observe`] applies one weight update in `O(1)` amortized: the
//!   baseline is folded into a [`DeltaGraph`] of difference weights at construction
//!   (`D(u,v) = obs(u,v) − A1(u,v)`), so an update touches two hash maps and never
//!   re-walks `G1`.  Updates that do not change the observed graph (a zero delta, or
//!   a negative delta on an edge already clamped at zero) are **no-ops**: they bump
//!   neither the version nor the observation counter and are reported as `ignored`
//!   in [`BatchOutcome`];
//! * [`StreamingDcs::difference_snapshot`] returns the current `G_D` as a cheap
//!   `Arc<SignedGraph>` **delta snapshot**: only adjacency rows dirtied since the
//!   last snapshot are rebuilt, and when the [`StreamingDcs::version`] is unchanged
//!   the previous snapshot is returned pointer-equal, with no work at all.  Consumers
//!   (the mining server's workers) hold the `Arc` and solve without copying the
//!   graph or blocking further observations;
//! * every [`StreamingConfig::remine_every`] updates — or on demand via
//!   [`StreamingDcs::mine_now`] — the current difference snapshot is mined, and when
//!   the mined density difference exceeds [`StreamingConfig::alert_threshold`] the
//!   result is reported as a [`ContrastAlert`] with `triggered = true`;
//! * re-mines are **warm-started**: the support of the previous alert is passed to
//!   the solver as a seed ([`crate::dcsga::NewSea::solve_seeded`] /
//!   [`crate::dcsad::DcsGreedy::solve_seeded`]), so on a slightly-changed graph the
//!   sweep starts from a strong incumbent and the Theorem-6 early-exit bound prunes
//!   most initialisations.
//!
//! Mining itself is still a batch solve per snapshot (the paper's algorithms are batch
//! algorithms); what is incremental is everything around it — difference-graph
//! maintenance, snapshot materialisation, and the solver's starting point.

use std::sync::Arc;

use dcs_graph::{DeltaGraph, GraphBuilder, SignedGraph, VertexId, Weight};
use rustc_hash::FxHashMap;

use crate::engine::{ContrastSolver, MeasureSolver, SolveContext, SolveStats};
use crate::error::DcsError;
use crate::solution::{ContrastReport, DensityMeasure};
use crate::workspace::SharedWorkspace;

/// Configuration of a [`StreamingDcs`] monitor.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Re-mine after this many observations (`0` disables automatic re-mining; call
    /// [`StreamingDcs::mine_now`] explicitly instead).
    pub remine_every: usize,
    /// Report `triggered = true` when the mined density difference reaches this value.
    pub alert_threshold: Weight,
    /// Which density measure to mine with.  [`DensityMeasure::TotalDegree`] is not a
    /// supported mining measure and falls back to average degree.
    pub measure: DensityMeasure,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            remine_every: 100,
            alert_threshold: 0.0,
            measure: DensityMeasure::GraphAffinity,
        }
    }
}

/// The result of one (automatic or explicit) re-mining pass.
#[derive(Debug, Clone)]
pub struct ContrastAlert {
    /// Statistics of the mined subgraph on the current difference graph.
    pub report: ContrastReport,
    /// Whether the configured alert threshold was reached.
    pub triggered: bool,
    /// The density difference under the configured measure (average degree or affinity).
    pub density_difference: Weight,
    /// How many observations have been applied in total when this alert was produced.
    pub observations: usize,
    /// Solver telemetry of the mine that produced this alert, including the
    /// [`crate::engine::Termination`] status (best-so-far when not converged).
    pub stats: SolveStats,
}

/// Maintains an observed graph against a fixed historical baseline and periodically mines
/// the density contrast subgraph of the pair.
#[derive(Debug, Clone)]
pub struct StreamingDcs {
    baseline: Arc<SignedGraph>,
    /// Current observed weights, keyed by the normalised `(min, max)` endpoint pair.
    observed: FxHashMap<(VertexId, VertexId), Weight>,
    /// The difference graph `G_D = G2 − G1`, maintained incrementally with the
    /// baseline folded in at construction.  Snapshots rebuild only dirty rows.
    delta: DeltaGraph,
    config: StreamingConfig,
    observations: usize,
    updates_since_mine: usize,
    /// Monotone counter bumped on every observation that changed the observed
    /// graph.  Consumers (e.g. the mining server's result cache) use it to
    /// detect whether the graph moved between two queries.
    version: u64,
    /// Support of the last mined alert, used to warm-start the next mine.
    last_support: Option<Vec<VertexId>>,
    /// Reusable solver scratch shared by every re-mine of this monitor, so the
    /// steady-state cadence path stops allocating per mine — peel buffers for the
    /// average-degree measure, the dense DCSGA embedding arena (and `µ_u`
    /// order/core scratch) for the affinity measure.  Clones of the monitor share
    /// the workspace (solves serialise on its lock); contents are pure scratch, so
    /// sharing never changes results.
    workspace: SharedWorkspace,
}

/// Outcome of a batched observation ([`StreamingDcs::observe_batch`] /
/// [`StreamingDcs::apply_batch`]).
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Number of updates that were applied (in-range, non-self-loop).
    pub applied: usize,
    /// Number of updates that were ignored (self-loops, out-of-range endpoints).
    pub ignored: usize,
    /// Every alert raised by re-mining periods completed during the batch.
    pub alerts: Vec<ContrastAlert>,
}

impl StreamingDcs {
    /// Creates a monitor over a historical baseline graph `G1`.
    ///
    /// The baseline must be non-negatively weighted (it is an expectation of connection
    /// strengths, like any DCS input graph).
    pub fn new(baseline: SignedGraph, config: StreamingConfig) -> Result<Self, DcsError> {
        if baseline.min_edge_weight().unwrap_or(0.0) < 0.0 {
            return Err(DcsError::NegativeInputWeight { which: "G1" });
        }
        // Fold the baseline into the difference weights once, at construction:
        // with no observations yet, D(u,v) = 0 − A1(u,v).  Snapshots never
        // re-walk G1 after this.
        let n = baseline.num_vertices();
        let mut delta = DeltaGraph::new(n);
        for (u, v, w) in baseline.edges() {
            delta.set_weight(u, v, -w);
        }
        Ok(StreamingDcs {
            baseline: Arc::new(baseline),
            observed: FxHashMap::default(),
            delta,
            config,
            observations: 0,
            updates_since_mine: 0,
            version: 0,
            last_support: None,
            workspace: SharedWorkspace::new(),
        })
    }

    /// Starts the observed graph from an initial snapshot `G2` instead of from empty.
    ///
    /// Like the baseline (and like any DCS input graph), the initial `G2` must be
    /// non-negatively weighted.
    pub fn with_initial_observation(
        baseline: SignedGraph,
        initial: &SignedGraph,
        config: StreamingConfig,
    ) -> Result<Self, DcsError> {
        if initial.num_vertices() != baseline.num_vertices() {
            return Err(DcsError::VertexCountMismatch {
                g1_vertices: baseline.num_vertices(),
                g2_vertices: initial.num_vertices(),
            });
        }
        if initial.min_edge_weight().unwrap_or(0.0) < 0.0 {
            return Err(DcsError::NegativeInputWeight { which: "G2" });
        }
        let mut monitor = Self::new(baseline, config)?;
        for (u, v, w) in initial.edges() {
            monitor.observed.insert(key(u, v), w);
            let base = monitor.baseline_weight(u, v);
            monitor.delta.set_weight(u, v, w - base);
        }
        Ok(monitor)
    }

    /// Number of vertices of the monitored pair.
    pub fn num_vertices(&self) -> usize {
        self.baseline.num_vertices()
    }

    /// Total number of observations applied so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Version of the observed graph: bumped once per applied observation,
    /// stable across queries that do not change the graph.  Together with a
    /// job description this uniquely identifies a mining result, which is how
    /// the serving layer keys its per-session cache.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The historical baseline graph `G1`.
    pub fn baseline(&self) -> &SignedGraph {
        &self.baseline
    }

    /// A shared handle to the baseline graph, for consumers that solve outside
    /// the monitor's lock (the serving layer) — cloning the `Arc`, not the graph.
    pub fn baseline_arc(&self) -> Arc<SignedGraph> {
        Arc::clone(&self.baseline)
    }

    /// The support of the most recently mined alert, used as the warm-start seed
    /// for the next mine.  `None` until the first mine (or after a clone of a
    /// never-mined monitor).
    pub fn last_support(&self) -> Option<&[VertexId]> {
        self.last_support.as_deref()
    }

    /// Number of edges currently present in the observed graph.
    pub fn observed_edge_count(&self) -> usize {
        self.observed.len()
    }

    /// Observations applied since the last mine — how far into the current
    /// re-mining period the monitor is.  Checkpointing code persists this so
    /// a restored monitor fires its next cadence mine at the same
    /// observation a never-interrupted one would.
    pub fn updates_since_mine(&self) -> usize {
        self.updates_since_mine
    }

    /// The current observed weights as `(u, v, weight)` triples with `u < v`,
    /// in ascending `(u, v)` order — the deterministic iteration checkpoint
    /// writers need (hash-map order would make checkpoint bytes
    /// run-dependent).
    pub fn observed_edges_sorted(&self) -> Vec<(VertexId, VertexId, Weight)> {
        let mut edges: Vec<(VertexId, VertexId, Weight)> = self
            .observed
            .iter()
            .map(|(&(u, v), &w)| (u, v, w))
            .collect();
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        edges
    }

    /// Restores the streaming counters and warm-start seed of a monitor that
    /// was just rebuilt from persisted state ([`Self::with_initial_observation`]
    /// leaves them at zero).  This is the checkpoint-recovery hook: the graph
    /// state is reconstructed through the ordinary constructors (so every
    /// invariant check still runs), then the counters are stamped back so the
    /// recovered monitor is indistinguishable — version, observation count,
    /// cadence phase, warm-start seed — from one that never stopped.
    pub fn restore_counters(
        &mut self,
        version: u64,
        observations: usize,
        updates_since_mine: usize,
        last_support: Option<Vec<VertexId>>,
    ) {
        self.version = version;
        self.observations = observations;
        self.updates_since_mine = updates_since_mine;
        self.last_support = last_support;
    }

    /// Adds `delta` to the observed weight of the edge `(u, v)`.
    ///
    /// Observed weights are clamped at zero from below — `G2` is an ordinary
    /// non-negatively weighted graph; a negative cumulative observation means "no
    /// connection", not a negative connection.  Updates that leave the observed
    /// graph unchanged — a zero `delta`, or a negative `delta` on an edge already
    /// clamped at (or absent from) zero — are no-ops: they bump neither the version
    /// nor the observation counter.  Returns a [`ContrastAlert`] when this
    /// observation completed a re-mining period.
    pub fn observe(&mut self, u: VertexId, v: VertexId, delta: Weight) -> Option<ContrastAlert> {
        if u == v || (u as usize) >= self.num_vertices() || (v as usize) >= self.num_vertices() {
            return None; // self-loops and out-of-range endpoints are ignored
        }
        let k = key(u, v);
        let old = self.observed.get(&k).copied().unwrap_or(0.0);
        let new = (old + delta).max(0.0);
        if new == old {
            return None; // no-op: the observed graph did not change
        }
        if new == 0.0 {
            self.observed.remove(&k);
        } else {
            self.observed.insert(k, new);
        }
        // Maintain the difference weight directly: D(u,v) = obs(u,v) − A1(u,v).
        let base = self.baseline_weight(u, v);
        self.delta.set_weight(u, v, new - base);
        self.observations += 1;
        self.updates_since_mine += 1;
        // The version tracks *observed-graph* changes, deliberately not the delta
        // engine's version: sweep consumers are keyed by this version but read G2
        // directly, so a G2 change whose difference weight happens to round to the
        // previous value must still invalidate their caches.
        self.version += 1;
        if self.config.remine_every > 0 && self.updates_since_mine >= self.config.remine_every {
            Some(self.mine_now())
        } else {
            None
        }
    }

    /// Applies a batch of observations, returning every alert raised along the way.
    pub fn observe_batch<I: IntoIterator<Item = (VertexId, VertexId, Weight)>>(
        &mut self,
        updates: I,
    ) -> Vec<ContrastAlert> {
        self.apply_batch(updates).alerts
    }

    /// Applies a batch of observations and reports how many were applied vs
    /// ignored alongside the raised alerts — the accounting the serving layer
    /// returns to remote clients.
    pub fn apply_batch<I: IntoIterator<Item = (VertexId, VertexId, Weight)>>(
        &mut self,
        updates: I,
    ) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        for (u, v, delta) in updates {
            let before = self.observations;
            if let Some(alert) = self.observe(u, v, delta) {
                outcome.alerts.push(alert)
            }
            if self.observations > before {
                outcome.applied += 1;
            } else {
                outcome.ignored += 1;
            }
        }
        outcome
    }

    /// The current observed graph `G2` as a [`SignedGraph`].
    pub fn observed_graph(&self) -> SignedGraph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (&(u, v), &w) in &self.observed {
            builder.add_edge(u, v, w);
        }
        builder.build()
    }

    /// The current difference graph `G_D = G2 − G1` as a shared CSR snapshot.
    ///
    /// The snapshot is maintained incrementally: only adjacency rows touched since
    /// the previous snapshot are rebuilt, and when the [`Self::version`] is
    /// unchanged the cached snapshot is returned **pointer-equal** (no allocation,
    /// no copying).  Callers keep the `Arc` for as long as they need the graph —
    /// this is how the mining server hands graphs to its workers without cloning.
    pub fn difference_snapshot(&mut self) -> Arc<SignedGraph> {
        self.delta.snapshot()
    }

    /// Rebuilds the difference graph from scratch through a [`GraphBuilder`],
    /// re-walking the observed map and every baseline edge.
    ///
    /// This is the pre-delta-engine snapshot path, kept as the reference
    /// implementation: property tests assert the incremental snapshot is
    /// identical to it, and the streaming-throughput benchmark measures the
    /// speedup of [`Self::difference_snapshot`] over it.
    pub fn rebuild_difference_snapshot(&self) -> SignedGraph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (&(u, v), &w) in &self.observed {
            builder.add_edge(u, v, w);
        }
        for (u, v, w) in self.baseline.edges() {
            builder.add_edge(u, v, -w);
        }
        builder.build()
    }

    /// Mines the DCS of the current difference graph immediately and resets the
    /// re-mining counter.
    ///
    /// The mine is warm-started from the support of the previous alert (if any):
    /// on a graph that changed only slightly since then, the previous support is
    /// usually still a strong solution, which lets the affinity solver's
    /// early-exit bound prune most initialisations.
    pub fn mine_now(&mut self) -> ContrastAlert {
        self.updates_since_mine = 0;
        let gd = self.delta.snapshot();
        let seed = self.last_support.take();
        // Steady-state re-mines run with the monitor's persistent workspace: the
        // peel buffers, heaps and removal orders of the previous mine are reused.
        let cx = SolveContext::unbounded().with_workspace(&self.workspace);
        let alert = mine_difference_in(&gd, &self.config, self.observations, seed.as_deref(), &cx);
        self.last_support = Some(alert.report.subset.clone());
        alert
    }

    fn baseline_weight(&self, u: VertexId, v: VertexId) -> Weight {
        self.baseline.edge_weight(u, v).unwrap_or(0.0)
    }
}

/// Mines an already-materialised difference graph under `config`, producing the
/// same [`ContrastAlert`] shape as [`StreamingDcs::mine_now`].
///
/// Exposed so callers that snapshot the difference graph themselves (the
/// mining server's worker pool, which must not hold a session lock while
/// solving) share one implementation with the in-process monitor.
pub fn mine_difference(
    gd: &SignedGraph,
    config: &StreamingConfig,
    observations: usize,
) -> ContrastAlert {
    mine_difference_seeded(gd, config, observations, None)
}

/// [`mine_difference`] with an optional **warm-start seed**: the support of a
/// previous mine on a slightly-changed graph.  The seed is handed to the solver
/// ([`crate::dcsga::NewSea::solve_seeded`] / [`crate::dcsad::DcsGreedy::solve_seeded`]);
/// a good seed makes
/// re-mines converge faster, a stale one costs a single extra candidate.
pub fn mine_difference_seeded(
    gd: &SignedGraph,
    config: &StreamingConfig,
    observations: usize,
    seed: Option<&[VertexId]>,
) -> ContrastAlert {
    mine_difference_in(gd, config, observations, seed, &SolveContext::unbounded())
}

/// [`mine_difference_seeded`] under a [`SolveContext`]: the solve observes the
/// context's cancellation token / deadline / budget and the returned alert carries
/// best-so-far results plus [`SolveStats`] telemetry when a bound trips.  Solver
/// dispatch goes through [`MeasureSolver`] — the single measure-to-solver mapping.
pub fn mine_difference_in(
    gd: &SignedGraph,
    config: &StreamingConfig,
    observations: usize,
    seed: Option<&[VertexId]>,
    cx: &SolveContext,
) -> ContrastAlert {
    let solver = MeasureSolver::for_measure(config.measure);
    let solution = solver.solve_seeded_in(gd, seed.unwrap_or(&[]), cx);
    let report = solution.report_in(gd, cx);
    ContrastAlert {
        triggered: solution.objective >= config.alert_threshold,
        density_difference: solution.objective,
        observations,
        report,
        stats: solution.stats,
    }
}

fn key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// Historical baseline: a uniform ring of expected strength 1.
    fn baseline(n: usize) -> SignedGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId {
            b.add_edge(v, (v + 1) % n as VertexId, 1.0);
        }
        b.build()
    }

    fn affinity_config(remine_every: usize, threshold: Weight) -> StreamingConfig {
        StreamingConfig {
            remine_every,
            alert_threshold: threshold,
            measure: DensityMeasure::GraphAffinity,
        }
    }

    #[test]
    fn rejects_invalid_baselines_and_snapshots() {
        let signed = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        assert!(StreamingDcs::new(signed, StreamingConfig::default()).is_err());

        let base = baseline(4);
        let mismatched = SignedGraph::empty(5);
        assert!(StreamingDcs::with_initial_observation(
            base,
            &mismatched,
            StreamingConfig::default()
        )
        .is_err());

        // An initial G2 with a negative edge is rejected just like a negative G1.
        let negative_initial = GraphBuilder::from_edges(4, vec![(0, 1, -2.0)]);
        assert_eq!(
            StreamingDcs::with_initial_observation(
                baseline(4),
                &negative_initial,
                StreamingConfig::default()
            )
            .unwrap_err(),
            DcsError::NegativeInputWeight { which: "G2" }
        );
    }

    #[test]
    fn no_op_observations_are_ignored() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(0, 0.0)).unwrap();
        monitor.observe(0, 1, 2.0);
        assert_eq!(monitor.version(), 1);
        assert_eq!(monitor.observations(), 1);
        // A zero delta changes nothing.
        monitor.observe(0, 1, 0.0);
        // A negative delta on an absent edge clamps to zero: still absent.
        monitor.observe(2, 4, -3.0);
        // A negative delta on an edge already clamped at zero.
        monitor.observe(0, 2, 1.0);
        monitor.observe(0, 2, -5.0); // applied: removes the edge
        monitor.observe(0, 2, -5.0); // no-op: already absent
        assert_eq!(monitor.version(), 3);
        assert_eq!(monitor.observations(), 3);

        // Batched accounting reports the no-ops as ignored.
        let outcome = monitor.apply_batch(vec![
            (0, 1, 1.0),  // applied
            (0, 1, 0.0),  // no-op: ignored
            (3, 4, -1.0), // clamped at absent: ignored
            (3, 3, 1.0),  // self-loop: ignored
        ]);
        assert_eq!(outcome.applied, 1);
        assert_eq!(outcome.ignored, 3);
        assert_eq!(monitor.version(), 4);
    }

    #[test]
    fn unchanged_version_returns_pointer_equal_snapshot() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(0, 0.0)).unwrap();
        monitor.observe(0, 1, 2.0);
        let first = monitor.difference_snapshot();
        // Same version: the very same Arc comes back, no rebuild.
        let second = monitor.difference_snapshot();
        assert!(std::sync::Arc::ptr_eq(&first, &second));
        // No-op observations keep the snapshot valid too.
        monitor.observe(0, 1, 0.0);
        monitor.observe(2, 4, -1.0);
        assert!(std::sync::Arc::ptr_eq(
            &first,
            &monitor.difference_snapshot()
        ));
        // An applied observation produces a fresh snapshot...
        monitor.observe(1, 2, 1.0);
        let third = monitor.difference_snapshot();
        assert!(!std::sync::Arc::ptr_eq(&first, &third));
        // ...that matches the from-scratch rebuild exactly.
        assert_eq!(*third, monitor.rebuild_difference_snapshot());
    }

    #[test]
    fn incremental_snapshot_tracks_scratch_rebuild() {
        let mut monitor = StreamingDcs::new(baseline(8), affinity_config(0, 0.0)).unwrap();
        let updates = [
            (0u32, 1u32, 3.0),
            (0, 2, 1.5),
            (0, 1, -10.0), // deletes the observation; baseline edge resurfaces
            (6, 7, 2.0),
            (6, 7, -2.0), // exact cancel: difference returns to -baseline
            (3, 4, 0.75),
            (3, 4, 0.25),
        ];
        for (u, v, delta) in updates {
            monitor.observe(u, v, delta);
            assert_eq!(
                *monitor.difference_snapshot(),
                monitor.rebuild_difference_snapshot()
            );
        }
    }

    #[test]
    fn warm_start_seed_follows_the_last_alert() {
        let mut monitor = StreamingDcs::new(baseline(8), affinity_config(0, 0.0)).unwrap();
        assert!(monitor.last_support().is_none());
        monitor.apply_batch(vec![(0, 1, 9.0), (0, 2, 9.0), (1, 2, 9.0)]);
        let alert = monitor.mine_now();
        assert_eq!(alert.report.subset, vec![0, 1, 2]);
        assert_eq!(monitor.last_support(), Some(&[0, 1, 2][..]));
        // A slightly-changed graph re-mines to the same answer from the seed.
        monitor.observe(4, 5, 0.5);
        let alert = monitor.mine_now();
        assert_eq!(alert.report.subset, vec![0, 1, 2]);
    }

    #[test]
    fn observation_accumulates_and_clamps_at_zero() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(0, 0.0)).unwrap();
        monitor.observe(0, 1, 2.0);
        monitor.observe(1, 0, 1.5);
        assert_eq!(monitor.observed_graph().edge_weight(0, 1), Some(3.5));
        // Driving the weight negative removes the edge instead.
        monitor.observe(0, 1, -10.0);
        assert_eq!(monitor.observed_graph().edge_weight(0, 1), None);
        // Self-loops and out-of-range endpoints are ignored.
        monitor.observe(2, 2, 5.0);
        monitor.observe(0, 99, 5.0);
        assert_eq!(monitor.observations(), 3);
    }

    #[test]
    fn difference_snapshot_subtracts_the_baseline() {
        let mut monitor = StreamingDcs::new(baseline(4), affinity_config(0, 0.0)).unwrap();
        monitor.observe(0, 1, 3.0); // expected 1 -> difference +2
        monitor.observe(0, 2, 1.0); // expected 0 -> difference +1
        let gd = monitor.difference_snapshot();
        assert_eq!(gd.edge_weight(0, 1), Some(2.0));
        assert_eq!(gd.edge_weight(0, 2), Some(1.0));
        // Unobserved baseline edges show up as fully "missing" (negative difference).
        assert_eq!(gd.edge_weight(2, 3), Some(-1.0));
    }

    #[test]
    fn automatic_remine_fires_every_period_and_respects_threshold() {
        let mut monitor = StreamingDcs::new(baseline(8), affinity_config(3, 1.0)).unwrap();
        // Two quiet observations, no alert yet.
        assert!(monitor.observe(0, 1, 1.1).is_none());
        assert!(monitor.observe(2, 3, 1.1).is_none());
        // Third observation closes the period: an alert is produced but the contrast is
        // still small, so it is not triggered.
        let alert = monitor.observe(4, 5, 1.1).expect("period completed");
        assert!(!alert.triggered);
        assert_eq!(alert.observations, 3);

        // Now a dense anomalous triangle forms among {0,1,2}.
        let alerts = monitor.observe_batch(vec![(0, 1, 9.0), (0, 2, 9.0), (1, 2, 9.0)]);
        assert_eq!(alerts.len(), 1);
        let alert = &alerts[0];
        assert!(
            alert.triggered,
            "affinity difference {}",
            alert.density_difference
        );
        assert_eq!(alert.report.subset, vec![0, 1, 2]);
        assert!(alert.report.is_positive_clique);
    }

    #[test]
    fn mine_now_resets_the_period_counter() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(2, 0.0)).unwrap();
        assert!(monitor.observe(0, 2, 5.0).is_none());
        let _ = monitor.mine_now();
        // The explicit mine reset the counter, so the next observation does not fire.
        assert!(monitor.observe(1, 3, 5.0).is_none());
        assert!(monitor.observe(2, 4, 5.0).is_some());
    }

    #[test]
    fn average_degree_measure_is_supported() {
        let config = StreamingConfig {
            remine_every: 0,
            alert_threshold: 2.0,
            measure: DensityMeasure::AverageDegree,
        };
        let mut monitor = StreamingDcs::new(baseline(10), config).unwrap();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            monitor.observe(u, v, 4.0);
        }
        let alert = monitor.mine_now();
        assert!(alert.triggered);
        assert_eq!(alert.report.subset, vec![0, 1, 2, 3]);
        // Degree-sum convention: each of the 4 vertices gains 3 edges of ~+3..4.
        assert!(alert.density_difference > 2.0);
    }

    #[test]
    fn version_counts_applied_observations_only() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(0, 0.0)).unwrap();
        assert_eq!(monitor.version(), 0);
        monitor.observe(0, 1, 2.0);
        assert_eq!(monitor.version(), 1);
        // Ignored updates (self-loop, out of range) do not move the version.
        monitor.observe(3, 3, 1.0);
        monitor.observe(0, 42, 1.0);
        assert_eq!(monitor.version(), 1);
        // Mining does not move the version either: same graph, same version.
        let _ = monitor.mine_now();
        assert_eq!(monitor.version(), 1);
        monitor.observe(0, 1, -5.0);
        assert_eq!(monitor.version(), 2);
    }

    #[test]
    fn apply_batch_reports_applied_ignored_and_alerts() {
        let mut monitor = StreamingDcs::new(baseline(8), affinity_config(2, 0.5)).unwrap();
        let outcome = monitor.apply_batch(vec![
            (0, 1, 6.0),
            (2, 2, 1.0),  // self-loop: ignored
            (0, 2, 6.0),  // completes the first period
            (0, 99, 1.0), // out of range: ignored
            (1, 2, 6.0),
            (3, 4, 0.1), // completes the second period
        ]);
        assert_eq!(outcome.applied, 4);
        assert_eq!(outcome.ignored, 2);
        assert_eq!(outcome.alerts.len(), 2);
        assert!(outcome.alerts[0].triggered);
        assert_eq!(monitor.version(), 4);
        assert_eq!(monitor.observations(), 4);
    }

    #[test]
    fn accessors_expose_config_baseline_and_edges() {
        let base = baseline(5);
        let config = affinity_config(7, 1.25);
        let mut monitor = StreamingDcs::new(base.clone(), config).unwrap();
        assert_eq!(monitor.config().remine_every, 7);
        assert_eq!(monitor.config().alert_threshold, 1.25);
        assert_eq!(monitor.baseline(), &base);
        assert_eq!(monitor.observed_edge_count(), 0);
        monitor.observe(0, 1, 1.0);
        monitor.observe(1, 2, 1.0);
        assert_eq!(monitor.observed_edge_count(), 2);
        monitor.observe(0, 1, -1.0); // drops the edge again
        assert_eq!(monitor.observed_edge_count(), 1);
    }

    #[test]
    fn alert_threshold_separates_quiet_from_anomalous_batches() {
        let mut monitor = StreamingDcs::new(baseline(10), affinity_config(0, 3.0)).unwrap();
        // Quiet traffic close to the baseline: mined alert must not trigger.
        for v in 0..9u32 {
            monitor.observe(v, v + 1, 1.05);
        }
        let quiet = monitor.mine_now();
        assert!(
            !quiet.triggered,
            "quiet contrast {}",
            quiet.density_difference
        );
        // A hot clique forms: the same threshold now triggers.
        monitor.apply_batch(vec![(0, 1, 9.0), (0, 2, 9.0), (1, 2, 9.0)]);
        let hot = monitor.mine_now();
        assert!(hot.triggered);
        assert_eq!(hot.report.subset, vec![0, 1, 2]);
    }

    #[test]
    fn restored_counters_reproduce_an_uninterrupted_monitor() {
        // Drive a control monitor, then rebuild a twin from its observable
        // state the way checkpoint recovery does: observed graph through
        // with_initial_observation, counters through restore_counters.
        let mut control = StreamingDcs::new(baseline(8), affinity_config(3, 0.0)).unwrap();
        control.apply_batch(vec![(0, 1, 9.0), (0, 2, 9.0), (1, 2, 9.0), (4, 5, 1.0)]);

        let observed = control.observed_graph();
        let mut recovered =
            StreamingDcs::with_initial_observation(baseline(8), &observed, affinity_config(3, 0.0))
                .unwrap();
        recovered.restore_counters(
            control.version(),
            control.observations(),
            control.updates_since_mine(),
            control.last_support().map(|s| s.to_vec()),
        );
        assert_eq!(recovered.version(), control.version());
        assert_eq!(recovered.observations(), control.observations());
        assert_eq!(recovered.updates_since_mine(), control.updates_since_mine());
        assert_eq!(
            *recovered.difference_snapshot(),
            *control.difference_snapshot()
        );
        // Both fire the cadence mine on the same observation with the same
        // outcome, and the next observe after that behaves identically.
        let a = recovered.observe(6, 7, 2.0);
        let b = control.observe(6, 7, 2.0);
        assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            assert_eq!(a.report.subset, b.report.subset);
            assert_eq!(a.observations, b.observations);
        }
        assert_eq!(recovered.last_support(), control.last_support());
        // Sorted observed edges are deterministic and match.
        assert_eq!(
            recovered.observed_edges_sorted(),
            control.observed_edges_sorted()
        );
    }

    #[test]
    fn initial_observation_snapshot_is_used() {
        let base = baseline(5);
        let initial = GraphBuilder::from_edges(5, vec![(0, 1, 4.0), (1, 2, 4.0), (0, 2, 4.0)]);
        let mut monitor =
            StreamingDcs::with_initial_observation(base, &initial, affinity_config(0, 0.0))
                .unwrap();
        let alert = monitor.mine_now();
        assert_eq!(alert.report.subset, vec![0, 1, 2]);
        assert!(alert.density_difference > 0.0);
    }
}

//! Streaming anomaly detection against a historical baseline.
//!
//! The introduction of the paper motivates DCS with "detecting current anomalies against
//! historical data": build a weighted graph `G1` of *expected* connection strengths from
//! history, observe the *current* connection strengths as `G2`, and mine the subgraph
//! whose density gap is largest (emerging traffic hot-spot clutters, emerging
//! communities, money-laundering dark networks).
//!
//! In that scenario `G2` is not a static file but a stream of observations.  This module
//! maintains the observed graph incrementally and re-mines the DCS on a configurable
//! cadence:
//!
//! * [`StreamingDcs::observe`] applies one weight update to the observed graph in `O(1)`
//!   (hash-map upkeep; the difference snapshot is materialised lazily),
//! * every [`StreamingConfig::remine_every`] updates — or on demand via
//!   [`StreamingDcs::mine_now`] — the current difference graph is built and mined, and
//! * when the mined density difference exceeds [`StreamingConfig::alert_threshold`] the
//!   result is reported as an [`ContrastAlert`] with `triggered = true`.
//!
//! Mining itself is *not* incremental (the paper's algorithms are batch algorithms and
//! incremental DCS maintenance is open future work); what is incremental is the
//! maintenance of the observed graph and of the difference-graph statistics, which is
//! where the stream volume goes.

use dcs_graph::{GraphBuilder, SignedGraph, VertexId, Weight};
use rustc_hash::FxHashMap;

use crate::dcsad::DcsGreedy;
use crate::dcsga::NewSea;
use crate::error::DcsError;
use crate::solution::{ContrastReport, DensityMeasure};

/// Configuration of a [`StreamingDcs`] monitor.
#[derive(Debug, Clone, Copy)]
pub struct StreamingConfig {
    /// Re-mine after this many observations (`0` disables automatic re-mining; call
    /// [`StreamingDcs::mine_now`] explicitly instead).
    pub remine_every: usize,
    /// Report `triggered = true` when the mined density difference reaches this value.
    pub alert_threshold: Weight,
    /// Which density measure to mine with.  [`DensityMeasure::TotalDegree`] is not a
    /// supported mining measure and falls back to average degree.
    pub measure: DensityMeasure,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            remine_every: 100,
            alert_threshold: 0.0,
            measure: DensityMeasure::GraphAffinity,
        }
    }
}

/// The result of one (automatic or explicit) re-mining pass.
#[derive(Debug, Clone)]
pub struct ContrastAlert {
    /// Statistics of the mined subgraph on the current difference graph.
    pub report: ContrastReport,
    /// Whether the configured alert threshold was reached.
    pub triggered: bool,
    /// The density difference under the configured measure (average degree or affinity).
    pub density_difference: Weight,
    /// How many observations have been applied in total when this alert was produced.
    pub observations: usize,
}

/// Maintains an observed graph against a fixed historical baseline and periodically mines
/// the density contrast subgraph of the pair.
#[derive(Debug, Clone)]
pub struct StreamingDcs {
    baseline: SignedGraph,
    /// Current observed weights, keyed by the normalised `(min, max)` endpoint pair.
    observed: FxHashMap<(VertexId, VertexId), Weight>,
    config: StreamingConfig,
    observations: usize,
    updates_since_mine: usize,
    /// Monotone counter bumped on every observation that changed the observed
    /// graph.  Consumers (e.g. the mining server's result cache) use it to
    /// detect whether the graph moved between two queries.
    version: u64,
}

/// Outcome of a batched observation ([`StreamingDcs::observe_batch`] /
/// [`StreamingDcs::apply_batch`]).
#[derive(Debug, Clone, Default)]
pub struct BatchOutcome {
    /// Number of updates that were applied (in-range, non-self-loop).
    pub applied: usize,
    /// Number of updates that were ignored (self-loops, out-of-range endpoints).
    pub ignored: usize,
    /// Every alert raised by re-mining periods completed during the batch.
    pub alerts: Vec<ContrastAlert>,
}

impl StreamingDcs {
    /// Creates a monitor over a historical baseline graph `G1`.
    ///
    /// The baseline must be non-negatively weighted (it is an expectation of connection
    /// strengths, like any DCS input graph).
    pub fn new(baseline: SignedGraph, config: StreamingConfig) -> Result<Self, DcsError> {
        if baseline.min_edge_weight().unwrap_or(0.0) < 0.0 {
            return Err(DcsError::NegativeInputWeight { which: "G1" });
        }
        Ok(StreamingDcs {
            baseline,
            observed: FxHashMap::default(),
            config,
            observations: 0,
            updates_since_mine: 0,
            version: 0,
        })
    }

    /// Starts the observed graph from an initial snapshot `G2` instead of from empty.
    pub fn with_initial_observation(
        baseline: SignedGraph,
        initial: &SignedGraph,
        config: StreamingConfig,
    ) -> Result<Self, DcsError> {
        if initial.num_vertices() != baseline.num_vertices() {
            return Err(DcsError::VertexCountMismatch {
                g1_vertices: baseline.num_vertices(),
                g2_vertices: initial.num_vertices(),
            });
        }
        let mut monitor = Self::new(baseline, config)?;
        for (u, v, w) in initial.edges() {
            monitor.observed.insert(key(u, v), w);
        }
        Ok(monitor)
    }

    /// Number of vertices of the monitored pair.
    pub fn num_vertices(&self) -> usize {
        self.baseline.num_vertices()
    }

    /// Total number of observations applied so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Version of the observed graph: bumped once per applied observation,
    /// stable across queries that do not change the graph.  Together with a
    /// job description this uniquely identifies a mining result, which is how
    /// the serving layer keys its per-session cache.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The historical baseline graph `G1`.
    pub fn baseline(&self) -> &SignedGraph {
        &self.baseline
    }

    /// Number of edges currently present in the observed graph.
    pub fn observed_edge_count(&self) -> usize {
        self.observed.len()
    }

    /// Adds `delta` to the observed weight of the edge `(u, v)`.
    ///
    /// Observed weights are clamped at zero from below — `G2` is an ordinary
    /// non-negatively weighted graph; a negative cumulative observation means "no
    /// connection", not a negative connection.  Returns a [`ContrastAlert`] when this
    /// observation completed a re-mining period.
    pub fn observe(&mut self, u: VertexId, v: VertexId, delta: Weight) -> Option<ContrastAlert> {
        if u == v || (u as usize) >= self.num_vertices() || (v as usize) >= self.num_vertices() {
            return None; // self-loops and out-of-range endpoints are ignored
        }
        let entry = self.observed.entry(key(u, v)).or_insert(0.0);
        *entry = (*entry + delta).max(0.0);
        if *entry == 0.0 {
            self.observed.remove(&key(u, v));
        }
        self.observations += 1;
        self.updates_since_mine += 1;
        self.version += 1;
        if self.config.remine_every > 0 && self.updates_since_mine >= self.config.remine_every {
            Some(self.mine_now())
        } else {
            None
        }
    }

    /// Applies a batch of observations, returning every alert raised along the way.
    pub fn observe_batch<I: IntoIterator<Item = (VertexId, VertexId, Weight)>>(
        &mut self,
        updates: I,
    ) -> Vec<ContrastAlert> {
        self.apply_batch(updates).alerts
    }

    /// Applies a batch of observations and reports how many were applied vs
    /// ignored alongside the raised alerts — the accounting the serving layer
    /// returns to remote clients.
    pub fn apply_batch<I: IntoIterator<Item = (VertexId, VertexId, Weight)>>(
        &mut self,
        updates: I,
    ) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        for (u, v, delta) in updates {
            let before = self.observations;
            if let Some(alert) = self.observe(u, v, delta) {
                outcome.alerts.push(alert)
            }
            if self.observations > before {
                outcome.applied += 1;
            } else {
                outcome.ignored += 1;
            }
        }
        outcome
    }

    /// The current observed graph `G2` as a [`SignedGraph`].
    pub fn observed_graph(&self) -> SignedGraph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (&(u, v), &w) in &self.observed {
            builder.add_edge(u, v, w);
        }
        builder.build()
    }

    /// The current difference graph `G_D = G2 − G1`.
    pub fn difference_snapshot(&self) -> SignedGraph {
        let mut builder = GraphBuilder::new(self.num_vertices());
        for (&(u, v), &w) in &self.observed {
            builder.add_edge(u, v, w);
        }
        for (u, v, w) in self.baseline.edges() {
            builder.add_edge(u, v, -w);
        }
        builder.build()
    }

    /// Mines the DCS of the current difference graph immediately and resets the
    /// re-mining counter.
    pub fn mine_now(&mut self) -> ContrastAlert {
        self.updates_since_mine = 0;
        let gd = self.difference_snapshot();
        mine_difference(&gd, &self.config, self.observations)
    }
}

/// Mines an already-materialised difference graph under `config`, producing the
/// same [`ContrastAlert`] shape as [`StreamingDcs::mine_now`].
///
/// Exposed so callers that snapshot the difference graph themselves (the
/// mining server's worker pool, which must not hold a session lock while
/// solving) share one implementation with the in-process monitor.
pub fn mine_difference(
    gd: &SignedGraph,
    config: &StreamingConfig,
    observations: usize,
) -> ContrastAlert {
    let (report, density_difference) = match config.measure {
        DensityMeasure::GraphAffinity => {
            let solution = NewSea::default().solve(gd);
            let report = ContrastReport::for_embedding(gd, &solution.embedding);
            (report, solution.affinity_difference)
        }
        DensityMeasure::AverageDegree | DensityMeasure::TotalDegree => {
            let solution = DcsGreedy::default().solve(gd);
            let report = ContrastReport::for_subset(gd, &solution.subset);
            (report, solution.density_difference)
        }
    };
    ContrastAlert {
        triggered: density_difference >= config.alert_threshold,
        density_difference,
        observations,
        report,
    }
}

fn key(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// Historical baseline: a uniform ring of expected strength 1.
    fn baseline(n: usize) -> SignedGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId {
            b.add_edge(v, (v + 1) % n as VertexId, 1.0);
        }
        b.build()
    }

    fn affinity_config(remine_every: usize, threshold: Weight) -> StreamingConfig {
        StreamingConfig {
            remine_every,
            alert_threshold: threshold,
            measure: DensityMeasure::GraphAffinity,
        }
    }

    #[test]
    fn rejects_invalid_baselines_and_snapshots() {
        let signed = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        assert!(StreamingDcs::new(signed, StreamingConfig::default()).is_err());

        let base = baseline(4);
        let mismatched = SignedGraph::empty(5);
        assert!(StreamingDcs::with_initial_observation(
            base,
            &mismatched,
            StreamingConfig::default()
        )
        .is_err());
    }

    #[test]
    fn observation_accumulates_and_clamps_at_zero() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(0, 0.0)).unwrap();
        monitor.observe(0, 1, 2.0);
        monitor.observe(1, 0, 1.5);
        assert_eq!(monitor.observed_graph().edge_weight(0, 1), Some(3.5));
        // Driving the weight negative removes the edge instead.
        monitor.observe(0, 1, -10.0);
        assert_eq!(monitor.observed_graph().edge_weight(0, 1), None);
        // Self-loops and out-of-range endpoints are ignored.
        monitor.observe(2, 2, 5.0);
        monitor.observe(0, 99, 5.0);
        assert_eq!(monitor.observations(), 3);
    }

    #[test]
    fn difference_snapshot_subtracts_the_baseline() {
        let mut monitor = StreamingDcs::new(baseline(4), affinity_config(0, 0.0)).unwrap();
        monitor.observe(0, 1, 3.0); // expected 1 -> difference +2
        monitor.observe(0, 2, 1.0); // expected 0 -> difference +1
        let gd = monitor.difference_snapshot();
        assert_eq!(gd.edge_weight(0, 1), Some(2.0));
        assert_eq!(gd.edge_weight(0, 2), Some(1.0));
        // Unobserved baseline edges show up as fully "missing" (negative difference).
        assert_eq!(gd.edge_weight(2, 3), Some(-1.0));
    }

    #[test]
    fn automatic_remine_fires_every_period_and_respects_threshold() {
        let mut monitor = StreamingDcs::new(baseline(8), affinity_config(3, 1.0)).unwrap();
        // Two quiet observations, no alert yet.
        assert!(monitor.observe(0, 1, 1.1).is_none());
        assert!(monitor.observe(2, 3, 1.1).is_none());
        // Third observation closes the period: an alert is produced but the contrast is
        // still small, so it is not triggered.
        let alert = monitor.observe(4, 5, 1.1).expect("period completed");
        assert!(!alert.triggered);
        assert_eq!(alert.observations, 3);

        // Now a dense anomalous triangle forms among {0,1,2}.
        let alerts = monitor.observe_batch(vec![(0, 1, 9.0), (0, 2, 9.0), (1, 2, 9.0)]);
        assert_eq!(alerts.len(), 1);
        let alert = &alerts[0];
        assert!(
            alert.triggered,
            "affinity difference {}",
            alert.density_difference
        );
        assert_eq!(alert.report.subset, vec![0, 1, 2]);
        assert!(alert.report.is_positive_clique);
    }

    #[test]
    fn mine_now_resets_the_period_counter() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(2, 0.0)).unwrap();
        assert!(monitor.observe(0, 2, 5.0).is_none());
        let _ = monitor.mine_now();
        // The explicit mine reset the counter, so the next observation does not fire.
        assert!(monitor.observe(1, 3, 5.0).is_none());
        assert!(monitor.observe(2, 4, 5.0).is_some());
    }

    #[test]
    fn average_degree_measure_is_supported() {
        let config = StreamingConfig {
            remine_every: 0,
            alert_threshold: 2.0,
            measure: DensityMeasure::AverageDegree,
        };
        let mut monitor = StreamingDcs::new(baseline(10), config).unwrap();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            monitor.observe(u, v, 4.0);
        }
        let alert = monitor.mine_now();
        assert!(alert.triggered);
        assert_eq!(alert.report.subset, vec![0, 1, 2, 3]);
        // Degree-sum convention: each of the 4 vertices gains 3 edges of ~+3..4.
        assert!(alert.density_difference > 2.0);
    }

    #[test]
    fn version_counts_applied_observations_only() {
        let mut monitor = StreamingDcs::new(baseline(6), affinity_config(0, 0.0)).unwrap();
        assert_eq!(monitor.version(), 0);
        monitor.observe(0, 1, 2.0);
        assert_eq!(monitor.version(), 1);
        // Ignored updates (self-loop, out of range) do not move the version.
        monitor.observe(3, 3, 1.0);
        monitor.observe(0, 42, 1.0);
        assert_eq!(monitor.version(), 1);
        // Mining does not move the version either: same graph, same version.
        let _ = monitor.mine_now();
        assert_eq!(monitor.version(), 1);
        monitor.observe(0, 1, -5.0);
        assert_eq!(monitor.version(), 2);
    }

    #[test]
    fn apply_batch_reports_applied_ignored_and_alerts() {
        let mut monitor = StreamingDcs::new(baseline(8), affinity_config(2, 0.5)).unwrap();
        let outcome = monitor.apply_batch(vec![
            (0, 1, 6.0),
            (2, 2, 1.0),  // self-loop: ignored
            (0, 2, 6.0),  // completes the first period
            (0, 99, 1.0), // out of range: ignored
            (1, 2, 6.0),
            (3, 4, 0.1), // completes the second period
        ]);
        assert_eq!(outcome.applied, 4);
        assert_eq!(outcome.ignored, 2);
        assert_eq!(outcome.alerts.len(), 2);
        assert!(outcome.alerts[0].triggered);
        assert_eq!(monitor.version(), 4);
        assert_eq!(monitor.observations(), 4);
    }

    #[test]
    fn accessors_expose_config_baseline_and_edges() {
        let base = baseline(5);
        let config = affinity_config(7, 1.25);
        let mut monitor = StreamingDcs::new(base.clone(), config).unwrap();
        assert_eq!(monitor.config().remine_every, 7);
        assert_eq!(monitor.config().alert_threshold, 1.25);
        assert_eq!(monitor.baseline(), &base);
        assert_eq!(monitor.observed_edge_count(), 0);
        monitor.observe(0, 1, 1.0);
        monitor.observe(1, 2, 1.0);
        assert_eq!(monitor.observed_edge_count(), 2);
        monitor.observe(0, 1, -1.0); // drops the edge again
        assert_eq!(monitor.observed_edge_count(), 1);
    }

    #[test]
    fn alert_threshold_separates_quiet_from_anomalous_batches() {
        let mut monitor = StreamingDcs::new(baseline(10), affinity_config(0, 3.0)).unwrap();
        // Quiet traffic close to the baseline: mined alert must not trigger.
        for v in 0..9u32 {
            monitor.observe(v, v + 1, 1.05);
        }
        let quiet = monitor.mine_now();
        assert!(
            !quiet.triggered,
            "quiet contrast {}",
            quiet.density_difference
        );
        // A hot clique forms: the same threshold now triggers.
        monitor.apply_batch(vec![(0, 1, 9.0), (0, 2, 9.0), (1, 2, 9.0)]);
        let hot = monitor.mine_now();
        assert!(hot.triggered);
        assert_eq!(hot.report.subset, vec![0, 1, 2]);
    }

    #[test]
    fn initial_observation_snapshot_is_used() {
        let base = baseline(5);
        let initial = GraphBuilder::from_edges(5, vec![(0, 1, 4.0), (1, 2, 4.0), (0, 2, 4.0)]);
        let mut monitor =
            StreamingDcs::with_initial_observation(base, &initial, affinity_config(0, 0.0))
                .unwrap();
        let alert = monitor.mine_now();
        assert_eq!(alert.report.subset, vec![0, 1, 2]);
        assert!(alert.density_difference > 0.0);
    }
}

//! Sweeping the α-scaled difference graph `D = A2 − α·A1` (Section III-D).
//!
//! The paper generalises the difference graph to `A2 − α·A1`: mining it finds subgraphs
//! whose density in `G2` exceeds `α` times their density in `G1`, analogous to the
//! optimal α-quasi-clique problem.  In practice the interesting question is *how the
//! mined subgraph changes as α grows*: at `α = 0` the DCS is simply the densest subgraph
//! of `G2`; as α increases, vertices whose connections did not actually strengthen are
//! priced out and the DCS shrinks towards the genuinely contrasting core.
//!
//! [`alpha_sweep`] runs either DCS algorithm across a grid of α values and reports one
//! [`AlphaPoint`] per value, so callers (and the `emerging_communities` example) can plot
//! size and contrast against α and pick an operating point.
//!
//! The sweep is an **engine driver**: solver choice goes through
//! [`MeasureSolver`], every grid point runs under the caller's [`SolveContext`]
//! (shared budget, job-wide deadline and cancellation), and each solve is
//! **warm-started** from the previous α's support — neighbouring grid points usually
//! mine almost the same subgraph, so the previous support is a strong incumbent that
//! lets the Theorem-6 early-exit bound prune most initialisations instead of mining
//! every α from scratch.

use dcs_graph::{SignedGraph, VertexId, Weight};

use crate::diff::{CsrBuffers, ScaledDifferenceTemplate};
use crate::engine::{ContrastSolver, MeasureSolver, SolveContext, SolveStats, Termination};
use crate::error::DcsError;
use crate::solution::{ContrastReport, DensityMeasure};

/// The mined subgraph at one value of α.
#[derive(Debug, Clone)]
pub struct AlphaPoint {
    /// The α this point was mined at.
    pub alpha: Weight,
    /// The mined vertex set (support set under the affinity measure).
    pub subset: Vec<VertexId>,
    /// The objective value on the α-scaled difference graph (average-degree or affinity
    /// difference, depending on the measure).
    pub objective: Weight,
    /// Full statistics of the subset, evaluated on the *plain* (α = 1) difference graph
    /// so points are comparable across α.
    pub report: ContrastReport,
}

/// The result of a bounded α-sweep: the mined grid points plus job-level telemetry.
#[derive(Debug, Clone)]
pub struct AlphaSweep {
    /// One point per completed α value, in grid order.  A truncated sweep holds the
    /// points completed before the bound tripped (the truncated point's best-so-far
    /// included).
    pub points: Vec<AlphaPoint>,
    /// Aggregated stats across all grid points.
    pub stats: SolveStats,
    /// [`Termination::Converged`] when every grid point ran to completion.
    pub termination: Termination,
}

/// Runs a DCS algorithm for every α in `alphas` under a [`SolveContext`].
///
/// `measure` selects the solver through [`MeasureSolver`]:
/// [`DensityMeasure::AverageDegree`] runs DCSGreedy, anything else runs NewSEA.  Both
/// graphs must be valid DCS inputs (same vertex set, non-negative weights); α values
/// must be non-negative.  Each grid point's solve is warm-started from the previous
/// point's support.
///
/// The α-scaled difference graph is **reweighted in place** per grid point: the
/// merged edge structure is built once ([`ScaledDifferenceTemplate`]) and each α
/// writes `w2 − α·w1` into the same recycled CSR buffers instead of rebuilding the
/// graph through a [`dcs_graph::GraphBuilder`].  All grid points additionally share
/// one [`crate::workspace::SolverWorkspace`] (the caller's, when `cx` carries one).
pub fn alpha_sweep_in(
    g2: &SignedGraph,
    g1: &SignedGraph,
    alphas: &[Weight],
    measure: DensityMeasure,
    cx: &SolveContext,
) -> Result<AlphaSweep, DcsError> {
    let solver = MeasureSolver::for_measure(measure);
    let cx = cx.ensure_workspace();
    let template = ScaledDifferenceTemplate::new(g2, g1)?;
    let plain = template.materialize(1.0);
    let mut points = Vec::with_capacity(alphas.len());
    let mut stats = SolveStats::default();
    let mut seed: Vec<VertexId> = Vec::new();
    let mut buffers = CsrBuffers::default();
    for &alpha in alphas {
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(DcsError::InvalidConfig(format!(
                "alpha must be a non-negative finite number, got {alpha}"
            )));
        }
        let gd = template.materialize_with(alpha, buffers);
        let point_cx = cx.after_work(stats.iterations);
        let solution = solver.solve_seeded_in(&gd, &seed, &point_cx);
        let truncated = !solution.termination().is_converged();
        stats.absorb(&solution.stats);
        seed = solution.subset.clone();
        // Per-point reports go through the job's workspace scratch (the lock is
        // taken after the solve returned, never across it).
        let report = {
            let mut ws = cx.workspace();
            let crate::workspace::SolverWorkspace {
                marks,
                visited,
                stack,
                ..
            } = &mut *ws;
            ContrastReport::for_subset_scratch(&plain, &solution.subset, marks, visited, stack)
        };
        buffers = gd.into_raw_csr();
        points.push(AlphaPoint {
            alpha,
            subset: solution.subset,
            objective: solution.objective,
            report,
        });
        if truncated {
            break;
        }
    }
    let termination = stats.termination;
    Ok(AlphaSweep {
        points,
        stats,
        termination,
    })
}

/// Runs a DCS algorithm for every α in `alphas` and returns one point per value —
/// a thin [`SolveContext::unbounded`] wrapper over [`alpha_sweep_in`].
pub fn alpha_sweep(
    g2: &SignedGraph,
    g1: &SignedGraph,
    alphas: &[Weight],
    measure: DensityMeasure,
) -> Result<Vec<AlphaPoint>, DcsError> {
    alpha_sweep_in(g2, g1, alphas, measure, &SolveContext::unbounded()).map(|sweep| sweep.points)
}

/// A convenient default grid: `0, 0.25, 0.5, …, 2.0`.
pub fn default_alpha_grid() -> Vec<Weight> {
    (0..=8).map(|i| i as Weight * 0.25).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CancelToken;
    use dcs_graph::GraphBuilder;

    /// G2 strengthens the triangle {0,1,2}; the pair {3,4} is strong in both graphs;
    /// {5,6} only exists in G1.
    fn pair() -> (SignedGraph, SignedGraph) {
        let g1 = GraphBuilder::from_edges(7, vec![(0, 1, 1.0), (3, 4, 10.0), (5, 6, 4.0)]);
        let g2 = GraphBuilder::from_edges(
            7,
            vec![
                (0, 1, 5.0),
                (0, 2, 5.0),
                (1, 2, 5.0),
                (3, 4, 11.0),
                (5, 6, 1.0),
            ],
        );
        (g1, g2)
    }

    #[test]
    fn zero_alpha_is_plain_densest_subgraph_of_g2() {
        let (g1, g2) = pair();
        let points = alpha_sweep(&g2, &g1, &[0.0], DensityMeasure::AverageDegree).unwrap();
        // With α = 0 the heavy stable pair {3,4} dominates (weight 11 ≈ degree 11 each).
        assert_eq!(points[0].subset, vec![3, 4]);
        assert!(points[0].objective > 10.0);
    }

    #[test]
    fn growing_alpha_prices_out_stable_structure() {
        let (g1, g2) = pair();
        let alphas = [0.0, 1.0, 2.0];
        let points = alpha_sweep(&g2, &g1, &alphas, DensityMeasure::GraphAffinity).unwrap();
        assert_eq!(points.len(), 3);
        // At α = 1 and above, the genuinely emerging triangle wins.
        assert_eq!(points[1].subset, vec![0, 1, 2]);
        assert_eq!(points[2].subset, vec![0, 1, 2]);
        // The α-scaled objective is non-increasing in α (more of G1 is subtracted).
        assert!(points[0].objective >= points[1].objective - 1e-9);
        assert!(points[1].objective >= points[2].objective - 1e-9);
        // Reports are evaluated on the plain difference graph, so the triangle's numbers
        // are identical in both points.
        assert!(
            (points[1].report.average_degree_difference
                - points[2].report.average_degree_difference)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn degree_measure_sweep_over_the_default_grid() {
        let (g1, g2) = pair();
        let grid = default_alpha_grid();
        assert_eq!(grid.len(), 9);
        assert_eq!(grid[0], 0.0);
        assert_eq!(*grid.last().unwrap(), 2.0);
        let points = alpha_sweep(&g2, &g1, &grid, DensityMeasure::AverageDegree).unwrap();
        assert_eq!(points.len(), grid.len());
        // The α-scaled objective is non-increasing in α and every point is non-empty.
        for window in points.windows(2) {
            assert!(window[0].objective >= window[1].objective - 1e-9);
        }
        assert!(points.iter().all(|p| !p.subset.is_empty()));
        // At α = 0 the stable heavy pair wins; by α = 2 only the emerging triangle is
        // left standing.
        assert_eq!(points[0].subset, vec![3, 4]);
        assert_eq!(points.last().unwrap().subset, vec![0, 1, 2]);
    }

    #[test]
    fn warm_started_sweep_matches_the_cold_grid_and_reports_stats() {
        let (g1, g2) = pair();
        let grid = default_alpha_grid();
        let sweep = alpha_sweep_in(
            &g2,
            &g1,
            &grid,
            DensityMeasure::GraphAffinity,
            &SolveContext::unbounded(),
        )
        .unwrap();
        assert_eq!(sweep.termination, Termination::Converged);
        assert_eq!(sweep.points.len(), grid.len());
        assert!(sweep.stats.iterations > 0);
        // Every point matches a from-scratch solve of the same α (warm starting never
        // changes the answer on this instance, only the work done).
        for point in &sweep.points {
            let cold = alpha_sweep(&g2, &g1, &[point.alpha], DensityMeasure::GraphAffinity)
                .unwrap()
                .remove(0);
            assert_eq!(point.subset, cold.subset);
        }
    }

    #[test]
    fn cancelled_sweep_stops_early_with_partial_points() {
        let (g1, g2) = pair();
        let token = CancelToken::new();
        token.cancel();
        let sweep = alpha_sweep_in(
            &g2,
            &g1,
            &default_alpha_grid(),
            DensityMeasure::AverageDegree,
            &SolveContext::unbounded().with_cancel(&token),
        )
        .unwrap();
        assert_eq!(sweep.termination, Termination::Cancelled);
        // The first point's truncated best-so-far is still reported, nothing more.
        assert!(sweep.points.len() <= 1);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (g1, g2) = pair();
        assert!(matches!(
            alpha_sweep(&g2, &g1, &[-0.5], DensityMeasure::AverageDegree),
            Err(DcsError::InvalidConfig(_))
        ));
        assert!(matches!(
            alpha_sweep(&g2, &g1, &[f64::NAN], DensityMeasure::GraphAffinity),
            Err(DcsError::InvalidConfig(_))
        ));
        let mismatched = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        assert!(alpha_sweep(&g2, &mismatched, &[1.0], DensityMeasure::AverageDegree).is_err());
    }
}

//! # dcs-core — Mining Density Contrast Subgraphs
//!
//! This crate implements the algorithmic contribution of
//! *Mining Density Contrast Subgraphs* (Yang, Chu, Zhang, Wang, Pei, Chen — ICDE 2018,
//! arXiv:1802.06775).
//!
//! Given two undirected weighted graphs `G1` and `G2` over the same vertex set, a
//! *Density Contrast Subgraph* (DCS) is a subgraph whose density in `G2` minus its
//! density in `G1` is maximal.  Both variants studied by the paper reduce to densest
//! subgraph mining on the signed *difference graph* `G_D` with `D = A2 − A1`:
//!
//! * **DCSAD** (density = average degree, Eq. 5) — NP-hard and `O(n^{1-ε})`-inapproximable.
//!   Solved by [`dcsad::DcsGreedy`], the paper's Algorithm 2: an `O(n)`-approximation
//!   that also reports a data-dependent ratio (Theorem 2).
//! * **DCSGA** (density = graph affinity, Eq. 6) — NP-hard quadratic program.  Solved by
//!   [`dcsga::SeaCd`] (Algorithm 3: 2-coordinate-descent shrink + SEA expansion),
//!   [`dcsga::refine`] (Algorithm 4: refinement to a positive-clique solution,
//!   Theorem 5) and [`dcsga::NewSea`] (Algorithm 5: SEACD + refinement + the
//!   smart-initialisation upper bound of Theorem 6).
//!
//! Every solver also implements the unified [`engine::ContrastSolver`] trait: a solve
//! under an [`engine::SolveContext`] can be cancelled, deadlined or budgeted and
//! returns best-so-far with [`engine::SolveStats`] telemetry.  The drivers layered on
//! top ([`top_k_in`], [`alpha_sweep_in`], [`streaming`]) all dispatch through
//! [`engine::MeasureSolver`].
//!
//! ## Quick start
//!
//! ```
//! use dcs_graph::GraphBuilder;
//! use dcs_core::{difference_graph, dcsad::DcsGreedy, dcsga::NewSea};
//!
//! // Two graphs over the same 6 vertices: in G2 the triangle {0,1,2} intensifies.
//! let g1 = GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (3, 4, 5.0), (4, 5, 5.0)]);
//! let g2 = GraphBuilder::from_edges(
//!     6,
//!     vec![(0, 1, 4.0), (0, 2, 3.0), (1, 2, 3.0), (3, 4, 5.0), (4, 5, 4.0)],
//! );
//!
//! let gd = difference_graph(&g2, &g1).unwrap();
//!
//! // DCS w.r.t. average degree.
//! let ad = DcsGreedy::default().solve(&gd);
//! assert_eq!(ad.subset, vec![0, 1, 2]);
//!
//! // DCS w.r.t. graph affinity: a positive clique in G_D.
//! let ga = NewSea::default().solve(&gd);
//! assert_eq!(ga.embedding.support(), vec![0, 1, 2]);
//! assert!(gd.is_positive_clique(&ga.embedding.support()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha_sweep;
pub mod dcsad;
pub mod dcsga;
pub mod diff;
pub mod engine;
pub mod error;
pub mod solution;
pub mod streaming;
pub mod topk;
pub mod workspace;

pub use alpha_sweep::{alpha_sweep, alpha_sweep_in, default_alpha_grid, AlphaPoint, AlphaSweep};
pub use diff::{
    clamp_weights, damp_heavy_weights, difference_graph, difference_graph_with,
    scaled_difference_graph, CsrBuffers, DiscreteRule, ScaledDifferenceTemplate, WeightScheme,
};
pub use engine::{
    CancelToken, ContrastSolver, EngineSolution, MeasureSolver, SolveContext, SolveStats,
    Termination,
};
pub use error::DcsError;
pub use solution::{ContrastReport, DensityMeasure};
pub use streaming::{
    mine_difference, mine_difference_in, mine_difference_seeded, BatchOutcome, ContrastAlert,
    StreamingConfig, StreamingDcs,
};
pub use topk::{top_k_affinity, top_k_average_degree, top_k_in, TopKOutcome};
pub use workspace::{SharedWorkspace, SolverWorkspace, WorkspaceGuard};

// Re-export the embedding type: it is part of this crate's public API surface
// (DCSGA solutions are embeddings).
pub use dcs_densest::Embedding;

/// Convenience: mine the DCS with respect to **average degree** directly from a pair of
/// graphs (builds the difference graph internally).
///
/// Returns the [`dcsad::DcsadSolution`] together with the difference graph so callers
/// can compute further statistics.
pub fn mine_average_degree_dcs(
    g2: &dcs_graph::SignedGraph,
    g1: &dcs_graph::SignedGraph,
) -> Result<(dcsad::DcsadSolution, dcs_graph::SignedGraph), DcsError> {
    let gd = difference_graph(g2, g1)?;
    let solution = dcsad::DcsGreedy::default().solve(&gd);
    Ok((solution, gd))
}

/// Convenience: mine the DCS with respect to **graph affinity** directly from a pair of
/// graphs (builds the difference graph internally, runs NewSEA on `G_{D+}`).
pub fn mine_affinity_dcs(
    g2: &dcs_graph::SignedGraph,
    g1: &dcs_graph::SignedGraph,
) -> Result<(dcsga::DcsgaSolution, dcs_graph::SignedGraph), DcsError> {
    let gd = difference_graph(g2, g1)?;
    let solution = dcsga::NewSea::default().solve(&gd);
    Ok((solution, gd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    #[test]
    fn top_level_convenience_functions() {
        let g1 = GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (3, 4, 2.0)]);
        let g2 = GraphBuilder::from_edges(5, vec![(0, 1, 3.0), (0, 2, 2.0), (1, 2, 2.0)]);
        let (ad, gd) = mine_average_degree_dcs(&g2, &g1).unwrap();
        assert!(ad.density_difference > 0.0);
        assert_eq!(gd.num_vertices(), 5);
        let (ga, _) = mine_affinity_dcs(&g2, &g1).unwrap();
        assert!(ga.affinity_difference > 0.0);
    }

    #[test]
    fn mismatched_vertex_sets_error() {
        let g1 = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        let g2 = GraphBuilder::from_edges(4, vec![(0, 1, 1.0)]);
        assert!(mine_average_degree_dcs(&g2, &g1).is_err());
        assert!(mine_affinity_dcs(&g2, &g1).is_err());
    }
}

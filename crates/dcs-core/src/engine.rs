//! The unified solver engine: one interface over every contrast solver.
//!
//! Every mining algorithm in this workspace — [`DcsGreedy`] (DCSAD, Algorithm 2),
//! [`NewSea`]/[`SeaCd`] (DCSGA, Algorithms 3/5), the EgoScan baseline and the classical
//! densest-subgraph routines of `dcs-densest` — historically exposed its own ad-hoc
//! `solve*` entry point, so every layer above (top-k peeling, α-sweeps, the mining
//! server's job pool, the CLI, the benches) hard-coded solver dispatch and had no way
//! to bound or interrupt a long mine.
//!
//! This module fixes that with one trait:
//!
//! * [`ContrastSolver`] — `solve_in(&self, gd, cx) -> EngineSolution`: every solver
//!   mines a signed difference graph under a [`SolveContext`];
//! * [`SolveContext`] — carries a cooperative [`CancelToken`], an optional wall-clock
//!   **deadline**, and an optional **work budget** (solver-specific iteration units);
//! * [`EngineSolution`] — the best solution found *so far* plus [`SolveStats`]
//!   telemetry (iterations, candidates examined, Theorem-6 early-exit prunes, wall
//!   time) and a [`Termination`] status: bounded solves never fail, they return the
//!   incumbent with `Deadline` / `Cancelled` / `BudgetExhausted` instead of
//!   `Converged`;
//! * [`MeasureSolver`] — the single place a [`DensityMeasure`] is mapped to a solver,
//!   used by the top-k / α-sweep / streaming drivers and everything above them.
//!
//! Solvers check the context **cooperatively** through a [`WorkMeter`]: one check per
//! coarse work unit (a peel removal, a SEACD shrink round, a local-search sweep, a
//! max-flow round).  A single unit is never cut short, so interruption latency is one
//! unit, not zero — which is exactly what makes best-so-far results always valid.
//!
//! ```
//! use dcs_core::engine::{ContrastSolver, SolveContext, Termination};
//! use dcs_core::dcsad::DcsGreedy;
//! use dcs_graph::GraphBuilder;
//!
//! let gd = GraphBuilder::from_edges(4, vec![(0, 1, 3.0), (1, 2, -1.0)]);
//! let solution = DcsGreedy::default().solve_in(&gd, &SolveContext::unbounded());
//! assert_eq!(solution.stats.termination, Termination::Converged);
//! assert_eq!(solution.subset, vec![0, 1]);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

use crate::dcsad::{DcsGreedy, DcsadSolution};
use crate::dcsga::{DcsgaConfig, DcsgaSolution, NewSea, SeaCd};
use crate::solution::{ContrastReport, DensityMeasure};
use crate::workspace::{SharedWorkspace, WorkspaceGuard};

/// Why a solve stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The solver ran to completion; the result is its final answer.
    Converged,
    /// The wall-clock deadline expired; the result is the best found so far.
    Deadline,
    /// The [`CancelToken`] was cancelled; the result is the best found so far.
    Cancelled,
    /// The work budget was exhausted; the result is the best found so far.
    BudgetExhausted,
}

impl Termination {
    /// Whether the solve ran to completion (the result is not truncated).
    pub fn is_converged(self) -> bool {
        matches!(self, Termination::Converged)
    }

    /// Stable lowercase token, used on the server wire protocol and in bench output.
    pub fn as_str(self) -> &'static str {
        match self {
            Termination::Converged => "converged",
            Termination::Deadline => "deadline",
            Termination::Cancelled => "cancelled",
            Termination::BudgetExhausted => "budget_exhausted",
        }
    }
}

impl std::fmt::Display for Termination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared cooperative cancellation flag.
///
/// Cloning is cheap (an `Arc` bump); cancelling any clone cancels them all.  Solvers
/// observe cancellation at their next work-unit boundary and return best-so-far.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Bounds and control for one solve: cancellation, deadline, work budget.
///
/// Built fluently; the default is fully unbounded:
///
/// ```
/// use std::time::Duration;
/// use dcs_core::engine::{CancelToken, SolveContext};
///
/// let token = CancelToken::new();
/// let cx = SolveContext::unbounded()
///     .with_deadline(Duration::from_millis(250))
///     .with_budget(10_000)
///     .with_cancel(&token);
/// assert!(!cx.is_unbounded());
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolveContext {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    budget: Option<u64>,
    workspace: Option<SharedWorkspace>,
    threads: Option<usize>,
}

/// Reads the process-wide default solver thread count from the
/// `DCS_SOLVER_THREADS` environment variable once (clamped to at least 1;
/// unset, empty or unparsable values mean 1 = sequential).
fn default_solver_threads() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("DCS_SOLVER_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .unwrap_or(1)
            .max(1)
    })
}

impl SolveContext {
    /// A context with no bounds: the solve runs to convergence, exactly like the
    /// pre-engine `solve()` entry points (which are now thin wrappers over this).
    pub fn unbounded() -> Self {
        SolveContext::default()
    }

    /// Bounds the solve by a wall-clock duration from now.
    pub fn with_deadline(self, after: Duration) -> Self {
        self.with_deadline_at(Instant::now() + after)
    }

    /// Bounds the solve by an absolute deadline (useful when queueing time should
    /// count against the job, as in the mining server).
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Attaches a cancellation token (stores a clone; cancel the original to stop the
    /// solve).
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Bounds the solve by a work budget in solver-specific units (peel removals for
    /// DCSAD, coordinate-descent iterations and shrink rounds for DCSGA, local-search
    /// sweeps for EgoScan, max-flow rounds for Goldberg).
    pub fn with_budget(mut self, units: u64) -> Self {
        self.budget = Some(units);
        self
    }

    /// Attaches a [`SharedWorkspace`]: every solve under this context reuses the
    /// workspace's scratch buffers (degree arrays, lazy heaps, removal orders, the
    /// max-flow arena) instead of allocating them.  The workspace never affects
    /// results — only where the scratch memory comes from.
    pub fn with_workspace(mut self, workspace: &SharedWorkspace) -> Self {
        self.workspace = Some(workspace.clone());
        self
    }

    /// Sets the intra-solve parallelism budget: the number of worker threads
    /// the solver kernels (parallel peeling, the KKT/µ_u range scans) may use.
    /// `1` forces the sequential reference paths; higher values are safe on any
    /// machine because every parallel kernel is **bit-identical** to its
    /// sequential counterpart.  `0` restores the default (the
    /// `DCS_SOLVER_THREADS` environment variable, else 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// The effective parallelism budget of this context (≥ 1): the explicit
    /// [`Self::with_threads`] value, else the process-wide `DCS_SOLVER_THREADS`
    /// default, else 1.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(default_solver_threads)
    }

    /// Whether this context carries a shared workspace.
    pub fn has_workspace(&self) -> bool {
        self.workspace.is_some()
    }

    /// A clone of this context that is guaranteed to carry a workspace: drivers that
    /// run many solves under one job (top-k rounds, α-sweep grid points) call this
    /// once so all their solves share scratch buffers even when the caller did not
    /// attach any.
    pub fn ensure_workspace(&self) -> Self {
        if self.workspace.is_some() {
            self.clone()
        } else {
            self.clone().with_workspace(&SharedWorkspace::new())
        }
    }

    /// The scratch workspace for one solve: a lock on the shared workspace when the
    /// context carries one, a transient workspace otherwise.  Leaf solvers hold the
    /// guard for the duration of the solve; drivers must not call this around solver
    /// invocations (see the locking discipline in [`crate::workspace`]).
    pub fn workspace(&self) -> WorkspaceGuard<'_> {
        match &self.workspace {
            Some(shared) => WorkspaceGuard::Shared(shared.lock()),
            None => WorkspaceGuard::Owned(Box::default()),
        }
    }

    /// Whether this context carries no bound at all.
    pub fn is_unbounded(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none() && self.budget.is_none()
    }

    /// The context for a follow-up solve after `used` units of the budget were spent
    /// by earlier phases of the same job (drivers like top-k and the α-sweep run many
    /// solves under one budget).  Deadline and cancel token carry over unchanged.
    pub fn after_work(&self, used: u64) -> Self {
        let mut next = self.clone();
        if let Some(budget) = next.budget {
            next.budget = Some(budget.saturating_sub(used));
        }
        next
    }

    /// Starts metering one solve against this context.
    pub fn meter(&self) -> WorkMeter {
        WorkMeter {
            cancel: self.cancel.clone(),
            deadline: self.deadline,
            budget_left: self.budget,
            started: Instant::now(),
            stats: SolveStats::default(),
            verdict: None,
        }
    }
}

/// Telemetry of one solve (or of one driver phase aggregating several solves).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Work units metered (solver-specific: peel removals, CD iterations + shrink
    /// rounds, local-search sweeps, max-flow rounds).  This is the quantity the
    /// budget bounds; the tick that trips the budget is still recorded, so the
    /// count can exceed the budget by at most one tick's units.
    pub iterations: u64,
    /// Candidate solutions examined (DCSGreedy candidates, SEACD initialisations,
    /// EgoScan seeds, Goldberg certified subgraphs).
    pub candidates: u64,
    /// Candidates skipped by an early-exit bound (the Theorem-6 `µ_u` prune of
    /// NewSEA).
    pub prunes: u64,
    /// Wall time of the solve.
    pub wall: Duration,
    /// Why the solve stopped.
    pub termination: Termination,
}

impl Default for SolveStats {
    fn default() -> Self {
        SolveStats {
            iterations: 0,
            candidates: 0,
            prunes: 0,
            wall: Duration::ZERO,
            termination: Termination::Converged,
        }
    }
}

impl SolveStats {
    /// Folds another solve's stats into this one (drivers aggregate per-round solves).
    /// Wall times add; the first non-converged termination wins.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.iterations += other.iterations;
        self.candidates += other.candidates;
        self.prunes += other.prunes;
        self.wall += other.wall;
        if self.termination.is_converged() {
            self.termination = other.termination;
        }
    }
}

/// Meters one solve against a [`SolveContext`]: counts work, checks the bounds, and
/// produces the final [`SolveStats`].
///
/// Solvers call [`WorkMeter::tick`] once per work unit batch; a `false` return means
/// "stop now, return best-so-far".  The verdict is sticky — once a bound trips, every
/// further check reports stop.
#[derive(Debug)]
pub struct WorkMeter {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    budget_left: Option<u64>,
    started: Instant,
    stats: SolveStats,
    verdict: Option<Termination>,
}

impl WorkMeter {
    /// Records `units` of work and checks every bound.  Returns `true` to keep going,
    /// `false` to stop (best-so-far).
    ///
    /// Once a verdict is set, further ticks stop without recording — solvers that
    /// pre-check before a work unit never inflate the count past the bound.  The
    /// tick that trips the budget is still recorded (post-work callers like the
    /// SEACD shrink meter units that were already performed), so `iterations` can
    /// exceed the budget by at most one tick's units.
    pub fn tick(&mut self, units: u64) -> bool {
        if self.verdict.is_some() {
            return false;
        }
        self.stats.iterations += units;
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                self.verdict = Some(Termination::Cancelled);
                return false;
            }
        }
        if let Some(budget) = &mut self.budget_left {
            if *budget <= units {
                *budget = 0;
                self.verdict = Some(Termination::BudgetExhausted);
                return false;
            }
            *budget -= units;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.verdict = Some(Termination::Deadline);
                return false;
            }
        }
        true
    }

    /// Whether a bound has already tripped (checks without recording work).
    pub fn stopped(&mut self) -> bool {
        if self.verdict.is_some() {
            return true;
        }
        // A zero-unit tick performs every check without consuming budget.
        !self.tick(0)
    }

    /// Records candidates examined.
    pub fn note_candidates(&mut self, n: u64) {
        self.stats.candidates += n;
    }

    /// Records candidates pruned by an early-exit bound.
    pub fn note_prunes(&mut self, n: u64) {
        self.stats.prunes += n;
    }

    /// Finalises the stats: stamps the wall time and the termination status
    /// (`Converged` when no bound tripped).
    pub fn finish(mut self) -> SolveStats {
        self.stats.wall = self.started.elapsed();
        self.stats.termination = self.verdict.unwrap_or(Termination::Converged);
        self.stats
    }
}

/// Solver-specific detail preserved alongside the engine-level solution shape.
#[derive(Debug, Clone)]
pub enum SolverDetail {
    /// No extra detail beyond the subset (EgoScan, peel, Goldberg adapters).
    Subset,
    /// A DCSAD solution (winner candidate, data-dependent ratio, …).
    Dcsad(DcsadSolution),
    /// A DCSGA solution (embedding, smart-initialisation stats).
    Dcsga(DcsgaSolution),
}

/// What every [`ContrastSolver`] returns: the best solution found so far plus
/// telemetry.  Truncated solves (deadline, cancellation, exhausted budget) still
/// return a valid vertex subset — check [`SolveStats::termination`] to know whether
/// it is the converged answer.
#[derive(Debug, Clone)]
pub struct EngineSolution {
    /// The mined vertex set (support set for affinity solutions), sorted ascending.
    pub subset: Vec<VertexId>,
    /// The objective value under the solver's measure (density difference, affinity
    /// difference or total-degree difference).
    pub objective: Weight,
    /// Solver-specific detail (typed DCSAD/DCSGA solutions when available).
    pub detail: SolverDetail,
    /// Telemetry, including the [`Termination`] status.
    pub stats: SolveStats,
}

impl EngineSolution {
    /// Why the solve stopped.
    pub fn termination(&self) -> Termination {
        self.stats.termination
    }

    /// The affinity embedding, for solutions produced by a DCSGA solver.
    pub fn embedding(&self) -> Option<&dcs_densest::Embedding> {
        match &self.detail {
            SolverDetail::Dcsga(solution) => Some(&solution.embedding),
            _ => None,
        }
    }

    /// Full contrast statistics of the solution, evaluated on `gd`.  Affinity
    /// solutions are reported at their embedding, everything else at the subset.
    pub fn report(&self, gd: &SignedGraph) -> ContrastReport {
        self.report_in(gd, &SolveContext::unbounded())
    }

    /// [`Self::report`] under a [`SolveContext`]: when the context carries a
    /// workspace, the report's membership and connectivity scratch comes from it
    /// instead of being allocated — the steady-state reporting path of the streaming
    /// monitor and the serving layer.
    pub fn report_in(&self, gd: &SignedGraph, cx: &SolveContext) -> ContrastReport {
        let mut ws = cx.workspace();
        let crate::workspace::SolverWorkspace {
            marks,
            visited,
            stack,
            ..
        } = &mut *ws;
        match &self.detail {
            SolverDetail::Dcsga(solution) => {
                let mut report =
                    ContrastReport::for_subset_scratch(gd, &self.subset, marks, visited, stack);
                report.affinity_difference = solution.embedding.affinity(gd);
                report
            }
            _ => ContrastReport::for_subset_scratch(gd, &self.subset, marks, visited, stack),
        }
    }
}

/// A contrast-subgraph solver that can be bounded, cancelled and observed through a
/// [`SolveContext`].
///
/// Implementations must return **best-so-far** when a bound trips: the returned
/// subset is always valid for `gd`, and [`SolveStats::termination`] says whether it
/// is the converged answer.
pub trait ContrastSolver {
    /// A short stable name (used in telemetry and bench output).
    fn name(&self) -> &'static str;

    /// Mines the difference graph `gd` under the context `cx`.
    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution;

    /// Mines with a warm-start seed (the support of a previous mine on a
    /// slightly-changed graph).  Solvers without a seeded path ignore the seed.
    fn solve_seeded_in(
        &self,
        gd: &SignedGraph,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> EngineSolution {
        let _ = seed;
        self.solve_in(gd, cx)
    }
}

impl ContrastSolver for DcsGreedy {
    fn name(&self) -> &'static str {
        "dcs-greedy"
    }

    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution {
        self.solve_seeded_in(gd, &[], cx)
    }

    fn solve_seeded_in(
        &self,
        gd: &SignedGraph,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> EngineSolution {
        let (solution, stats) = self.solve_bounded(gd, seed, cx);
        EngineSolution {
            subset: solution.subset.clone(),
            objective: solution.density_difference,
            detail: SolverDetail::Dcsad(solution),
            stats,
        }
    }
}

impl ContrastSolver for NewSea {
    fn name(&self) -> &'static str {
        "newsea"
    }

    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution {
        self.solve_seeded_in(gd, &[], cx)
    }

    fn solve_seeded_in(
        &self,
        gd: &SignedGraph,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> EngineSolution {
        let (solution, stats) = self.solve_bounded(gd, seed, cx);
        dcsga_solution(solution, stats)
    }
}

impl ContrastSolver for SeaCd {
    fn name(&self) -> &'static str {
        "seacd"
    }

    /// The `SEACD+Refine` comparator: one initialisation per vertex of `G_{D+}` with
    /// Algorithm-4 refinement, no smart-initialisation pruning.
    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution {
        let (solution, stats) = self.solve_bounded(gd, cx);
        dcsga_solution(solution, stats)
    }
}

fn dcsga_solution(solution: DcsgaSolution, stats: SolveStats) -> EngineSolution {
    EngineSolution {
        subset: solution.support(),
        objective: solution.affinity_difference,
        detail: SolverDetail::Dcsga(solution),
        stats,
    }
}

/// The greedy peel of `G_D` itself as a [`ContrastSolver`] (the "GD only" comparator
/// of Tables X/XII, and the classical Charikar routine on non-negative inputs).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeelSolver;

impl ContrastSolver for PeelSolver {
    fn name(&self) -> &'static str {
        "greedy-peel"
    }

    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution {
        let mut meter = cx.meter();
        let mut ws = cx.workspace();
        let threads = cx.threads();
        let ws = &mut *ws;
        let (peel, _) = dcs_densest::greedy_peeling_view_auto(
            GraphView::full(gd),
            &mut ws.peel,
            &mut ws.par_peel,
            threads,
            |units| !meter.tick(units),
        );
        meter.note_candidates(1);
        EngineSolution {
            objective: peel.average_degree,
            subset: peel.subset,
            detail: SolverDetail::Subset,
            stats: meter.finish(),
        }
    }
}

/// Goldberg's exact densest subgraph of the positive part `G_{D+}` as a
/// [`ContrastSolver`], evaluated in `G_D` (an exact upper-bound comparator for
/// DCSAD-style mining; accepts signed inputs by construction).
#[derive(Debug, Clone, Copy, Default)]
pub struct GoldbergSolver;

impl ContrastSolver for GoldbergSolver {
    fn name(&self) -> &'static str {
        "goldberg-exact"
    }

    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution {
        let mut meter = cx.meter();
        let mut ws = cx.workspace();
        // `G_{D+}` as a positive-filtered view: no materialised copy, and the flow
        // arena is reused across the binary-search rounds (and across solves when
        // the context carries a shared workspace).
        let (exact, _) = dcs_densest::densest_subgraph_view_until(
            GraphView::full(gd).positive_part(),
            &mut ws.flow,
            |units| !meter.tick(units),
        );
        meter.note_candidates(1);
        EngineSolution {
            objective: gd.average_degree(&exact.subset),
            subset: exact.subset,
            detail: SolverDetail::Subset,
            stats: meter.finish(),
        }
    }
}

/// The single place a [`DensityMeasure`] picks a solver.  Every measure-dispatched
/// layer (top-k, α-sweep, streaming re-mines, the server, the CLI) goes through
/// this enum instead of matching on the measure itself.
#[derive(Debug, Clone)]
pub enum MeasureSolver {
    /// DCSAD: [`DcsGreedy`] (average degree; total degree falls back here too).
    AverageDegree(DcsGreedy),
    /// DCSGA: [`NewSea`] (graph affinity).
    Affinity(NewSea),
}

impl MeasureSolver {
    /// The solver for a measure with default configuration.
    pub fn for_measure(measure: DensityMeasure) -> Self {
        Self::with_config(measure, DcsgaConfig::default())
    }

    /// The solver for a measure, with an explicit DCSGA configuration (ignored by the
    /// average-degree solver, which has none).
    pub fn with_config(measure: DensityMeasure, config: DcsgaConfig) -> Self {
        match measure {
            DensityMeasure::GraphAffinity => MeasureSolver::Affinity(NewSea::new(config)),
            DensityMeasure::AverageDegree | DensityMeasure::TotalDegree => {
                MeasureSolver::AverageDegree(DcsGreedy::default())
            }
        }
    }

    /// The measure this solver mines under.
    pub fn measure(&self) -> DensityMeasure {
        match self {
            MeasureSolver::AverageDegree(_) => DensityMeasure::AverageDegree,
            MeasureSolver::Affinity(_) => DensityMeasure::GraphAffinity,
        }
    }

    /// The working graph a peeling driver should expose through per-round views.
    ///
    /// Both measures now borrow `G_D` outright: average-degree mining always worked
    /// on the signed graph, and affinity mining applies Theorem 5's restriction to
    /// `G_{D+}` as a positive-filtered view inside [`crate::dcsga::NewSea`] — the
    /// positive part is never materialised, so affinity jobs never copy the CSR.
    /// The `Cow` signature is kept for API stability.
    pub fn prepare_working_graph<'a>(
        &self,
        gd: &'a SignedGraph,
    ) -> std::borrow::Cow<'a, SignedGraph> {
        std::borrow::Cow::Borrowed(gd)
    }

    /// Solves on a masked view of a working graph produced by
    /// [`Self::prepare_working_graph`] — the peeling drivers' per-round entry point.
    /// The view replaces the old per-round `remove_vertices_in_place` CSR rewrite:
    /// mined vertices are masked out in O(1) each and the CSR arrays never move.
    pub fn solve_view_seeded_in(
        &self,
        view: GraphView<'_>,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> EngineSolution {
        match self {
            MeasureSolver::AverageDegree(solver) => {
                let (solution, stats) = solver.solve_view_bounded(view, seed, cx);
                EngineSolution {
                    subset: solution.subset.clone(),
                    objective: solution.density_difference,
                    detail: SolverDetail::Dcsad(solution),
                    stats,
                }
            }
            MeasureSolver::Affinity(solver) => {
                let (solution, stats) = solver.solve_on_view_bounded(view, seed, cx);
                dcsga_solution(solution, stats)
            }
        }
    }

    /// Whether a peeling driver has any contrast left to mine on the view.
    ///
    /// This is a short-circuiting scan (it stops at the first surviving qualifying
    /// edge, i.e. essentially O(1) while contrast remains); the terminating round
    /// pays one full O(n + m) pass, which is still cheaper than the wasted solve it
    /// avoids, and cheaper than maintaining a surviving-edge counter would be — that
    /// would need a per-removal adjacency walk, exactly the per-round cost the
    /// masked views eliminate.
    pub fn view_exhausted(&self, view: GraphView<'_>) -> bool {
        // Both measures mine positive contrast: the working graph is the signed
        // `G_D` for either, and an all-non-positive remainder is exhausted.
        !view.has_positive_edge()
    }
}

impl ContrastSolver for MeasureSolver {
    fn name(&self) -> &'static str {
        match self {
            MeasureSolver::AverageDegree(solver) => solver.name(),
            MeasureSolver::Affinity(solver) => solver.name(),
        }
    }

    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution {
        self.solve_seeded_in(gd, &[], cx)
    }

    fn solve_seeded_in(
        &self,
        gd: &SignedGraph,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> EngineSolution {
        match self {
            MeasureSolver::AverageDegree(solver) => solver.solve_seeded_in(gd, seed, cx),
            MeasureSolver::Affinity(solver) => solver.solve_seeded_in(gd, seed, cx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn triangle_and_pair() -> SignedGraph {
        GraphBuilder::from_edges(
            6,
            vec![
                (0, 1, 4.0),
                (0, 2, 4.0),
                (1, 2, 4.0),
                (3, 4, 1.0),
                (2, 5, -2.0),
            ],
        )
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn meter_enforces_budget_and_cancellation() {
        let cx = SolveContext::unbounded().with_budget(3);
        let mut meter = cx.meter();
        assert!(meter.tick(1));
        assert!(meter.tick(1));
        assert!(!meter.tick(1)); // third unit exhausts the budget
        assert!(!meter.tick(1)); // sticky, and no longer recorded
        let stats = meter.finish();
        assert_eq!(stats.termination, Termination::BudgetExhausted);
        assert_eq!(stats.iterations, 3);

        let token = CancelToken::new();
        let cx = SolveContext::unbounded().with_cancel(&token);
        let mut meter = cx.meter();
        assert!(meter.tick(5));
        token.cancel();
        assert!(!meter.tick(1));
        assert_eq!(meter.finish().termination, Termination::Cancelled);
    }

    #[test]
    fn expired_deadline_stops_on_first_tick() {
        let cx = SolveContext::unbounded().with_deadline(Duration::ZERO);
        let mut meter = cx.meter();
        assert!(!meter.tick(1));
        assert_eq!(meter.finish().termination, Termination::Deadline);
    }

    #[test]
    fn unbounded_engine_matches_direct_solvers() {
        let gd = triangle_and_pair();
        let cx = SolveContext::unbounded();

        let direct = DcsGreedy::default().solve(&gd);
        let engine = DcsGreedy::default().solve_in(&gd, &cx);
        assert_eq!(engine.subset, direct.subset);
        assert_eq!(engine.objective, direct.density_difference);
        assert!(engine.termination().is_converged());

        let direct = NewSea::default().solve(&gd);
        let engine = NewSea::default().solve_in(&gd, &cx);
        assert_eq!(engine.subset, direct.support());
        assert!((engine.objective - direct.affinity_difference).abs() < 1e-12);
        assert!(engine.embedding().is_some());

        let peel = PeelSolver.solve_in(&gd, &cx);
        assert_eq!(peel.subset, dcs_densest::greedy_peeling(&gd).subset);

        let exact = GoldbergSolver.solve_in(&gd, &cx);
        assert_eq!(exact.subset, vec![0, 1, 2]);
        assert!((exact.objective - 8.0).abs() < 1e-6);
    }

    #[test]
    fn cancelled_solve_returns_valid_best_so_far() {
        let gd = triangle_and_pair();
        let token = CancelToken::new();
        token.cancel();
        let cx = SolveContext::unbounded().with_cancel(&token);
        for solver in [
            &MeasureSolver::for_measure(DensityMeasure::AverageDegree) as &dyn ContrastSolver,
            &MeasureSolver::for_measure(DensityMeasure::GraphAffinity),
            &PeelSolver,
            &GoldbergSolver,
        ] {
            let solution = solver.solve_in(&gd, &cx);
            assert_eq!(
                solution.stats.termination,
                Termination::Cancelled,
                "{} did not observe the pre-cancelled token",
                solver.name()
            );
            assert!(solution
                .subset
                .iter()
                .all(|&v| (v as usize) < gd.num_vertices()));
        }
    }

    #[test]
    fn measure_solver_dispatch() {
        let degree = MeasureSolver::for_measure(DensityMeasure::AverageDegree);
        assert_eq!(degree.measure(), DensityMeasure::AverageDegree);
        let total = MeasureSolver::for_measure(DensityMeasure::TotalDegree);
        assert_eq!(total.measure(), DensityMeasure::AverageDegree);
        let affinity = MeasureSolver::for_measure(DensityMeasure::GraphAffinity);
        assert_eq!(affinity.measure(), DensityMeasure::GraphAffinity);

        let gd = triangle_and_pair();
        // Both measures borrow G_D outright: no working-graph copy — the affinity
        // solver positive-filters through the view itself.
        let working = affinity.prepare_working_graph(&gd);
        assert!(matches!(working, std::borrow::Cow::Borrowed(_)));
        let view = GraphView::full(&working);
        assert!(!affinity.view_exhausted(view));
        let solution = affinity.solve_view_seeded_in(view, &[], &SolveContext::unbounded());
        assert_eq!(solution.subset, vec![0, 1, 2]);
        let working = degree.prepare_working_graph(&gd);
        assert!(matches!(working, std::borrow::Cow::Borrowed(_)));
        // A graph whose only remaining edges are negative is exhausted for both.
        let spent = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        assert!(affinity.view_exhausted(GraphView::full(&spent)));
        assert!(degree.view_exhausted(GraphView::full(&spent)));
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let gd = triangle_and_pair();
        let shared = crate::workspace::SharedWorkspace::new();
        let warm_cx = SolveContext::unbounded().with_workspace(&shared);
        assert!(warm_cx.has_workspace());
        assert!(warm_cx.is_unbounded(), "a workspace is not a bound");
        let cold_cx = SolveContext::unbounded();
        for solver in [
            &MeasureSolver::for_measure(DensityMeasure::AverageDegree) as &dyn ContrastSolver,
            &MeasureSolver::for_measure(DensityMeasure::GraphAffinity),
            &PeelSolver,
            &GoldbergSolver,
        ] {
            let cold = solver.solve_in(&gd, &cold_cx);
            // Repeated warm solves over one workspace: identical answers.
            for _ in 0..3 {
                let warm = solver.solve_in(&gd, &warm_cx);
                assert_eq!(warm.subset, cold.subset, "{} diverged", solver.name());
                assert_eq!(warm.objective, cold.objective);
            }
        }
        // ensure_workspace attaches one exactly when missing.
        assert!(cold_cx.ensure_workspace().has_workspace());
        let kept = warm_cx.ensure_workspace();
        assert!(kept.has_workspace());
    }

    #[test]
    fn after_work_reduces_only_the_budget() {
        let cx = SolveContext::unbounded().with_budget(100);
        let next = cx.after_work(60);
        let mut meter = next.meter();
        assert!(meter.tick(30));
        assert!(!meter.tick(30)); // 40 − 30 − 30 < 0
                                  // An unbounded context is unaffected.
        assert!(SolveContext::unbounded()
            .after_work(1_000_000)
            .is_unbounded());
    }

    #[test]
    fn stats_absorb_aggregates_and_keeps_first_failure() {
        let mut total = SolveStats::default();
        let converged_first = SolveStats {
            iterations: 2,
            candidates: 1,
            wall: Duration::from_millis(3),
            ..Default::default()
        };
        total.absorb(&converged_first);
        // Converged rounds leave the aggregate converged.
        assert_eq!(total.termination, Termination::Converged);
        assert_eq!(total.wall, Duration::from_millis(3));

        let truncated = SolveStats {
            iterations: 10,
            prunes: 4,
            wall: Duration::from_millis(7),
            termination: Termination::Deadline,
            ..Default::default()
        };
        total.absorb(&truncated);
        assert_eq!(total.termination, Termination::Deadline);

        // A later failure does not displace the first one, and a later
        // converged round does not reset it; counters and wall time keep
        // adding throughout.
        let cancelled = SolveStats {
            iterations: 3,
            wall: Duration::from_millis(5),
            termination: Termination::Cancelled,
            ..Default::default()
        };
        total.absorb(&cancelled);
        assert_eq!(total.termination, Termination::Deadline);
        let converged = SolveStats {
            iterations: 5,
            wall: Duration::from_millis(1),
            ..Default::default()
        };
        total.absorb(&converged);
        assert_eq!(total.iterations, 20);
        assert_eq!(total.candidates, 1);
        assert_eq!(total.prunes, 4);
        assert_eq!(total.wall, Duration::from_millis(16));
        assert_eq!(total.termination, Termination::Deadline);
    }
}

//! The DCSGreedy algorithm (Algorithm 2 of the paper).
//!
//! DCSGreedy generates several candidate solutions and keeps the best:
//!
//! 1. the endpoints of the maximum-weight edge of `G_D` — a `1/(n−1)`-optimal certificate
//!    (Section IV-B, case 2),
//! 2. the greedy peel of `G_D` (Algorithm 1 run on the signed graph),
//! 3. the greedy peel of `G_{D+}` (Algorithm 1 run on the positive part), which is a
//!    2-approximation of the densest subgraph of `G_{D+}` and therefore yields the
//!    data-dependent ratio `β = 2·ρ_{D+}(S₂)/ρ_D(S)` of Theorem 2.
//!
//! If the winning candidate is disconnected in `G_D`, it is replaced by its best
//! connected component (justified by Property 1).

use dcs_densest::charikar::greedy_peeling;
use dcs_densest::greedy_peeling_view_auto;
use dcs_graph::{components, GraphView, SignedGraph, VertexId, Weight};

use crate::engine::{SolveContext, SolveStats};

/// Which of the DCSGreedy candidates produced the final answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// The two endpoints of the maximum-weight edge of `G_D`.
    MaxWeightEdge,
    /// The greedy peel of the full signed difference graph `G_D`.
    GreedyOnGd,
    /// The greedy peel of the positive part `G_{D+}`.
    GreedyOnGdPlus,
    /// A single vertex (only when `G_D` has no positively weighted edge).
    SingleVertex,
    /// The warm-start seed passed to [`DcsGreedy::solve_seeded`] (the support of a
    /// previous mine on a slightly different graph).
    WarmStart,
}

/// Solution of the DCSAD problem returned by [`DcsGreedy`].
#[derive(Debug, Clone, PartialEq)]
pub struct DcsadSolution {
    /// The mined vertex set `S`, sorted ascending.
    pub subset: Vec<VertexId>,
    /// The density difference `ρ_D(S) = W_D(S)/|S|`.
    pub density_difference: Weight,
    /// The data-dependent approximation ratio `β = 2·ρ_{D+}(S₂)/ρ_D(S)` of Theorem 2
    /// (`1.0` when the difference graph has no positive edge — the solution is exactly
    /// optimal in that case).
    pub data_dependent_ratio: Weight,
    /// Which candidate won.
    pub winner: CandidateKind,
    /// Density of the greedy peel of `G_{D+}` measured in `G_{D+}` — the quantity
    /// `ρ_{D+}(S₂)` entering the data-dependent ratio.
    pub rho_gd_plus: Weight,
    /// Whether the returned subgraph needed to be replaced by one of its connected
    /// components (Algorithm 2, line 9).
    pub refined_to_component: bool,
}

/// The DCSGreedy solver (Algorithm 2).  Stateless apart from configuration; the default
/// configuration follows the paper exactly.
#[derive(Debug, Clone, Default)]
pub struct DcsGreedy {
    _private: (),
}

impl DcsGreedy {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs DCSGreedy on a difference graph `G_D` (any signed graph is accepted).
    pub fn solve(&self, gd: &SignedGraph) -> DcsadSolution {
        self.solve_seeded(gd, &[])
    }

    /// Runs DCSGreedy with a **warm-start seed**: the seed subset (typically the
    /// support of the previous mine on a slightly-changed graph) competes as an
    /// extra candidate, so the returned contrast is never worse than re-evaluating
    /// the previous solution on the current graph.  Out-of-range seed vertices are
    /// dropped; an empty (or fully dropped) seed reduces to [`Self::solve`].
    pub fn solve_seeded(&self, gd: &SignedGraph, seed: &[VertexId]) -> DcsadSolution {
        self.solve_bounded(gd, seed, &SolveContext::unbounded()).0
    }

    /// [`Self::solve_seeded`] under a [`SolveContext`]: the candidate peels check the
    /// context's cancellation token / deadline / budget once per vertex removal and
    /// return best-so-far when a bound trips.
    ///
    /// The returned subset is always valid; on a non-converged termination the
    /// data-dependent ratio of Theorem 2 is not a certificate (the `G_{D+}` peel may
    /// have been truncated) — check [`SolveStats::termination`] before trusting it.
    pub fn solve_bounded(
        &self,
        gd: &SignedGraph,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> (DcsadSolution, SolveStats) {
        self.solve_view_bounded(GraphView::full(gd), seed, cx)
    }

    /// [`Self::solve_bounded`] on a masked [`GraphView`]: mines the alive-induced
    /// difference graph without materialising it — the per-round entry point of the
    /// top-k driver, which masks out previously mined subgraphs instead of rewriting
    /// the CSR.  Scratch state (peel heaps, degree arrays) comes from the context's
    /// [`crate::workspace::SolverWorkspace`] and is reused across calls.
    ///
    /// The view must not be positive-filtered (candidates are evaluated in the
    /// signed graph); `G_{D+}` is reached internally through
    /// [`GraphView::positive_part`], so it is never materialised either.
    pub fn solve_view_bounded(
        &self,
        view: GraphView<'_>,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> (DcsadSolution, SolveStats) {
        debug_assert!(
            !view.is_positive_only(),
            "solve_view_bounded mines the signed difference graph"
        );
        let gd = view.graph();
        let n = gd.num_vertices();
        assert!(
            view.alive_count() > 0,
            "the difference graph must have at least one (alive) vertex"
        );
        let mut meter = cx.meter();
        let threads = cx.threads();
        let mut ws = cx.workspace();
        let crate::workspace::SolverWorkspace {
            peel: peel_ws,
            par_peel: par_ws,
            marks,
            visited,
            stack,
            ..
        } = &mut *ws;

        // Case 1: no positive edges — any single alive vertex is optimal (density 0).
        let max_edge = view.max_weight_edge();
        let has_positive = matches!(max_edge, Some((_, _, w)) if w > 0.0);
        if !has_positive {
            return (
                DcsadSolution {
                    subset: vec![view.first_alive().expect("alive vertex exists")],
                    density_difference: 0.0,
                    data_dependent_ratio: 1.0,
                    winner: CandidateKind::SingleVertex,
                    rho_gd_plus: 0.0,
                    refined_to_component: false,
                },
                meter.finish(),
            );
        }
        let (eu, ev, _) = max_edge.expect("checked above");

        // Candidate A: the endpoints of the maximum weight edge.
        let edge_candidate: Vec<VertexId> = {
            let mut s = vec![eu, ev];
            s.sort_unstable();
            s
        };
        meter.note_candidates(1);

        // Candidate B: greedy peel of G_D (interruptible; best prefix so far).
        let s1 = {
            let (peel, _) = greedy_peeling_view_auto(view, peel_ws, par_ws, threads, |units| {
                !meter.tick(units)
            });
            meter.note_candidates(1);
            peel.subset
        };

        // Candidate C: greedy peel of G_{D+} (a positive-filtered view — never
        // materialised); skipped entirely once a bound tripped.
        let (s2, rho_gd_plus) = if meter.stopped() {
            (Vec::new(), 0.0)
        } else {
            let (peel_plus, _) =
                greedy_peeling_view_auto(view.positive_part(), peel_ws, par_ws, threads, |units| {
                    !meter.tick(units)
                });
            meter.note_candidates(1);
            (peel_plus.subset, peel_plus.average_degree)
        };

        // Candidate D (warm start): the seed support from a previous mine.  Seeds
        // from a slightly different (or less-masked) graph may reference dead
        // vertices; they are dropped.
        let seed_candidate: Vec<VertexId> = {
            let mut s: Vec<VertexId> = seed
                .iter()
                .copied()
                .filter(|&u| (u as usize) < n && view.is_alive(u))
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        if !seed_candidate.is_empty() {
            meter.note_candidates(1);
        }

        // Pick the candidate with the best density *in G_D* (evaluated through the
        // reused membership scratch; the winner is cloned exactly once).
        let mut eval = |cand: &[VertexId]| -> Weight {
            if cand.is_empty() {
                return 0.0;
            }
            marks.reset_universe(n);
            marks.insert_all(cand);
            gd.total_degree_marked(marks) / cand.len() as Weight
        };
        let mut best_density = eval(&edge_candidate);
        let mut winner = CandidateKind::MaxWeightEdge;
        let mut best_ref: &Vec<VertexId> = &edge_candidate;
        for (cand, kind) in [
            (&s1, CandidateKind::GreedyOnGd),
            (&s2, CandidateKind::GreedyOnGdPlus),
            (&seed_candidate, CandidateKind::WarmStart),
        ] {
            if cand.is_empty() {
                continue;
            }
            let density = eval(cand);
            if density > best_density {
                best_density = density;
                best_ref = cand;
                winner = kind;
            }
        }
        let mut best_subset = best_ref.clone();

        // Refine to the best connected component if necessary (Property 1 / line 9).
        // The common (connected) case is a scratch-buffer BFS; only a genuinely
        // disconnected winner pays for the full component labelling.
        let mut refined_to_component = false;
        marks.reset_universe(n);
        marks.insert_all(&best_subset);
        if !components::is_connected_scratch(gd, marks, visited, stack) {
            let cc = components::connected_components_of(gd, &best_subset);
            debug_assert!(cc.num_components > 1);
            refined_to_component = true;
            let mut best_cc: Option<(Vec<VertexId>, Weight)> = None;
            for group in cc.groups() {
                let density = gd.average_degree(&group);
                match &best_cc {
                    None => best_cc = Some((group, density)),
                    Some((_, d)) if density > *d => best_cc = Some((group, density)),
                    _ => {}
                }
            }
            let (subset, density) = best_cc.expect("at least one component");
            best_subset = subset;
            best_density = density;
        }
        best_subset.sort_unstable();

        // Data-dependent ratio of Theorem 2.
        let data_dependent_ratio = if best_density > 0.0 {
            2.0 * rho_gd_plus / best_density
        } else {
            Weight::INFINITY
        };

        (
            DcsadSolution {
                subset: best_subset,
                density_difference: best_density,
                data_dependent_ratio,
                winner,
                rho_gd_plus,
                refined_to_component,
            },
            meter.finish(),
        )
    }

    /// Runs only the greedy peel of `G_D` and evaluates it in `G_D` (the "GD only"
    /// comparator of Tables X and XII); the result is refined to its best connected
    /// component like the full algorithm.
    pub fn solve_gd_only(&self, gd: &SignedGraph) -> DcsadSolution {
        self.solve_peel_variant(gd, gd)
    }

    /// Runs only the greedy peel of `G_{D+}` and evaluates it in `G_D` (the "GD+ only"
    /// comparator of Tables X and XII).
    pub fn solve_gd_plus_only(&self, gd: &SignedGraph) -> DcsadSolution {
        let gd_plus = gd.positive_part();
        self.solve_peel_variant(gd, &gd_plus)
    }

    fn solve_peel_variant(&self, gd: &SignedGraph, peel_on: &SignedGraph) -> DcsadSolution {
        let peel = greedy_peeling(peel_on);
        let mut subset = peel.subset;
        if subset.is_empty() {
            subset.push(0);
        }
        let cc = components::connected_components_of(gd, &subset);
        let mut refined = false;
        if cc.num_components > 1 {
            refined = true;
            subset = cc
                .groups()
                .into_iter()
                .max_by(|a, b| {
                    gd.average_degree(a)
                        .partial_cmp(&gd.average_degree(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one component");
        }
        subset.sort_unstable();
        let density = gd.average_degree(&subset);
        DcsadSolution {
            density_difference: density,
            data_dependent_ratio: Weight::NAN,
            winner: if std::ptr::eq(gd, peel_on) {
                CandidateKind::GreedyOnGd
            } else {
                CandidateKind::GreedyOnGdPlus
            },
            rho_gd_plus: Weight::NAN,
            refined_to_component: refined,
            subset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// Brute-force DCSAD optimum for tiny graphs.
    fn brute_force(gd: &SignedGraph) -> (Vec<VertexId>, Weight) {
        let n = gd.num_vertices();
        // u64 masks: `1 << n` / `1 << v` on a u32 silently overflows for n >= 32.
        debug_assert!(n < 64, "brute-force subset masks are u64");
        assert!(n <= 16, "exponential brute force is for tiny graphs only");
        let mut best: (Vec<VertexId>, Weight) = (vec![0], 0.0);
        for mask in 1u64..(1u64 << n) {
            let subset: Vec<VertexId> =
                (0..n as u32).filter(|&v| mask & (1u64 << v) != 0).collect();
            let d = gd.average_degree(&subset);
            if d > best.1 {
                best = (subset, d);
            }
        }
        best
    }

    fn fig1_gd() -> SignedGraph {
        GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 1.0),
                (0, 3, -2.0),
                (2, 3, 3.0),
                (2, 4, -1.0),
                (3, 4, 2.0),
            ],
        )
    }

    #[test]
    fn fig1_example() {
        let gd = fig1_gd();
        let sol = DcsGreedy::new().solve(&gd);
        let (brute_set, brute_density) = brute_force(&gd);
        // On this tiny instance the greedy is exact.
        assert_eq!(sol.subset, brute_set);
        assert!((sol.density_difference - brute_density).abs() < 1e-9);
        assert!(sol.data_dependent_ratio >= 1.0 - 1e-9);
        assert!(dcs_graph::components::is_connected(&gd, &sol.subset));
    }

    #[test]
    fn no_positive_edges() {
        let gd = GraphBuilder::from_edges(4, vec![(0, 1, -1.0), (1, 2, -3.0)]);
        let sol = DcsGreedy::new().solve(&gd);
        assert_eq!(sol.subset.len(), 1);
        assert_eq!(sol.density_difference, 0.0);
        assert_eq!(sol.winner, CandidateKind::SingleVertex);
        assert_eq!(sol.data_dependent_ratio, 1.0);
    }

    #[test]
    fn single_heavy_edge_beats_noisy_peel() {
        // One very heavy positive edge and a big mildly positive blob: the heavy edge has
        // higher average degree.
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 1, 100.0);
        for u in 2..8u32 {
            for v in (u + 1)..8u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        let gd = b.build();
        let sol = DcsGreedy::new().solve(&gd);
        assert_eq!(sol.subset, vec![0, 1]);
        assert!((sol.density_difference - 100.0).abs() < 1e-9);
    }

    #[test]
    fn negative_bridge_forces_component_refinement() {
        // Two positive triangles joined only by a strongly negative edge: the raw peel of
        // G_D+ returns both triangles (disconnected in G_D+ but also in the induced
        // candidate), and the refinement keeps exactly one triangle.
        let gd = GraphBuilder::from_edges(
            6,
            vec![
                (0, 1, 2.0),
                (1, 2, 2.0),
                (0, 2, 2.0),
                (3, 4, 2.0),
                (4, 5, 2.0),
                (3, 5, 2.0),
            ],
        );
        let sol = DcsGreedy::new().solve(&gd);
        assert!(dcs_graph::components::is_connected(&gd, &sol.subset));
        assert_eq!(sol.subset.len(), 3);
        assert!((sol.density_difference - 4.0).abs() < 1e-9);
        assert!(sol.refined_to_component);
    }

    #[test]
    fn greedy_never_beats_brute_force_but_close_on_small_graphs() {
        // Deterministic pseudo-random small signed graphs; DCSGreedy must stay within its
        // data-dependent ratio of the optimum and never exceed it.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (u32::MAX as f64 / 2.0) - 1.0
        };
        for case in 0..20 {
            let n = 6 + (case % 5);
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    let r = next();
                    if r.abs() > 0.3 {
                        b.add_edge(u, v, (r * 5.0 * 100.0).round() / 100.0);
                    }
                }
            }
            let gd = b.build();
            let sol = DcsGreedy::new().solve(&gd);
            let (_, opt) = brute_force(&gd);
            assert!(sol.density_difference <= opt + 1e-9);
            if opt > 0.0 && sol.density_difference > 0.0 {
                let achieved_ratio = opt / sol.density_difference;
                assert!(
                    achieved_ratio <= sol.data_dependent_ratio + 1e-9,
                    "achieved ratio {achieved_ratio} vs certified {}",
                    sol.data_dependent_ratio
                );
            }
        }
    }

    #[test]
    fn seeded_solve_never_loses_to_its_seed() {
        let gd = fig1_gd();
        let cold = DcsGreedy::new().solve(&gd);
        // Any seed: the result is at least as dense as the seed itself (the seed
        // competes as a candidate and refinement never decreases density), and
        // never worse than the cold solve.
        for seed in [vec![2, 3], vec![0, 1, 2, 3, 4], vec![1, 4], vec![3, 99]] {
            let warm = DcsGreedy::new().solve_seeded(&gd, &seed);
            let in_range: Vec<_> = seed.iter().copied().filter(|&v| v < 5).collect();
            assert!(warm.density_difference >= gd.average_degree(&in_range) - 1e-9);
            assert!(warm.density_difference >= cold.density_difference - 1e-9);
        }
        // An empty seed is exactly the cold solve.
        let empty = DcsGreedy::new().solve_seeded(&gd, &[]);
        assert_eq!(empty.subset, cold.subset);
        assert_eq!(empty.winner, cold.winner);
    }

    #[test]
    fn gd_only_and_gd_plus_only_variants() {
        let gd = fig1_gd();
        let full = DcsGreedy::new().solve(&gd);
        let gd_only = DcsGreedy::new().solve_gd_only(&gd);
        let plus_only = DcsGreedy::new().solve_gd_plus_only(&gd);
        assert!(gd_only.density_difference <= full.density_difference + 1e-9);
        assert!(plus_only.density_difference <= full.density_difference + 1e-9);
        assert!(dcs_graph::components::is_connected(&gd, &gd_only.subset));
        assert!(dcs_graph::components::is_connected(&gd, &plus_only.subset));
    }

    #[test]
    fn hardness_reduction_instance() {
        // The reduction of Theorem 1: G (unweighted) has a max clique of size k ⇒ the
        // DCSAD optimum of the constructed (G1, G2) pair is k − 1.  Build a small G with
        // max clique {0,1,2,3} (k=4) and check DCSGreedy reaches 3 here (it is not
        // guaranteed in general, but on this easy instance it is).
        let mut g_edges = vec![];
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                g_edges.push((u, v));
            }
        }
        g_edges.push((3, 4));
        g_edges.push((4, 5));
        let n = 6usize;
        // G2 = G with unit weights; G1 = complement with weight |E|+1.
        let m = g_edges.len() as f64;
        let mut b2 = GraphBuilder::new(n);
        for &(u, v) in &g_edges {
            b2.add_edge(u, v, 1.0);
        }
        let g2 = b2.build();
        let mut b1 = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if !g_edges.contains(&(u, v)) {
                    b1.add_edge(u, v, m + 1.0);
                }
            }
        }
        let g1 = b1.build();
        let gd = crate::difference_graph(&g2, &g1).unwrap();
        let sol = DcsGreedy::new().solve(&gd);
        assert!((sol.density_difference - 3.0).abs() < 1e-9);
        assert_eq!(sol.subset, vec![0, 1, 2, 3]);
    }
}

//! DCS with respect to **average degree** (DCSAD, Section IV of the paper).
//!
//! The optimisation problem is `max_{S ⊆ V} ρ_D(S) = W_D(S)/|S|` on the signed
//! difference graph `G_D`.  Theorem 1 shows the problem is NP-hard and Corollary 1 shows
//! it cannot be approximated within `O(n^{1-ε})`; the paper therefore settles for the
//! `O(n)`-approximate [`DcsGreedy`] (Algorithm 2), which in practice also comes with the
//! much stronger data-dependent ratio of Theorem 2.

mod greedy;

pub use greedy::{CandidateKind, DcsGreedy, DcsadSolution};

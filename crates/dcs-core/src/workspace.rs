//! Reusable solver scratch state, carried through [`crate::engine::SolveContext`].
//!
//! Every solve used to allocate its working buffers from scratch: degree arrays and
//! a fresh lazy heap per greedy peel, a whole flow network per Goldberg binary-search
//! round, smart-initialisation order vectors per NewSEA sweep, and `FxHashMap`-backed
//! embeddings per SEACD shrink, expansion and refinement stage.  For a one-off batch
//! mine that is noise; for the steady-state paths — the streaming monitor's cadence
//! re-mines, the top-k driver's per-round solves, the α-sweep's grid points, the
//! mining server's back-to-back jobs — it is the dominant allocation source.
//!
//! A [`SolverWorkspace`] owns all of that scratch state once.  It is carried as a
//! [`SharedWorkspace`] (an `Arc<Mutex<_>>`) inside the [`crate::engine::SolveContext`],
//! so the `ContrastSolver::solve_in(&self, gd, cx)` signature is unchanged and every
//! layer that already threads a context through — drivers, the server's job pool, the
//! CLI — gets buffer reuse for free.  Solvers lock the workspace for the duration of
//! one solve; a context without a workspace simply builds a transient one (exactly
//! the pre-workspace behaviour).
//!
//! Locking discipline: **only leaf solvers lock** (DCSGreedy, NewSEA/SEACD, the peel
//! and Goldberg adapters).  Drivers (top-k, α-sweep, streaming) never hold the lock
//! across a solver call, so the mutex is uncontended and never re-entered.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use dcs_densest::{FlowNetwork, ParallelPeelWorkspace, PeelWorkspace};
use dcs_graph::{VertexId, VertexSubset, Weight};

use crate::dcsga::DcsgaScratch;

/// The reusable scratch state of one solver thread.
///
/// All fields are buffers: their *contents* carry no meaning between solves, only
/// their capacity.  Reusing a workspace therefore never changes results — property
/// tests assert workspace-reusing solves are identical to fresh-workspace solves.
#[derive(Debug)]
pub struct SolverWorkspace {
    /// Greedy-peel scratch (lazy heap, degree/version/alive arrays, removal order).
    pub peel: PeelWorkspace,
    /// Parallel-peel scratch (shared atomics, per-range scan slots, dirty heap)
    /// used when the context carries a parallelism budget above 1.
    pub par_peel: ParallelPeelWorkspace,
    /// Max-flow arena of the Goldberg exact solver.
    pub flow: FlowNetwork,
    /// NewSEA smart-initialisation order `(vertex, µ_u)`, sorted descending.
    pub init_order: Vec<(VertexId, Weight)>,
    /// Per-vertex maximum incident edge weight (NewSEA's `w_u` bound input).
    pub max_incident: Vec<Weight>,
    /// Membership scratch for candidate evaluation and report metrics.
    pub marks: VertexSubset,
    /// Visited scratch of the connectivity checks.
    pub visited: VertexSubset,
    /// Traversal stack of the connectivity checks.
    pub stack: Vec<VertexId>,
    /// Dense DCSGA scratch: the embedding arena of the SEACD / refinement / NewSEA
    /// kernels, their list buffers, and the core-number scratch of the `µ_u` bound.
    pub dcsga: DcsgaScratch,
}

impl Default for SolverWorkspace {
    fn default() -> Self {
        SolverWorkspace {
            peel: PeelWorkspace::new(),
            par_peel: ParallelPeelWorkspace::new(),
            flow: FlowNetwork::new(0),
            init_order: Vec::new(),
            max_incident: Vec::new(),
            marks: VertexSubset::new(0),
            visited: VertexSubset::new(0),
            stack: Vec::new(),
            dcsga: DcsgaScratch::default(),
        }
    }
}

impl SolverWorkspace {
    /// A fresh workspace; buffers grow on first use.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }
}

/// A cloneable handle to a [`SolverWorkspace`] shared between solves (and, in the
/// mining server, owned by one worker thread across jobs).
///
/// Cloning is an `Arc` bump; all clones lock the same workspace.  Lock poisoning is
/// ignored (the buffers carry no cross-solve invariants, so a solve that panicked
/// mid-way leaves nothing to protect).
#[derive(Clone, Default)]
pub struct SharedWorkspace {
    inner: Arc<Mutex<SolverWorkspace>>,
}

impl SharedWorkspace {
    /// A handle to a fresh workspace.
    pub fn new() -> Self {
        SharedWorkspace::default()
    }

    /// Locks the workspace for one solve.
    pub fn lock(&self) -> MutexGuard<'_, SolverWorkspace> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl std::fmt::Debug for SharedWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedWorkspace").finish_non_exhaustive()
    }
}

/// Either a lock on a shared workspace or a transient owned one — what a leaf solver
/// gets from [`crate::engine::SolveContext::workspace`].
pub enum WorkspaceGuard<'a> {
    /// A locked shared workspace (buffer reuse across solves).
    Shared(MutexGuard<'a, SolverWorkspace>),
    /// A transient workspace built for this solve only (no context workspace).
    Owned(Box<SolverWorkspace>),
}

impl std::ops::Deref for WorkspaceGuard<'_> {
    type Target = SolverWorkspace;
    fn deref(&self) -> &SolverWorkspace {
        match self {
            WorkspaceGuard::Shared(guard) => guard,
            WorkspaceGuard::Owned(ws) => ws,
        }
    }
}

impl std::ops::DerefMut for WorkspaceGuard<'_> {
    fn deref_mut(&mut self) -> &mut SolverWorkspace {
        match self {
            WorkspaceGuard::Shared(guard) => guard,
            WorkspaceGuard::Owned(ws) => ws,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_workspace_is_cloneable_and_lockable() {
        let shared = SharedWorkspace::new();
        let clone = shared.clone();
        {
            let mut ws = shared.lock();
            ws.max_incident.push(1.5);
        }
        assert_eq!(clone.lock().max_incident, vec![1.5]);
        assert!(format!("{shared:?}").contains("SharedWorkspace"));
    }

    #[test]
    fn guard_derefs_to_workspace() {
        let shared = SharedWorkspace::new();
        let mut guard = WorkspaceGuard::Shared(shared.lock());
        guard.init_order.push((3, 0.5));
        assert_eq!(guard.init_order.len(), 1);
        let mut owned = WorkspaceGuard::Owned(Box::default());
        owned.init_order.push((1, 1.0));
        assert_eq!(owned.init_order.len(), 1);
    }
}

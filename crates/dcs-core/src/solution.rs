//! Reporting of mined contrast subgraphs.
//!
//! The paper's result tables report, for every mined subgraph, its size, whether it is a
//! positive clique in `G_D`, and its density difference under several measures (average
//! degree, graph affinity, edge density, total degree).  [`ContrastReport`] gathers all of
//! those numbers for an arbitrary vertex subset or embedding, so the experiment harness
//! and downstream users can print table rows with one call.

use dcs_densest::Embedding;
use dcs_graph::{components, SignedGraph, VertexId, VertexSubset, Weight};

/// The graph density measure under which a DCS was mined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DensityMeasure {
    /// Average degree `ρ(S) = W(S)/|S|` (DCSAD).
    AverageDegree,
    /// Graph affinity `f(x) = xᵀAx` (DCSGA).
    GraphAffinity,
    /// Total degree `W(S)` — not a density in the paper's sense, but the objective of the
    /// EgoScan comparator; included so reports can be produced for the baseline too.
    TotalDegree,
}

impl std::fmt::Display for DensityMeasure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DensityMeasure::AverageDegree => write!(f, "average degree"),
            DensityMeasure::GraphAffinity => write!(f, "graph affinity"),
            DensityMeasure::TotalDegree => write!(f, "total degree"),
        }
    }
}

/// Density-difference statistics of a subgraph of the difference graph `G_D`, matching
/// the columns of the paper's result tables (Tables IV, VIII–XIV).
#[derive(Debug, Clone, PartialEq)]
pub struct ContrastReport {
    /// The vertex subset (support set for affinity solutions), sorted ascending.
    pub subset: Vec<VertexId>,
    /// Number of vertices.
    pub size: usize,
    /// Average-degree difference `ρ_D(S) = W_D(S)/|S|`.
    pub average_degree_difference: Weight,
    /// Graph-affinity difference `xᵀDx`.  For subsets (rather than embeddings) this is
    /// evaluated at the uniform embedding on the subset.
    pub affinity_difference: Weight,
    /// Edge-density difference `W_D(S)/|S|²`.
    pub edge_density_difference: Weight,
    /// Total-degree difference `W_D(S)` (the degree-sum convention of the paper).
    pub total_degree_difference: Weight,
    /// Whether `G_D(S)` is a clique with all-positive edge weights.
    pub is_positive_clique: bool,
    /// Whether `G_D(S)` is connected.
    pub is_connected: bool,
}

impl ContrastReport {
    /// Builds the report for a plain vertex subset (used for DCSAD and baseline results).
    pub fn for_subset(gd: &SignedGraph, subset: &[VertexId]) -> Self {
        Self::for_subset_scratch(
            gd,
            subset,
            &mut VertexSubset::new(0),
            &mut VertexSubset::new(0),
            &mut Vec::new(),
        )
    }

    /// [`Self::for_subset`] with caller-provided scratch buffers (membership marks,
    /// connectivity visited set and traversal stack) — the allocation-lean variant
    /// used with a [`crate::workspace::SolverWorkspace`] on the steady-state
    /// reporting path.  One membership pass feeds every density metric: the total
    /// degree `W_D(S)` determines the average degree (`/|S|`), the edge density
    /// (`/|S|²`) and the affinity of the **uniform** embedding, which equals the edge
    /// density exactly (`xᵀDx` at `x_u = 1/|S|` is `W_D(S)/|S|²` by definition).
    pub fn for_subset_scratch(
        gd: &SignedGraph,
        subset: &[VertexId],
        marks: &mut VertexSubset,
        visited: &mut VertexSubset,
        stack: &mut Vec<VertexId>,
    ) -> Self {
        let mut sorted: Vec<VertexId> = subset.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        marks.reset_universe(gd.num_vertices());
        marks.insert_all(&sorted);
        let size = sorted.len();
        let total = gd.total_degree_marked(marks);
        let (average, density) = if size == 0 {
            (0.0, 0.0)
        } else {
            (
                total / size as Weight,
                total / (size as Weight * size as Weight),
            )
        };
        ContrastReport {
            size,
            average_degree_difference: average,
            affinity_difference: density,
            edge_density_difference: density,
            total_degree_difference: total,
            is_positive_clique: gd.is_positive_clique_marked(marks),
            is_connected: components::is_connected_scratch(gd, marks, visited, stack),
            subset: sorted,
        }
    }

    /// Builds the report for an affinity solution; the affinity difference is evaluated
    /// at the embedding itself (not at the uniform embedding on the support).
    pub fn for_embedding(gd: &SignedGraph, x: &Embedding) -> Self {
        let support = x.support();
        let mut report = Self::for_subset(gd, &support);
        report.affinity_difference = x.affinity(gd);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn gd() -> SignedGraph {
        // Positive triangle {0,1,2} (weights 2), negative edge (2,3), isolated 4.
        GraphBuilder::from_edges(5, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0), (2, 3, -1.0)])
    }

    #[test]
    fn subset_report() {
        let g = gd();
        let r = ContrastReport::for_subset(&g, &[0, 1, 2]);
        assert_eq!(r.size, 3);
        assert!((r.total_degree_difference - 12.0).abs() < 1e-12);
        assert!((r.average_degree_difference - 4.0).abs() < 1e-12);
        assert!((r.edge_density_difference - 12.0 / 9.0).abs() < 1e-12);
        // Uniform affinity on the triangle: 6 ordered pairs × (1/9) × 2 = 4/3.
        assert!((r.affinity_difference - 4.0 / 3.0).abs() < 1e-12);
        assert!(r.is_positive_clique);
        assert!(r.is_connected);
    }

    #[test]
    fn subset_with_negative_edge() {
        let g = gd();
        let r = ContrastReport::for_subset(&g, &[1, 2, 3]);
        assert!(!r.is_positive_clique);
        assert!(r.is_connected);
        assert!((r.total_degree_difference - 2.0).abs() < 1e-12); // 2*(2 - 1)
    }

    #[test]
    fn disconnected_subset() {
        let g = gd();
        let r = ContrastReport::for_subset(&g, &[0, 4]);
        assert!(!r.is_connected);
        assert_eq!(r.total_degree_difference, 0.0);
        assert!(!r.is_positive_clique); // missing edge
    }

    #[test]
    fn embedding_report_uses_embedding_affinity() {
        let g = gd();
        let x = Embedding::from_weights(vec![(0, 0.5), (1, 0.25), (2, 0.25)]);
        let r = ContrastReport::for_embedding(&g, &x);
        assert_eq!(r.subset, vec![0, 1, 2]);
        // f = 2*(0.5*0.25 + 0.5*0.25 + 0.25*0.25)*2 = 2*(0.3125)*2
        assert!((r.affinity_difference - 1.25).abs() < 1e-12);
        // but the subset-level numbers are unchanged
        assert!((r.average_degree_difference - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dedups_and_sorts() {
        let g = gd();
        let r = ContrastReport::for_subset(&g, &[2, 0, 2, 1]);
        assert_eq!(r.subset, vec![0, 1, 2]);
        assert_eq!(r.size, 3);
    }

    #[test]
    fn measure_display() {
        assert_eq!(DensityMeasure::AverageDegree.to_string(), "average degree");
        assert_eq!(DensityMeasure::GraphAffinity.to_string(), "graph affinity");
        assert_eq!(DensityMeasure::TotalDegree.to_string(), "total degree");
    }
}

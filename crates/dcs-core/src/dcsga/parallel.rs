//! Parallel initialisation sweeps for the DCSGA solvers.
//!
//! The SEACD/NewSEA initialisations are independent local searches, so they parallelise
//! naturally: each worker repeatedly claims the next candidate vertex and runs
//! SEACD + refinement from it.  Two entry points are provided:
//!
//! * [`parallel_sweep`] — the exhaustive one-initialisation-per-vertex sweep of the
//!   `SEACD+Refine` comparator, fanned out over worker threads,
//! * [`parallel_newsea`] — NewSEA's smart-initialisation sweep with a *shared* best
//!   objective: workers claim candidates in descending `µ_u` order and stop as soon as
//!   the next candidate's bound cannot beat the best solution any worker has found.
//!
//! Both produce the same best objective as their sequential counterparts (the set of
//! initialisations that can win is identical); only the *number* of initialisations that
//! NewSEA actually runs may differ slightly, because workers that are already in flight
//! when the winning solution is found still finish their candidate.

use std::sync::atomic::{AtomicUsize, Ordering};

use dcs_densest::Embedding;
use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};
use parking_lot::Mutex;

use super::newsea::{smart_initialization_order, SmartInitStats};
use super::refine::{refine, refine_with_workspace};
use super::seacd::{SeaCd, SeaCdSweep};
use super::{DcsgaConfig, DcsgaSolution};
use crate::workspace::SolverWorkspace;

/// Shared best-so-far state of a parallel sweep: `(objective, seed vertex of the
/// winning initialisation, embedding)`.
struct SharedBest {
    best: Mutex<(Weight, VertexId, Embedding)>,
}

/// Sentinel seed of the initial empty incumbent: a real offer never ties against it
/// (the incumbent must first be beaten on the objective, exactly as before).
const UNSEEDED: VertexId = VertexId::MAX;

impl SharedBest {
    fn new() -> Self {
        SharedBest {
            best: Mutex::new((0.0, UNSEEDED, Embedding::default())),
        }
    }

    fn objective(&self) -> Weight {
        self.best.lock().0
    }

    /// Whether `(objective, seed)` replaces the incumbent: strictly better objective,
    /// or an exact objective tie broken towards the **lowest seed vertex** — so the
    /// winning embedding is deterministic under any scheduling and thread count.
    fn wins(objective: Weight, seed: VertexId, incumbent: &(Weight, VertexId, Embedding)) -> bool {
        objective > incumbent.0
            || (incumbent.1 != UNSEEDED && objective == incumbent.0 && seed < incumbent.1)
    }

    /// Offers the solution of the initialisation seeded at `seed`.  Losing offers
    /// never clone: the embedding is cloned outside the lock only after a first
    /// check says the offer currently wins, and installed only if it still wins on
    /// the re-check (another worker may have improved the incumbent in between).
    fn offer(&self, objective: Weight, seed: VertexId, embedding: &Embedding) {
        if !Self::wins(objective, seed, &self.best.lock()) {
            return;
        }
        let owned = embedding.clone();
        let mut guard = self.best.lock();
        if Self::wins(objective, seed, &guard) {
            *guard = (objective, seed, owned);
        }
    }

    fn into_best(self) -> (Weight, Embedding) {
        let (objective, _, embedding) = self.best.into_inner();
        (objective, embedding)
    }
}

/// Clamps a requested thread count to something sensible (`1..=available_parallelism`).
fn effective_threads(requested: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.clamp(1, available.max(1))
}

/// Runs the exhaustive SEACD+Refine sweep (one initialisation per non-isolated vertex of
/// `gd_plus`) across `threads` worker threads.
///
/// Returns the same [`SeaCdSweep`] shape as [`SeaCd::sweep`]; `all_solutions` is only
/// populated when `collect_all` is set, in vertex order (so the clique census is
/// deterministic regardless of scheduling).
pub fn parallel_sweep(
    gd_plus: &SignedGraph,
    config: DcsgaConfig,
    threads: usize,
    collect_all: bool,
) -> SeaCdSweep {
    let n = gd_plus.num_vertices();
    let threads = effective_threads(threads);
    if n == 0 || threads == 1 {
        return SeaCd::new(config).sweep(gd_plus, None, collect_all, |g, x| refine(g, x, &config));
    }

    let candidates: Vec<u32> = (0..n as u32).filter(|&u| gd_plus.degree(u) > 0).collect();
    let next = AtomicUsize::new(0);
    let shared = SharedBest::new();
    let errors = AtomicUsize::new(0);
    let per_candidate: Vec<Mutex<Option<Embedding>>> =
        (0..candidates.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let solver = SeaCd::new(config);
                // One dense workspace per worker, reused across its initialisations.
                let mut ws = SolverWorkspace::new();
                let view = GraphView::full(gd_plus);
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&u) = candidates.get(index) else {
                        break;
                    };
                    let run =
                        solver.run_on_view_in(view, Embedding::singleton(u), &mut ws, |_| false);
                    errors.fetch_add(run.expansion_errors, Ordering::Relaxed);
                    let refined = refine_with_workspace(gd_plus, run.embedding, &config, &mut ws);
                    let objective = refined.affinity(gd_plus);
                    shared.offer(objective, u, &refined);
                    if collect_all {
                        *per_candidate[index].lock() = Some(refined);
                    }
                }
            });
        }
    })
    .expect("sweep worker panicked");

    let initializations = candidates.len();
    let all_solutions = if collect_all {
        per_candidate
            .into_iter()
            .filter_map(|slot| slot.into_inner())
            .collect()
    } else {
        Vec::new()
    };
    let (best_objective, best) = shared.into_best();
    SeaCdSweep {
        best,
        best_objective,
        initializations,
        expansion_errors: errors.load(Ordering::Relaxed),
        all_solutions,
    }
}

/// Runs NewSEA's smart-initialisation sweep across `threads` worker threads.
///
/// Candidates are claimed in descending `µ_u` order; a worker stops as soon as the bound
/// of its next candidate is no better than the best objective found so far by *any*
/// worker, which preserves NewSEA's early exit (Theorem 6 guarantees no skipped candidate
/// could have produced a better solution).
pub fn parallel_newsea(gd: &SignedGraph, config: DcsgaConfig, threads: usize) -> DcsgaSolution {
    let gd_plus = gd.positive_part();
    let threads = effective_threads(threads);
    if gd_plus.num_edges() == 0 {
        return DcsgaSolution {
            embedding: Embedding::default(),
            affinity_difference: 0.0,
            stats: SmartInitStats::default(),
        };
    }
    if threads == 1 {
        return super::NewSea::new(config).solve_on_positive_part(&gd_plus);
    }

    let order = smart_initialization_order(&gd_plus);
    let next = AtomicUsize::new(0);
    let run_count = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let shared = SharedBest::new();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let solver = SeaCd::new(config);
                // One dense workspace per worker, reused across its initialisations.
                let mut ws = SolverWorkspace::new();
                let view = GraphView::full(&gd_plus);
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(u, mu)) = order.get(index) else {
                        break;
                    };
                    if mu <= shared.objective() {
                        // µ values are non-increasing, so every later candidate is also
                        // dominated; put the index back is unnecessary — just stop.
                        break;
                    }
                    run_count.fetch_add(1, Ordering::Relaxed);
                    let run =
                        solver.run_on_view_in(view, Embedding::singleton(u), &mut ws, |_| false);
                    errors.fetch_add(run.expansion_errors, Ordering::Relaxed);
                    let refined = refine_with_workspace(&gd_plus, run.embedding, &config, &mut ws);
                    shared.offer(refined.affinity(&gd_plus), u, &refined);
                }
            });
        }
    })
    .expect("NewSEA worker panicked");

    let initializations_run = run_count.load(Ordering::Relaxed);
    let (best_objective, best) = shared.into_best();
    DcsgaSolution {
        embedding: best,
        affinity_difference: best_objective,
        stats: SmartInitStats {
            initializations_run,
            initializations_skipped: order.len().saturating_sub(initializations_run),
            expansion_errors: errors.load(Ordering::Relaxed),
            seeded_runs: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsga::NewSea;
    use crate::difference_graph;
    use dcs_graph::GraphBuilder;

    /// A heavy 4-clique, a medium 5-clique and background noise.
    fn planted_graph() -> SignedGraph {
        let mut b = GraphBuilder::new(40);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 5.0);
            }
        }
        for u in 10..15u32 {
            for v in (u + 1)..15u32 {
                b.add_edge(u, v, 2.0);
            }
        }
        for i in 0..30u32 {
            b.add_edge(i, (i * 7 + 3) % 40, 0.3);
            b.add_edge((i * 5 + 1) % 40, (i * 11 + 2) % 40, -0.2);
        }
        b.build()
    }

    #[test]
    fn parallel_sweep_matches_sequential_best() {
        let gd = planted_graph();
        let gd_plus = gd.positive_part();
        let config = DcsgaConfig::default();
        let sequential =
            SeaCd::new(config).sweep(&gd_plus, None, false, |g, x| refine(g, x, &config));
        let parallel = parallel_sweep(&gd_plus, config, 4, false);
        assert!((sequential.best_objective - parallel.best_objective).abs() < 1e-9);
        assert_eq!(sequential.initializations, parallel.initializations);
        assert_eq!(parallel.expansion_errors, 0);
        assert_eq!(sequential.best.support(), parallel.best.support());
    }

    #[test]
    fn parallel_sweep_collects_one_solution_per_candidate() {
        let gd = planted_graph();
        let gd_plus = gd.positive_part();
        let parallel = parallel_sweep(&gd_plus, DcsgaConfig::default(), 3, true);
        assert_eq!(parallel.all_solutions.len(), parallel.initializations);
    }

    #[test]
    fn parallel_newsea_matches_sequential_objective() {
        let gd = planted_graph();
        let config = DcsgaConfig::default();
        let sequential = NewSea::new(config).solve(&gd);
        let parallel = parallel_newsea(&gd, config, 4);
        assert!(
            (sequential.affinity_difference - parallel.affinity_difference).abs() < 1e-9,
            "sequential {} vs parallel {}",
            sequential.affinity_difference,
            parallel.affinity_difference
        );
        assert_eq!(sequential.support(), parallel.support());
        // The early exit still prunes most candidates.
        assert!(
            parallel.stats.initializations_skipped > 0,
            "ran {} of {}",
            parallel.stats.initializations_run,
            parallel.stats.initializations_run + parallel.stats.initializations_skipped
        );
    }

    #[test]
    fn degenerate_inputs() {
        let config = DcsgaConfig::default();
        // No positive edges: empty solution, no crash.
        let negative = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        let solution = parallel_newsea(&negative, config, 4);
        assert!(solution.embedding.is_empty());
        // Empty graph through the sweep path.
        let sweep = parallel_sweep(&SignedGraph::empty(0), config, 4, true);
        assert_eq!(sweep.initializations, 0);
        // Single-threaded request falls back to the sequential implementations.
        let pair_g1 = GraphBuilder::from_edges(4, vec![(0, 1, 1.0)]);
        let pair_g2 = GraphBuilder::from_edges(4, vec![(0, 1, 3.0), (1, 2, 2.0), (0, 2, 2.0)]);
        let gd = difference_graph(&pair_g2, &pair_g1).unwrap();
        let single = parallel_newsea(&gd, config, 1);
        assert_eq!(single.support(), vec![0, 1, 2]);
    }
}

//! Refinement of a KKT point to a positive-clique solution (Algorithm 4, Theorem 5).
//!
//! Theorem 5 shows that any KKT point `x` whose support is *not* a positive clique of
//! `G_D` can be improved (without decreasing the objective) by repeatedly
//!
//! 1. picking two supported vertices `u, v` whose connecting edge is missing or has
//!    non-positive weight,
//! 2. transferring all of the pair's mass to the better endpoint (for a zero/missing edge
//!    at an exact KKT point both choices tie; for a negative edge the 1-D problem of
//!    Eq. 9 is convex so one endpoint strictly improves),
//! 3. re-running the 2-coordinate descent to a local KKT point on the reduced support.
//!
//! The support shrinks by at least one vertex per round, so the loop terminates with a
//! positive-clique solution whose objective is at least the input's.
//!
//! Like the shrink and expansion stages, the refinement loop ([`refine_in`]) runs in
//! an [`EmbeddingArena`](super::arena::EmbeddingArena) over a [`GraphView`]: no
//! embedding clones for the two mass-transfer candidates, no materialised `G_{D+}`.

use dcs_densest::Embedding;
use dcs_graph::{GraphView, SignedGraph, VertexId};

use super::arena::{renormalize_in, DenseArena, EmbeddingArena, KernelScratch};
use super::coord_descent::descend_in;
use super::DcsgaConfig;

/// The arena-resident Algorithm 4: refines the arena's embedding into a
/// positive-clique solution of the view with objective ≥ the input's.
pub(super) fn refine_in<A: EmbeddingArena>(
    view: GraphView<'_>,
    config: &DcsgaConfig,
    arena: &mut A,
    scratch: &mut KernelScratch,
) {
    let mut refine_span = dcs_obs::trace::span(dcs_obs::trace::Phase::Refine);
    loop {
        arena.support_into(&mut scratch.support);
        if scratch.support.len() <= 1 {
            return;
        }
        let Some((u, v)) = find_non_clique_pair(view, &scratch.support) else {
            return; // already a positive clique
        };
        refine_span.add_units(1);

        // Transfer the pair's mass to the better endpoint: evaluate both options
        // without cloning the embedding.
        let c = arena.x(u) + arena.x(v);
        let keep_u = affinity_overridden(view, arena, &scratch.support, u, c, v);
        let keep_v = affinity_overridden(view, arena, &scratch.support, v, c, u);
        if keep_u >= keep_v {
            arena.set_x(u, c);
            arena.set_x(v, 0.0);
        } else {
            arena.set_x(v, c);
            arena.set_x(u, 0.0);
        }

        // Re-descend to a local KKT point on the reduced support.
        arena.support_into(&mut scratch.support);
        if scratch.support.is_empty() {
            return;
        }
        let eps = config.kkt_eps_factor / scratch.support.len() as f64;
        descend_in(view, arena, &scratch.support, eps, config.max_cd_iterations);
        renormalize_in(arena, &mut scratch.support);
    }
}

/// `f(x')` where `x'` equals the arena's embedding with `x'_boosted = c` and
/// `skipped` removed — the objective of one mass-transfer candidate, computed in
/// ascending support order without materialising `x'`.
fn affinity_overridden<A: EmbeddingArena>(
    view: GraphView<'_>,
    arena: &A,
    support: &[VertexId],
    boosted: VertexId,
    c: f64,
    skipped: VertexId,
) -> f64 {
    let value = |k: VertexId| {
        if k == boosted {
            c
        } else if k == skipped {
            0.0
        } else {
            arena.x(k)
        }
    };
    let mut total = 0.0;
    for &k in support {
        if k == skipped {
            continue;
        }
        let xk = value(k);
        if xk == 0.0 {
            continue;
        }
        let mut row = 0.0;
        for e in view.neighbors(k) {
            let xnb = value(e.neighbor);
            if xnb > 0.0 {
                row += e.weight * xnb;
            }
        }
        total += xk * row;
    }
    total
}

/// Finds a pair of supported vertices whose view edge is missing or has non-positive
/// weight, or `None` if the support induces a positive clique.
fn find_non_clique_pair(view: GraphView<'_>, support: &[VertexId]) -> Option<(VertexId, VertexId)> {
    for (idx, &u) in support.iter().enumerate() {
        for &v in &support[idx + 1..] {
            match view.edge_weight(u, v) {
                Some(w) if w > 0.0 => {}
                _ => return Some((u, v)),
            }
        }
    }
    None
}

/// Refines `x` into a positive-clique solution of `g` with objective ≥ `f(x)`.
///
/// `g` is typically `G_{D+}` (then "positive clique" simply means clique), but the
/// routine also accepts the signed `G_D` and treats non-positive edges like missing ones,
/// exactly as in the constructive proof of Theorem 5.  This standalone entry builds a
/// transient arena per call; batch loops should go through [`refine_with_workspace`].
pub fn refine(g: &SignedGraph, x: Embedding, config: &DcsgaConfig) -> Embedding {
    let mut arena = DenseArena::default();
    let mut scratch = KernelScratch::default();
    refine_loaded(GraphView::full(g), x, config, &mut arena, &mut scratch)
}

/// [`refine`] against a caller-owned [`crate::workspace::SolverWorkspace`]: repeated
/// refinements (the parallel sweep workers, the census harness) reuse the dense
/// arena instead of allocating one per call.
pub fn refine_with_workspace(
    g: &SignedGraph,
    x: Embedding,
    config: &DcsgaConfig,
    ws: &mut crate::workspace::SolverWorkspace,
) -> Embedding {
    let dcsga = &mut ws.dcsga;
    refine_loaded(
        GraphView::full(g),
        x,
        config,
        &mut dcsga.arena,
        &mut dcsga.kernel,
    )
}

fn refine_loaded<A: EmbeddingArena>(
    view: GraphView<'_>,
    x: Embedding,
    config: &DcsgaConfig,
    arena: &mut A,
    scratch: &mut KernelScratch,
) -> Embedding {
    arena.begin(view.num_vertices());
    for (v, value) in x.iter() {
        arena.set_x(v, value);
    }
    refine_in(view, config, arena, scratch);
    super::seacd::export_embedding(arena, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn config() -> DcsgaConfig {
        DcsgaConfig::default()
    }

    #[test]
    fn already_a_clique_is_untouched() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        let y = refine(&g, x.clone(), &config());
        assert_eq!(y.support(), vec![0, 1, 2]);
        assert!((y.affinity(&g) - x.affinity(&g)).abs() < 1e-12);
    }

    #[test]
    fn missing_edge_is_removed_without_loss() {
        // Path 0-1-2 (no edge 0-2): the uniform embedding on {0,1,2} is not a clique
        // solution; refinement must end on a clique (an edge) with objective >= input.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        let before = x.affinity(&g);
        let y = refine(&g, x, &config());
        assert!(g.is_positive_clique(&y.support()));
        assert!(y.affinity(&g) >= before - 1e-9);
        assert_eq!(y.support().len(), 2);
    }

    #[test]
    fn negative_edge_is_removed_and_objective_improves() {
        // Triangle where one edge is negative: dropping one endpoint of the negative
        // edge strictly improves the objective.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, -1.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        let before = x.affinity(&g);
        let y = refine(&g, x, &config());
        assert!(g.is_positive_clique(&y.support()));
        assert!(y.affinity(&g) > before);
        assert_eq!(y.support().len(), 2);
    }

    #[test]
    fn collapses_to_best_edge_in_a_star() {
        // Star: centre 0 with leaves 1..4, leaf edges have different weights.  No pair of
        // leaves is adjacent, so refinement must end with the centre plus one leaf — and
        // picking greedily by objective keeps a heavy one.
        let g =
            GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (0, 2, 5.0), (0, 3, 2.0), (0, 4, 1.0)]);
        let x = Embedding::uniform(&[0, 1, 2, 3, 4]);
        let y = refine(&g, x, &config());
        let support = y.support();
        assert!(g.is_positive_clique(&support));
        assert_eq!(support.len(), 2);
        assert!(support.contains(&0));
        // Objective must be at least the best achievable from the input by Theorem 5 —
        // and in this star the best clique is the centre plus leaf 2 (affinity 2.5).
        assert!((y.affinity(&g) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn singleton_and_empty_are_fixed_points() {
        let g = GraphBuilder::from_edges(2, vec![(0, 1, 1.0)]);
        let single = refine(&g, Embedding::singleton(0), &config());
        assert_eq!(single.support(), vec![0]);
        let empty = refine(&g, Embedding::default(), &config());
        assert!(empty.is_empty());
    }

    #[test]
    fn disconnected_support_is_resolved() {
        // Two disjoint heavy edges in the support: not a clique, refinement keeps one.
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 3.0), (2, 3, 2.0)]);
        let x = Embedding::uniform(&[0, 1, 2, 3]);
        let before = x.affinity(&g);
        let y = refine(&g, x, &config());
        assert!(g.is_positive_clique(&y.support()));
        assert_eq!(y.support(), vec![0, 1]);
        assert!(y.affinity(&g) >= before - 1e-9);
        assert!((y.affinity(&g) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn positive_view_refine_matches_materialized() {
        // Refining over a positive-filtered view of the signed graph equals refining
        // over the materialised positive part.
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, -1.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        let mut arena = DenseArena::default();
        let mut scratch = KernelScratch::default();
        let via_view = refine_loaded(
            GraphView::full(&g).positive_part(),
            x.clone(),
            &config(),
            &mut arena,
            &mut scratch,
        );
        let via_materialized = refine(&g.positive_part(), x, &config());
        assert_eq!(via_view.support(), via_materialized.support());
    }
}

//! Refinement of a KKT point to a positive-clique solution (Algorithm 4, Theorem 5).
//!
//! Theorem 5 shows that any KKT point `x` whose support is *not* a positive clique of
//! `G_D` can be improved (without decreasing the objective) by repeatedly
//!
//! 1. picking two supported vertices `u, v` whose connecting edge is missing or has
//!    non-positive weight,
//! 2. transferring all of the pair's mass to the better endpoint (for a zero/missing edge
//!    at an exact KKT point both choices tie; for a negative edge the 1-D problem of
//!    Eq. 9 is convex so one endpoint strictly improves),
//! 3. re-running the 2-coordinate descent to a local KKT point on the reduced support.
//!
//! The support shrinks by at least one vertex per round, so the loop terminates with a
//! positive-clique solution whose objective is at least the input's.

use dcs_densest::Embedding;
use dcs_graph::{SignedGraph, VertexId};

use super::coord_descent::descend_to_local_kkt;
use super::DcsgaConfig;

/// Refines `x` into a positive-clique solution of `g` with objective ≥ `f(x)`.
///
/// `g` is typically `G_{D+}` (then "positive clique" simply means clique), but the
/// routine also accepts the signed `G_D` and treats non-positive edges like missing ones,
/// exactly as in the constructive proof of Theorem 5.
pub fn refine(g: &SignedGraph, x: Embedding, config: &DcsgaConfig) -> Embedding {
    let mut y = x;
    loop {
        let support = y.support();
        if support.len() <= 1 {
            return y;
        }
        let Some((u, v)) = find_non_clique_pair(g, &support) else {
            return y; // already a positive clique
        };

        // Transfer the pair's mass to the better endpoint.
        let yu = y.get(u);
        let yv = y.get(v);
        let c = yu + yv;
        let keep_u = {
            let mut a = y.clone();
            a.set(u, c);
            a.set(v, 0.0);
            a
        };
        let keep_v = {
            let mut b = y.clone();
            b.set(u, 0.0);
            b.set(v, c);
            b
        };
        y = if keep_u.affinity(g) >= keep_v.affinity(g) {
            keep_u
        } else {
            keep_v
        };

        // Re-descend to a local KKT point on the reduced support.
        let support = y.support();
        if support.is_empty() {
            return y;
        }
        let eps = config.kkt_eps_factor / support.len() as f64;
        let out = descend_to_local_kkt(g, &y, &support, eps, config.max_cd_iterations);
        y = out.embedding;
    }
}

/// Finds a pair of supported vertices whose edge is missing or has non-positive weight,
/// or `None` if the support induces a positive clique.
fn find_non_clique_pair(g: &SignedGraph, support: &[VertexId]) -> Option<(VertexId, VertexId)> {
    for (idx, &u) in support.iter().enumerate() {
        for &v in &support[idx + 1..] {
            match g.edge_weight(u, v) {
                Some(w) if w > 0.0 => {}
                _ => return Some((u, v)),
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn config() -> DcsgaConfig {
        DcsgaConfig::default()
    }

    #[test]
    fn already_a_clique_is_untouched() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        let y = refine(&g, x.clone(), &config());
        assert_eq!(y.support(), vec![0, 1, 2]);
        assert!((y.affinity(&g) - x.affinity(&g)).abs() < 1e-12);
    }

    #[test]
    fn missing_edge_is_removed_without_loss() {
        // Path 0-1-2 (no edge 0-2): the uniform embedding on {0,1,2} is not a clique
        // solution; refinement must end on a clique (an edge) with objective >= input.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        let before = x.affinity(&g);
        let y = refine(&g, x, &config());
        assert!(g.is_positive_clique(&y.support()));
        assert!(y.affinity(&g) >= before - 1e-9);
        assert_eq!(y.support().len(), 2);
    }

    #[test]
    fn negative_edge_is_removed_and_objective_improves() {
        // Triangle where one edge is negative: dropping one endpoint of the negative
        // edge strictly improves the objective.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, -1.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        let before = x.affinity(&g);
        let y = refine(&g, x, &config());
        assert!(g.is_positive_clique(&y.support()));
        assert!(y.affinity(&g) > before);
        assert_eq!(y.support().len(), 2);
    }

    #[test]
    fn collapses_to_best_edge_in_a_star() {
        // Star: centre 0 with leaves 1..4, leaf edges have different weights.  No pair of
        // leaves is adjacent, so refinement must end with the centre plus one leaf — and
        // picking greedily by objective keeps a heavy one.
        let g =
            GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (0, 2, 5.0), (0, 3, 2.0), (0, 4, 1.0)]);
        let x = Embedding::uniform(&[0, 1, 2, 3, 4]);
        let y = refine(&g, x, &config());
        let support = y.support();
        assert!(g.is_positive_clique(&support));
        assert_eq!(support.len(), 2);
        assert!(support.contains(&0));
        // Objective must be at least the best achievable from the input by Theorem 5 —
        // and in this star the best clique is the centre plus leaf 2 (affinity 2.5).
        assert!((y.affinity(&g) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn singleton_and_empty_are_fixed_points() {
        let g = GraphBuilder::from_edges(2, vec![(0, 1, 1.0)]);
        let single = refine(&g, Embedding::singleton(0), &config());
        assert_eq!(single.support(), vec![0]);
        let empty = refine(&g, Embedding::default(), &config());
        assert!(empty.is_empty());
    }

    #[test]
    fn disconnected_support_is_resolved() {
        // Two disjoint heavy edges in the support: not a clique, refinement keeps one.
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 3.0), (2, 3, 2.0)]);
        let x = Embedding::uniform(&[0, 1, 2, 3]);
        let before = x.affinity(&g);
        let y = refine(&g, x, &config());
        assert!(g.is_positive_clique(&y.support()));
        assert_eq!(y.support(), vec![0, 1]);
        assert!(y.affinity(&g) >= before - 1e-9);
        assert!((y.affinity(&g) - 1.5).abs() < 1e-6);
    }
}

//! Embedding storage arenas of the DCSGA kernels.
//!
//! Every DCSGA routine — the 2-coordinate-descent shrink, the SEA expansion, the
//! Algorithm-4 refinement and the NewSEA sweep that drives them — is written **once**,
//! generic over an [`EmbeddingArena`]: the storage of the working embedding `x`, the
//! linear form `(Dx)_k` on the working support, the expansion direction `γ`, and the
//! candidate-dedup marks.  Two implementations exist:
//!
//! * [`DenseArena`] — the canonical backend: a [`DenseEmbedding`] plus dense `f64`
//!   arrays indexed by vertex id, membership tracked in [`VertexMask`] bitsets, all
//!   owned by the [`crate::workspace::SolverWorkspace`].  Steady-state solves (server
//!   jobs, streaming re-mines, top-k rounds, α-sweep grid points) allocate nothing.
//! * [`HashArena`] — the `FxHashMap`-backed **reference**: fresh hash maps per stage,
//!   exactly the allocation profile the dense arena replaces.  It exists for the
//!   property tests, which assert dense solves are *bit-identical* to reference
//!   solves — guaranteed structurally, because both arenas run the same monomorphised
//!   kernel and every floating-point reduction iterates an explicitly sorted vertex
//!   list rather than a storage-order-dependent map walk.
//!
//! [`KernelScratch`] carries the plain `Vec` buffers the kernels share (working
//! support, candidate set, incumbent snapshot); it rides along whichever arena is in
//! use.

use dcs_densest::DenseEmbedding;
use dcs_graph::{CoreScratch, GraphView, VertexId, VertexMask};
use rustc_hash::{FxHashMap, FxHashSet};

/// The DCSGA scratch bundle owned by a [`crate::workspace::SolverWorkspace`]: the
/// canonical dense arena, the kernels' `Vec` buffers, and the core-decomposition
/// scratch of the smart-initialisation bound.  One bundle serves every affinity
/// solve a workspace sees — SEACD restarts, NewSEA sweeps, top-k rounds, α-sweep
/// grid points, and back-to-back server jobs.
#[derive(Debug, Default)]
pub struct DcsgaScratch {
    /// The dense embedding arena (iterate, linear form, expansion direction, marks).
    pub arena: DenseArena,
    /// The kernels' shared list buffers (support, candidates, incumbent snapshot).
    pub kernel: KernelScratch,
    /// Core-number scratch of NewSEA's `µ_u` bound.
    pub cores: CoreScratch,
}

/// Storage backend of the DCSGA kernels.  See the module docs.
///
/// The arena owns four named stores, each with its own lifecycle:
/// `x` (the embedding, reset by [`Self::begin`]), `dx` (the linear form, scoped to
/// one shrink via [`Self::dx_begin`]), `gamma` (the expansion direction, scoped to
/// one expansion via [`Self::gamma_begin`]) and the candidate-dedup marks (scoped to
/// one candidate scan via [`Self::marks_begin`]).
pub trait EmbeddingArena {
    /// Starts a fresh solve over an `n`-vertex universe: `x` becomes empty.
    fn begin(&mut self, n: usize);
    /// The value `x_v` (0 outside the support).
    fn x(&self, v: VertexId) -> f64;
    /// Sets `x_v`; non-positive values clear the entry.
    fn set_x(&mut self, v: VertexId, value: f64);
    /// Writes the support `{v | x_v > 0}` into `out`, sorted ascending.
    fn support_into(&self, out: &mut Vec<VertexId>);
    /// Scopes `dx` to the working support: every member's entry becomes 0.
    fn dx_begin(&mut self, support: &[VertexId]);
    /// The linear form `(Dx)_v`; only meaningful for working-support members.
    fn dx(&self, v: VertexId) -> f64;
    /// Adds `delta` to `(Dx)_v` **iff** `v` is in the working support.
    fn dx_add(&mut self, v: VertexId, delta: f64);
    /// Clears the expansion direction.
    fn gamma_begin(&mut self);
    /// Sets `γ_v`.
    fn set_gamma(&mut self, v: VertexId, value: f64);
    /// `γ_v`, or `None` when `v` got no value this expansion.
    fn gamma(&self, v: VertexId) -> Option<f64>;
    /// Clears the candidate-dedup marks.
    fn marks_begin(&mut self);
    /// Marks `v`; returns `true` when it was not yet marked.
    fn mark(&mut self, v: VertexId) -> bool;
}

/// The dense, workspace-owned arena (canonical backend).  All buffers grow on first
/// use and are reused afterwards; see [`EmbeddingArena`].
#[derive(Debug, Default)]
pub struct DenseArena {
    /// The working embedding.
    x: DenseEmbedding,
    /// `(Dx)_v` per working-support member.
    dx: Vec<f64>,
    /// Working-support membership.
    in_dx: VertexMask,
    /// Working-support members (for O(|S|) resets).
    dx_members: Vec<VertexId>,
    /// `γ_v` per expansion candidate.
    gamma: Vec<f64>,
    /// Expansion-candidate membership.
    in_gamma: VertexMask,
    /// Expansion candidates (for O(|Z|) resets).
    gamma_members: Vec<VertexId>,
    /// Candidate-dedup marks.
    marks: VertexMask,
    /// Marked vertices (for O(marked) resets).
    marked: Vec<VertexId>,
}

impl DenseArena {
    fn ensure_universe(&mut self, n: usize) {
        if self.dx.len() < n {
            self.dx.resize(n, 0.0);
            self.gamma.resize(n, 0.0);
        }
        if self.in_dx.universe_size() < n {
            self.in_dx.reset_empty(n);
            self.in_gamma.reset_empty(n);
            self.marks.reset_empty(n);
            self.dx_members.clear();
            self.gamma_members.clear();
            self.marked.clear();
        }
    }
}

impl EmbeddingArena for DenseArena {
    fn begin(&mut self, n: usize) {
        self.x.begin(n);
        self.ensure_universe(n);
    }

    #[inline]
    fn x(&self, v: VertexId) -> f64 {
        self.x.get(v)
    }

    #[inline]
    fn set_x(&mut self, v: VertexId, value: f64) {
        self.x.set(v, value);
    }

    fn support_into(&self, out: &mut Vec<VertexId>) {
        self.x.support_into(out);
    }

    fn dx_begin(&mut self, support: &[VertexId]) {
        for &v in &self.dx_members {
            self.in_dx.remove(v);
        }
        self.dx_members.clear();
        self.dx_members.extend_from_slice(support);
        for &v in support {
            self.in_dx.insert(v);
            self.dx[v as usize] = 0.0;
        }
    }

    #[inline]
    fn dx(&self, v: VertexId) -> f64 {
        // Mirror the HashArena contract (which panics on a non-member): reading a
        // stale slot outside the working support is always a kernel bug.
        debug_assert!(
            self.in_dx.contains(v),
            "dx read outside the working support"
        );
        self.dx[v as usize]
    }

    #[inline]
    fn dx_add(&mut self, v: VertexId, delta: f64) {
        if self.in_dx.contains(v) {
            self.dx[v as usize] += delta;
        }
    }

    fn gamma_begin(&mut self) {
        for &v in &self.gamma_members {
            self.in_gamma.remove(v);
        }
        self.gamma_members.clear();
    }

    fn set_gamma(&mut self, v: VertexId, value: f64) {
        if self.in_gamma.insert(v) {
            self.gamma_members.push(v);
        }
        self.gamma[v as usize] = value;
    }

    #[inline]
    fn gamma(&self, v: VertexId) -> Option<f64> {
        if self.in_gamma.contains(v) {
            Some(self.gamma[v as usize])
        } else {
            None
        }
    }

    fn marks_begin(&mut self) {
        for &v in &self.marked {
            self.marks.remove(v);
        }
        self.marked.clear();
    }

    fn mark(&mut self, v: VertexId) -> bool {
        if self.marks.insert(v) {
            self.marked.push(v);
            true
        } else {
            false
        }
    }
}

/// The `FxHashMap`-backed reference arena: every scope starts from a freshly
/// allocated map, reproducing the pre-dense allocation profile.  See the module docs
/// for why results are bit-identical to [`DenseArena`]'s.
#[derive(Debug, Default)]
pub struct HashArena {
    x: FxHashMap<VertexId, f64>,
    dx: FxHashMap<VertexId, f64>,
    gamma: FxHashMap<VertexId, f64>,
    marks: FxHashSet<VertexId>,
}

impl EmbeddingArena for HashArena {
    fn begin(&mut self, _n: usize) {
        self.x = FxHashMap::default();
    }

    #[inline]
    fn x(&self, v: VertexId) -> f64 {
        self.x.get(&v).copied().unwrap_or(0.0)
    }

    fn set_x(&mut self, v: VertexId, value: f64) {
        if value > 0.0 {
            self.x.insert(v, value);
        } else {
            self.x.remove(&v);
        }
    }

    fn support_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.x.keys().copied());
        out.sort_unstable();
    }

    fn dx_begin(&mut self, support: &[VertexId]) {
        self.dx = FxHashMap::default();
        for &v in support {
            self.dx.insert(v, 0.0);
        }
    }

    #[inline]
    fn dx(&self, v: VertexId) -> f64 {
        self.dx[&v]
    }

    fn dx_add(&mut self, v: VertexId, delta: f64) {
        if let Some(entry) = self.dx.get_mut(&v) {
            *entry += delta;
        }
    }

    fn gamma_begin(&mut self) {
        self.gamma = FxHashMap::default();
    }

    fn set_gamma(&mut self, v: VertexId, value: f64) {
        self.gamma.insert(v, value);
    }

    fn gamma(&self, v: VertexId) -> Option<f64> {
        self.gamma.get(&v).copied()
    }

    fn marks_begin(&mut self) {
        self.marks = FxHashSet::default();
    }

    fn mark(&mut self, v: VertexId) -> bool {
        self.marks.insert(v)
    }
}

/// Plain `Vec` buffers shared by the kernels, independent of the arena backend.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Working support of the current shrink / refinement round.
    pub support: Vec<VertexId>,
    /// Expansion candidate set `Z`.
    pub z: Vec<VertexId>,
    /// Incumbent-best support snapshot of a sweep.
    pub best_support: Vec<VertexId>,
    /// Incumbent-best values snapshot, parallel to `best_support`.
    pub best_values: Vec<f64>,
    /// Deduplicated warm-start seed.
    pub seed: Vec<VertexId>,
}

/// `f(x) = xᵀAx` over the view's surviving edges, reduced in ascending support
/// order (the canonical summation order of every kernel).
pub(super) fn affinity_in<A: EmbeddingArena>(
    view: GraphView<'_>,
    arena: &A,
    support: &[VertexId],
) -> f64 {
    let mut total = 0.0;
    for &u in support {
        total += arena.x(u) * weighted_sum_in(view, arena, u);
    }
    total
}

/// `(Ax)_u` over the view's surviving edges.
pub(super) fn weighted_sum_in<A: EmbeddingArena>(
    view: GraphView<'_>,
    arena: &A,
    u: VertexId,
) -> f64 {
    let mut s = 0.0;
    for e in view.neighbors(u) {
        let xv = arena.x(e.neighbor);
        if xv > 0.0 {
            s += e.weight * xv;
        }
    }
    s
}

/// Drops non-positive entries of `x` and rescales the rest to sum to 1 — the
/// deterministic equivalent of rebuilding through `Embedding::from_weights`.
/// Refreshes `support` to the resulting support set.
pub(super) fn renormalize_in<A: EmbeddingArena>(arena: &mut A, support: &mut Vec<VertexId>) {
    arena.support_into(support);
    let total: f64 = support.iter().map(|&v| arena.x(v)).sum();
    if total > 0.0 {
        for &v in support.iter() {
            let value = arena.x(v) / total;
            arena.set_x(v, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<A: EmbeddingArena>(arena: &mut A) {
        arena.begin(6);
        arena.set_x(3, 0.5);
        arena.set_x(1, 0.25);
        arena.set_x(5, 0.25);
        arena.set_x(5, 0.0); // dropped again
        let mut support = Vec::new();
        arena.support_into(&mut support);
        assert_eq!(support, vec![1, 3]);

        arena.dx_begin(&support);
        arena.dx_add(1, 2.0);
        arena.dx_add(4, 9.0); // not a member: ignored
        assert_eq!(arena.dx(1), 2.0);
        assert_eq!(arena.dx(3), 0.0);

        arena.gamma_begin();
        arena.set_gamma(2, -0.5);
        assert_eq!(arena.gamma(2), Some(-0.5));
        assert_eq!(arena.gamma(1), None);

        arena.marks_begin();
        assert!(arena.mark(4));
        assert!(!arena.mark(4));

        // A second solve starts clean.
        arena.begin(6);
        arena.support_into(&mut support);
        assert!(support.is_empty());
        arena.marks_begin();
        assert!(arena.mark(4));
        arena.gamma_begin();
        assert_eq!(arena.gamma(2), None);
    }

    #[test]
    fn dense_and_hash_arenas_agree() {
        exercise(&mut DenseArena::default());
        exercise(&mut HashArena::default());
    }

    #[test]
    fn dense_arena_grows_universe() {
        let mut arena = DenseArena::default();
        arena.begin(2);
        arena.set_x(1, 1.0);
        arena.begin(100);
        arena.set_x(99, 1.0);
        let mut support = Vec::new();
        arena.support_into(&mut support);
        assert_eq!(support, vec![99]);
    }
}

//! NewSEA — SEACD + Refinement + smart initialisation (Algorithm 5, Theorem 6).
//!
//! Running SEACD from every vertex is wasteful on large graphs.  Theorem 6 bounds the
//! affinity of any clique solution containing vertex `u` by
//!
//! ```text
//!   µ_u = τ_u · w_u / (τ_u + 1)
//! ```
//!
//! where `w_u` is an upper bound on the maximum edge weight within the ego net of `u` in
//! `G_{D+}` and `τ_u + 1` (the core number plus one) is an upper bound on the largest
//! clique of `G_{D+}` containing `u`.  NewSEA therefore initialises from vertices in
//! descending `µ_u` order and stops as soon as `µ_u` cannot beat the best solution found
//! so far.  In the paper this prunes 1–3 orders of magnitude of initialisations with no
//! observed loss of quality.
//!
//! The canonical path is **view-based and dense**: [`NewSea::solve_on_view_bounded`]
//! takes any [`GraphView`] of the signed `G_D` and mines its positive-filtered
//! overlay directly — `G_{D+}` is never materialised, and the whole sweep (core
//! numbers, µ ordering, every SEACD run and refinement) lives in the workspace's
//! dense embedding arena, so steady-state solves allocate nothing but the returned
//! solution.  [`NewSea::solve_seeded_reference`] retains the `FxHashMap`-backed
//! arena as the property-test oracle: it runs the *same* kernels over hash storage,
//! so dense solves are bit-identical to reference solves by construction.

use dcs_densest::Embedding;
use dcs_graph::{core_numbers_view_into, CoreScratch, GraphView, SignedGraph, VertexId, Weight};

use super::arena::{affinity_in, EmbeddingArena, HashArena, KernelScratch};
use super::refine::refine_in;
use super::seacd::{run_arena, snapshot_best};
use super::{DcsgaConfig, DcsgaSolution};
use crate::engine::{SolveContext, SolveStats, WorkMeter};

/// Statistics of a smart-initialisation sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmartInitStats {
    /// Number of initialisations actually run (SEACD + refinement invocations).
    pub initializations_run: usize,
    /// Number of candidate vertices skipped thanks to the `µ_u` bound.
    pub initializations_skipped: usize,
    /// Expansion errors observed (expected 0 for the coordinate-descent shrink).
    pub expansion_errors: usize,
    /// Number of warm-start initialisations run from a caller-provided seed
    /// ([`NewSea::solve_seeded`]); 0 for cold solves.
    pub seeded_runs: usize,
}

/// The NewSEA solver (Algorithm 5).
#[derive(Debug, Clone, Default)]
pub struct NewSea {
    config: DcsgaConfig,
}

impl NewSea {
    /// Creates a solver with an explicit configuration.
    pub fn new(config: DcsgaConfig) -> Self {
        NewSea { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &DcsgaConfig {
        &self.config
    }

    /// Mines the DCS with respect to graph affinity from the difference graph `gd`.
    ///
    /// Internally the solver works on the positive-filtered view of `gd` (justified
    /// by Theorem 5) and returns a positive-clique solution.  If `G_D` has no
    /// positive edge the optimum is 0 and an empty embedding is returned.
    pub fn solve(&self, gd: &SignedGraph) -> DcsgaSolution {
        self.solve_seeded(gd, &[])
    }

    /// Mines with a **warm-start seed**: before the µ_u-ordered sweep, one SEACD run
    /// is started from the uniform embedding on `seed` (typically the support of the
    /// previous mine on a slightly-changed graph).  A good seed establishes a strong
    /// incumbent objective immediately, so the Theorem-6 early-exit bound prunes far
    /// more initialisations; a useless seed costs one extra local search.  Seed
    /// vertices that are out of range or isolated in `G_{D+}` are dropped; an empty
    /// seed reduces to [`Self::solve`].
    pub fn solve_seeded(&self, gd: &SignedGraph, seed: &[VertexId]) -> DcsgaSolution {
        self.solve_bounded(gd, seed, &SolveContext::unbounded()).0
    }

    /// Same as [`Self::solve`] but takes a materialised `G_{D+}` directly — a legacy
    /// wrapper kept for callers that already hold the positive part; the canonical
    /// path mines the positive-filtered view of `G_D` without building it.
    pub fn solve_on_positive_part(&self, gd_plus: &SignedGraph) -> DcsgaSolution {
        self.solve_on_positive_part_seeded(gd_plus, &[])
    }

    /// [`Self::solve_seeded`] on an already-materialised `G_{D+}` (legacy wrapper;
    /// the positive filter is a no-op on it).
    pub fn solve_on_positive_part_seeded(
        &self,
        gd_plus: &SignedGraph,
        seed: &[VertexId],
    ) -> DcsgaSolution {
        self.solve_on_positive_part_bounded(gd_plus, seed, &SolveContext::unbounded())
            .0
    }

    /// [`Self::solve_seeded`] under a [`SolveContext`]: mines the positive-filtered
    /// view of `gd` under the context's bounds and workspace.
    pub fn solve_bounded(
        &self,
        gd: &SignedGraph,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> (DcsgaSolution, SolveStats) {
        self.solve_on_view_bounded(GraphView::full(gd), seed, cx)
    }

    /// [`Self::solve_on_positive_part_seeded`] under a [`SolveContext`] (legacy
    /// wrapper over the view path).
    pub fn solve_on_positive_part_bounded(
        &self,
        gd_plus: &SignedGraph,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> (DcsgaSolution, SolveStats) {
        self.solve_on_view_bounded(GraphView::full(gd_plus), seed, cx)
    }

    /// The canonical NewSEA entry point: the µ_u-ordered sweep over the
    /// **positive-filtered overlay** of `view`, under a [`SolveContext`].
    ///
    /// `view` is a view of the signed difference graph (masked by the top-k driver,
    /// full everywhere else); the solver adds the positive filter itself, so
    /// `G_{D+}` is never materialised and affinity jobs never copy the CSR.  The
    /// context is checked before every initialisation and after every SEACD shrink
    /// round (work units are coordinate-descent iterations), so a deadline,
    /// cancellation or exhausted budget returns the best incumbent found so far.
    /// Theorem-6 early-exit prunes are reported through both [`SmartInitStats`] and
    /// [`SolveStats::prunes`].  All scratch state — the µ ordering, core numbers,
    /// and the dense embedding arena shared with SEACD, the KKT shrink and the
    /// refinement — lives in the context's workspace.
    pub fn solve_on_view_bounded(
        &self,
        view: GraphView<'_>,
        seed: &[VertexId],
        cx: &SolveContext,
    ) -> (DcsgaSolution, SolveStats) {
        let mut meter = cx.meter();
        let threads = cx.threads();
        let mut ws = cx.workspace();
        let crate::workspace::SolverWorkspace {
            init_order,
            max_incident,
            dcsga,
            ..
        } = &mut *ws;
        let solution = sweep_in(
            &self.config,
            view,
            seed,
            &mut meter,
            init_order,
            max_incident,
            &mut dcsga.cores,
            &mut dcsga.arena,
            &mut dcsga.kernel,
            threads,
        );
        (solution, meter.finish())
    }

    /// The `FxHashMap`-backed **reference solve**: identical sweep, hash-arena
    /// storage, fresh buffers per call.  Kept as the oracle the property tests
    /// compare the dense workspace path against (results are bit-identical by
    /// construction — both run the same kernels); not a serving path.
    pub fn solve_seeded_reference(&self, gd: &SignedGraph, seed: &[VertexId]) -> DcsgaSolution {
        let cx = SolveContext::unbounded();
        let mut meter = cx.meter();
        let mut order = Vec::new();
        let mut max_incident = Vec::new();
        let mut cores = CoreScratch::default();
        let mut arena = HashArena::default();
        let mut kernel = KernelScratch::default();
        sweep_in(
            &self.config,
            GraphView::full(gd),
            seed,
            &mut meter,
            &mut order,
            &mut max_incident,
            &mut cores,
            &mut arena,
            &mut kernel,
            1,
        )
    }
}

/// Below this many alive vertices the µ_u ordering runs sequentially even under a
/// multi-thread budget: the scans are memory-bound and thread spawn overhead would
/// dominate.  Bit-identity makes the dispatch unobservable in results.
const PAR_INIT_MIN_VERTICES: usize = 2048;

/// The generic µ_u-ordered sweep shared by the dense (canonical) and hash
/// (reference) arenas.  `view` is the signed-graph view; the positive filter is
/// applied here.
#[allow(clippy::too_many_arguments)]
fn sweep_in<A: EmbeddingArena>(
    config: &DcsgaConfig,
    view: GraphView<'_>,
    seed: &[VertexId],
    meter: &mut WorkMeter,
    order: &mut Vec<(VertexId, Weight)>,
    max_incident: &mut Vec<Weight>,
    cores: &mut CoreScratch,
    arena: &mut A,
    kernel: &mut KernelScratch,
    threads: usize,
) -> DcsgaSolution {
    let pview = view.positive_part();
    let n = pview.num_vertices();
    let mut stats = SmartInitStats::default();
    if pview.alive_count() == 0 || !pview.has_edge() {
        return DcsgaSolution {
            embedding: Embedding::default(),
            affinity_difference: 0.0,
            stats,
        };
    }

    // --- Smart-initialisation upper bounds (Theorem 6), into reused buffers. -----
    if threads > 1 && pview.alive_count() >= PAR_INIT_MIN_VERTICES {
        smart_initialization_order_par_in(pview, order, max_incident, cores, threads);
    } else {
        smart_initialization_order_in(pview, order, max_incident, cores);
    }

    // --- Warm start: one run from the seed to establish a strong incumbent. ------
    let mut best_objective: Weight = 0.0;
    kernel.best_support.clear();
    kernel.best_values.clear();
    kernel.seed.clear();
    kernel.seed.extend(
        seed.iter()
            .copied()
            .filter(|&u| (u as usize) < n && pview.is_alive(u) && pview.degree(u) > 0),
    );
    kernel.seed.sort_unstable();
    kernel.seed.dedup();
    if !kernel.seed.is_empty() && !meter.stopped() {
        stats.seeded_runs += 1;
        meter.note_candidates(1);
        arena.begin(n);
        let share = 1.0 / kernel.seed.len() as f64;
        for i in 0..kernel.seed.len() {
            let u = kernel.seed[i];
            arena.set_x(u, share);
        }
        let run = run_arena(pview, config, arena, kernel, |units| !meter.tick(units));
        stats.expansion_errors += run.expansion_errors;
        refine_in(pview, config, arena, kernel);
        arena.support_into(&mut kernel.support);
        let objective = affinity_in(pview, arena, &kernel.support);
        if objective > best_objective {
            best_objective = objective;
            snapshot_best(arena, kernel);
        }
    }

    // --- Sweep in descending µ_u order with the early-exit bound. ----------------
    let mut sweep_span = dcs_obs::trace::span(dcs_obs::trace::Phase::MuSweep);
    for i in 0..order.len() {
        let (u, mu) = order[i];
        if mu <= best_objective {
            let skipped = order.len() - stats.initializations_run;
            stats.initializations_skipped += skipped;
            meter.note_prunes(skipped as u64);
            break;
        }
        if meter.stopped() {
            break;
        }
        stats.initializations_run += 1;
        meter.note_candidates(1);
        arena.begin(n);
        arena.set_x(u, 1.0);
        let run = run_arena(pview, config, arena, kernel, |units| !meter.tick(units));
        stats.expansion_errors += run.expansion_errors;
        refine_in(pview, config, arena, kernel);
        arena.support_into(&mut kernel.support);
        let objective = affinity_in(pview, arena, &kernel.support);
        if objective > best_objective {
            best_objective = objective;
            snapshot_best(arena, kernel);
        }
    }
    sweep_span.set_units(stats.initializations_run as u64);
    drop(sweep_span);

    let embedding = Embedding::from_weights(
        kernel
            .best_support
            .iter()
            .copied()
            .zip(kernel.best_values.iter().copied()),
    );
    DcsgaSolution {
        embedding,
        affinity_difference: best_objective,
        stats,
    }
}

/// Computes the smart-initialisation order: every non-isolated vertex of `G_{D+}` paired
/// with its upper bound `µ_u = τ_u·w_u/(τ_u+1)`, sorted by descending `µ_u`.
///
/// Exposed so the experiment harness can report how sharp the bound is.
pub fn smart_initialization_order(gd_plus: &SignedGraph) -> Vec<(VertexId, Weight)> {
    let mut order = Vec::new();
    let mut max_incident = Vec::new();
    smart_initialization_order_view_into(GraphView::full(gd_plus), &mut order, &mut max_incident);
    order
}

/// [`smart_initialization_order`] over a [`GraphView`], writing into reused
/// buffers: `order` receives the `(vertex, µ_u)` pairs (descending `µ_u`, alive
/// non-isolated vertices only), `max_incident` is per-vertex scratch.  The core
/// decomposition is still allocated per call; the solvers use
/// [`smart_initialization_order_in`] with workspace-owned [`CoreScratch`].
pub fn smart_initialization_order_view_into(
    view: GraphView<'_>,
    order: &mut Vec<(VertexId, Weight)>,
    max_incident: &mut Vec<Weight>,
) {
    let mut cores = CoreScratch::default();
    smart_initialization_order_in(view, order, max_incident, &mut cores);
}

/// [`smart_initialization_order_view_into`] with caller-owned core-decomposition
/// scratch: nothing allocates in steady state.  The view is usually the
/// positive-filtered overlay of `G_D`; on an unfiltered view the bound's `w_u`
/// input would see negative weights, which Theorem 6 does not cover, so callers
/// must pass a positive (or positively-weighted) view.
pub fn smart_initialization_order_in(
    view: GraphView<'_>,
    order: &mut Vec<(VertexId, Weight)>,
    max_incident: &mut Vec<Weight>,
    cores: &mut CoreScratch,
) {
    let n = view.num_vertices();
    // Maximum incident surviving edge weight per vertex.
    max_incident.clear();
    max_incident.resize(n, 0.0);
    for (u, v, w) in view.edges() {
        debug_assert!(w > 0.0, "G_D+ must only contain positive edges");
        if w > max_incident[u as usize] {
            max_incident[u as usize] = w;
        }
        if w > max_incident[v as usize] {
            max_incident[v as usize] = w;
        }
    }
    // w_u = max over the ego net T_u of the maximum incident weight — an upper bound on
    // the heaviest edge with at least one endpoint in T_u.
    core_numbers_view_into(view, cores);
    order.clear();
    for u in view.vertices() {
        if view.degree(u) == 0 {
            continue;
        }
        let mut w_u = max_incident[u as usize];
        for e in view.neighbors(u) {
            w_u = w_u.max(max_incident[e.neighbor as usize]);
        }
        let tau = cores.core[u as usize] as Weight;
        let mu = tau * w_u / (tau + 1.0);
        order.push((u, mu));
    }
    // Unstable sort: deterministic for a fixed input and allocation-free, unlike the
    // stable sort (which buffers half the slice per call).
    order.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
}

/// [`smart_initialization_order_in`] with the two vertex scans fanned out over
/// `threads` workers on disjoint ranges.
///
/// **Bit-identical to the sequential order.** The per-vertex maximum incident weight
/// is a `max` over the vertex's surviving row (edge visibility is symmetric, so the
/// row holds exactly the edges the sequential edge sweep credits to the vertex, and
/// `max` is reorder-safe); the `(u, µ_u)` pairs are produced per range and
/// concatenated in ascending range order, reproducing the sequential push order, so
/// the final deterministic sort sees an identical input slice.  The integer core
/// decomposition stays sequential (it is inherently ordered and cheap relative to
/// the weight scans).
pub fn smart_initialization_order_par_in(
    view: GraphView<'_>,
    order: &mut Vec<(VertexId, Weight)>,
    max_incident: &mut Vec<Weight>,
    cores: &mut CoreScratch,
    threads: usize,
) {
    if threads <= 1 {
        return smart_initialization_order_in(view, order, max_incident, cores);
    }
    let n = view.num_vertices();
    core_numbers_view_into(view, cores);
    max_incident.clear();
    max_incident.resize(n, 0.0);
    let chunk = n.div_ceil(threads).max(1);

    // Phase 1: per-vertex maximum incident weight, written to disjoint ranges.
    std::thread::scope(|scope| {
        for (t, slots) in max_incident.chunks_mut(chunk).enumerate() {
            let base = t * chunk;
            scope.spawn(move || {
                for (i, slot) in slots.iter_mut().enumerate() {
                    let u = (base + i) as VertexId;
                    if !view.is_alive(u) {
                        continue;
                    }
                    for e in view.neighbors(u) {
                        debug_assert!(e.weight > 0.0, "G_D+ must only contain positive edges");
                        if e.weight > *slot {
                            *slot = e.weight;
                        }
                    }
                }
            });
        }
    });

    // Phase 2: per-range `(u, µ_u)` lists, concatenated in ascending range order.
    let max_incident_ref: &[Weight] = max_incident;
    let core_ref: &[u32] = &cores.core;
    let per_range: Vec<Vec<(VertexId, Weight)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let v0 = (t * chunk).min(n);
                    let v1 = ((t + 1) * chunk).min(n);
                    let mut pairs = Vec::new();
                    for u in v0..v1 {
                        let u = u as VertexId;
                        if !view.is_alive(u) || view.degree(u) == 0 {
                            continue;
                        }
                        let mut w_u = max_incident_ref[u as usize];
                        for e in view.neighbors(u) {
                            w_u = w_u.max(max_incident_ref[e.neighbor as usize]);
                        }
                        let tau = core_ref[u as usize] as Weight;
                        pairs.push((u, tau * w_u / (tau + 1.0)));
                    }
                    pairs
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("µ_u scan worker panicked"))
            .collect()
    });

    order.clear();
    for pairs in per_range {
        order.extend(pairs);
    }
    order.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsga::{refine, SeaCd};
    use dcs_graph::GraphBuilder;

    /// A heavy 4-clique (weight 3), a lighter 5-clique (weight 1) and some noise edges.
    fn two_cliques() -> SignedGraph {
        let mut b = GraphBuilder::new(12);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 3.0);
            }
        }
        for u in 4..9u32 {
            for v in (u + 1)..9u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(3, 4, 0.5);
        b.add_edge(9, 10, 0.2);
        b.add_edge(10, 11, -1.0); // one negative edge: must be ignored via G_D+
        b.build()
    }

    #[test]
    fn finds_the_heavy_clique() {
        let gd = two_cliques();
        let sol = NewSea::default().solve(&gd);
        // Uniform on the heavy 4-clique: affinity 3·(1 − 1/4) = 2.25.
        assert!(
            (sol.affinity_difference - 2.25).abs() < 1e-4,
            "{}",
            sol.affinity_difference
        );
        assert_eq!(sol.support(), vec![0, 1, 2, 3]);
        assert!(gd.is_positive_clique(&sol.support()));
        assert_eq!(sol.stats.expansion_errors, 0);
    }

    #[test]
    fn smart_init_prunes_but_matches_full_sweep() {
        let gd = two_cliques();
        let gd_plus = gd.positive_part();
        let newsea = NewSea::default().solve(&gd);
        let full = SeaCd::default().sweep(&gd_plus, None, false, |g, x| {
            refine(g, x, &DcsgaConfig::default())
        });
        assert!((newsea.affinity_difference - full.best_objective).abs() < 1e-6);
        // The smart initialisation runs strictly fewer initialisations than the full
        // sweep on this instance.
        assert!(newsea.stats.initializations_run < full.initializations);
        assert!(newsea.stats.initializations_skipped > 0);
    }

    #[test]
    fn mu_is_a_valid_upper_bound() {
        // For every vertex u of the heavy clique, µ_u must be at least the affinity of
        // the best clique containing u (which is 2.25 for u in 0..4).
        let gd = two_cliques();
        let order = smart_initialization_order(&gd.positive_part());
        for &(u, mu) in &order {
            if u < 4 {
                assert!(mu >= 2.25 - 1e-9, "µ_{u} = {mu}");
            }
        }
        // And the ordering is non-increasing.
        for pair in order.windows(2) {
            assert!(pair[0].1 >= pair[1].1 - 1e-12);
        }
    }

    #[test]
    fn seeded_solve_matches_cold_solve_and_prunes_harder() {
        let gd = two_cliques();
        let cold = NewSea::default().solve(&gd);
        // Seeding with the known-good support reproduces the optimum while the
        // early-exit bound skips at least as many initialisations as the cold run.
        let warm = NewSea::default().solve_seeded(&gd, &[0, 1, 2, 3]);
        assert!((warm.affinity_difference - cold.affinity_difference).abs() < 1e-9);
        assert_eq!(warm.support(), cold.support());
        assert_eq!(warm.stats.seeded_runs, 1);
        assert!(warm.stats.initializations_run <= cold.stats.initializations_run);
        assert!(warm.stats.initializations_skipped >= cold.stats.initializations_skipped);
        // A useless seed (isolated / out-of-range vertices) degrades to a cold solve.
        let junk = NewSea::default().solve_seeded(&gd, &[99, 100]);
        assert_eq!(junk.stats.seeded_runs, 0);
        assert!((junk.affinity_difference - cold.affinity_difference).abs() < 1e-9);
    }

    #[test]
    fn no_positive_edges_yields_empty_solution() {
        let gd = GraphBuilder::from_edges(3, vec![(0, 1, -1.0), (1, 2, -2.0)]);
        let sol = NewSea::default().solve(&gd);
        assert!(sol.embedding.is_empty());
        assert_eq!(sol.affinity_difference, 0.0);
        assert_eq!(sol.stats.initializations_run, 0);
    }

    #[test]
    fn single_heavy_edge() {
        let gd = GraphBuilder::from_edges(4, vec![(0, 1, 10.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let sol = NewSea::default().solve(&gd);
        assert_eq!(sol.support(), vec![0, 1]);
        // Uniform on a single edge of weight 10: affinity 2·0.25·10 = 5.
        assert!((sol.affinity_difference - 5.0).abs() < 1e-6);
    }

    #[test]
    fn motzkin_straus_on_unweighted_graph() {
        // On an unweighted graph the DCSGA optimum equals 1 − 1/ω(G) (Motzkin–Straus).
        // Graph: K4 {0..3} plus a triangle {4,5,6} sharing no vertex, ω = 4.
        let mut b = GraphBuilder::new(7);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(4, 5, 1.0);
        b.add_edge(5, 6, 1.0);
        b.add_edge(4, 6, 1.0);
        let gd = b.build();
        let sol = NewSea::default().solve(&gd);
        assert!((sol.affinity_difference - 0.75).abs() < 1e-4);
        assert_eq!(sol.support().len(), 4);
    }

    #[test]
    fn reference_solve_matches_canonical_exactly() {
        let gd = two_cliques();
        for seed in [&[][..], &[0, 1, 2, 3][..], &[5, 6][..]] {
            let dense = NewSea::default().solve_seeded(&gd, seed);
            let reference = NewSea::default().solve_seeded_reference(&gd, seed);
            assert_eq!(dense.support(), reference.support());
            assert_eq!(
                dense.affinity_difference.to_bits(),
                reference.affinity_difference.to_bits()
            );
            assert_eq!(dense.stats, reference.stats);
        }
    }

    #[test]
    fn view_solve_equals_materialized_positive_part() {
        let gd = two_cliques();
        let via_view = NewSea::default().solve(&gd);
        let via_materialized = NewSea::default().solve_on_positive_part(&gd.positive_part());
        assert_eq!(via_view.support(), via_materialized.support());
        assert_eq!(
            via_view.affinity_difference.to_bits(),
            via_materialized.affinity_difference.to_bits()
        );
    }
}

//! SEACD — the Coordinate-Descent Shrink-and-Expansion algorithm (Algorithm 3).
//!
//! SEACD alternates two stages until no vertex can improve the solution:
//!
//! 1. **Shrink** — run the 2-coordinate descent of [`crate::dcsga::coord_descent`] on the
//!    current working support `S` until a local KKT point is reached (the support may
//!    shrink because coordinates can drop to 0),
//! 2. **Expansion** — compute `Z = {i | ∇_i f_D(x) > λ = 2 f_D(x)}` and, if non-empty,
//!    apply the SEA expansion step to pull those vertices into the support.
//!
//! Because the shrink stage really reaches a local KKT point (up to the configured
//! tolerance), the expansion step is guaranteed not to decrease the objective — unlike
//! the original SEA with its loose objective-improvement stopping rule.  Expansion errors
//! are still counted defensively and reported.
//!
//! The whole run lives in an [`EmbeddingArena`](super::arena::EmbeddingArena): the
//! iterate, the shrink's linear form, the expansion direction `γ` and the candidate
//! dedup marks are all arena state, and every edge read goes through a
//! [`GraphView`] — including **positive-filtered** views, so mining `G_{D+}` no
//! longer requires materialising it.  The sparse [`Embedding`] appears only at the
//! public entry points.

use dcs_densest::Embedding;
use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

use super::arena::{affinity_in, renormalize_in, weighted_sum_in, EmbeddingArena, KernelScratch};
use super::coord_descent::descend_in;
use super::refine::refine_in;
use super::{DcsgaConfig, DcsgaSolution, SmartInitStats};
use crate::engine::{SolveContext, SolveStats};
use crate::workspace::SolverWorkspace;

/// Result of one SEACD run (a single initialisation).
#[derive(Debug, Clone)]
pub struct SeaCdRun {
    /// Final embedding (a KKT point of Eq. 7 up to tolerance).
    pub embedding: Embedding,
    /// Final objective `f_D(x)`.
    pub objective: Weight,
    /// Number of shrink+expansion rounds.
    pub rounds: usize,
    /// Total 2-coordinate-descent iterations across all shrink stages.
    pub cd_iterations: usize,
    /// Number of expansion steps that decreased the objective (expected to stay 0).
    pub expansion_errors: usize,
}

/// Result of a sweep of SEACD over many initialisations (the `SEACD+Refine` comparator
/// runs one initialisation per vertex).
#[derive(Debug, Clone)]
pub struct SeaCdSweep {
    /// The best embedding found.
    pub best: Embedding,
    /// Its objective.
    pub best_objective: Weight,
    /// Number of initialisations performed.
    pub initializations: usize,
    /// Total expansion errors (expected 0).
    pub expansion_errors: usize,
    /// Every per-initialisation solution, kept only when requested (clique census).
    pub all_solutions: Vec<Embedding>,
}

/// The in-arena counterpart of [`SeaCdRun`]: the final iterate stays in the arena.
#[derive(Debug, Clone, Copy)]
pub(super) struct RunOutcome {
    /// Final objective `f_D(x)`.
    pub objective: f64,
    /// Number of shrink+expansion rounds.
    pub rounds: usize,
    /// Total 2-coordinate-descent iterations.
    pub cd_iterations: usize,
    /// Expansion steps that decreased the objective.
    pub expansion_errors: usize,
}

/// Gathers the expansion candidate set `Z = {i | ∇_i f(x) > λ + tol}` into
/// `scratch.z` (sorted ascending), looking only at view-surviving neighbours of the
/// support in `scratch.support`.
fn expansion_candidates_arena<A: EmbeddingArena>(
    view: GraphView<'_>,
    arena: &mut A,
    scratch: &mut KernelScratch,
    tol: f64,
) {
    let lambda = 2.0 * affinity_in(view, arena, &scratch.support);
    arena.marks_begin();
    scratch.z.clear();
    for i in 0..scratch.support.len() {
        let u = scratch.support[i];
        for e in view.neighbors(u) {
            let v = e.neighbor;
            if arena.x(v) > 0.0 || !arena.mark(v) {
                continue;
            }
            if 2.0 * weighted_sum_in(view, arena, v) > lambda + tol {
                scratch.z.push(v);
            }
        }
    }
    scratch.z.sort_unstable();
}

/// One SEA expansion step by the candidate set `scratch.z` (Appendix A of the paper):
/// moves mass from the support onto `Z` along `b`, with the closed-form optimal step
/// `τ`.  Returns `(objective_before, objective_after)`; the iterate is updated (and
/// renormalised) in the arena, `scratch.support` is refreshed.
fn expansion_step_arena<A: EmbeddingArena>(
    view: GraphView<'_>,
    arena: &mut A,
    scratch: &mut KernelScratch,
) -> (f64, f64) {
    let before = affinity_in(view, arena, &scratch.support);
    // γ_i = (Dx)_i − f(x) for i ∈ Z (candidates are unsupported by construction).
    arena.gamma_begin();
    for i in 0..scratch.z.len() {
        let v = scratch.z[i];
        let gamma = weighted_sum_in(view, arena, v) - before;
        arena.set_gamma(v, gamma);
    }
    let s: f64 = scratch
        .z
        .iter()
        .map(|&v| arena.gamma(v).unwrap_or(0.0))
        .sum();
    if s <= 0.0 {
        return (before, before);
    }
    let zeta: f64 = scratch
        .z
        .iter()
        .map(|&v| {
            let g = arena.gamma(v).unwrap_or(0.0);
            g * g
        })
        .sum();
    // ω = Σ_{i,j∈Z} γ_i γ_j D(i,j): iterate the view adjacency of Z members.
    let mut omega = 0.0;
    for &i in &scratch.z {
        let gi = arena.gamma(i).unwrap_or(0.0);
        for e in view.neighbors(i) {
            if let Some(gj) = arena.gamma(e.neighbor) {
                omega += gi * gj * e.weight;
            }
        }
    }
    let a = before * s * s + 2.0 * s * zeta - omega;
    let tau = if a <= 0.0 {
        1.0 / s
    } else {
        (1.0 / s).min(zeta / a)
    };

    // Apply x ← x + τ·b and renormalise.
    let shrink_factor = 1.0 - tau * s;
    for i in 0..scratch.support.len() {
        let v = scratch.support[i];
        let value = arena.x(v) * shrink_factor;
        arena.set_x(v, value);
    }
    for i in 0..scratch.z.len() {
        let v = scratch.z[i];
        let value = tau * arena.gamma(v).unwrap_or(0.0);
        arena.set_x(v, value);
    }
    renormalize_in(arena, &mut scratch.support);
    let after = affinity_in(view, arena, &scratch.support);
    (before, after)
}

/// The arena-resident SEACD run: shrink–expand from the arena's current embedding
/// until a KKT point (or `stop`) is reached.  The final iterate stays in the arena.
pub(super) fn run_arena<A: EmbeddingArena, F: FnMut(u64) -> bool>(
    view: GraphView<'_>,
    config: &DcsgaConfig,
    arena: &mut A,
    scratch: &mut KernelScratch,
    mut stop: F,
) -> RunOutcome {
    let mut rounds = 0usize;
    let mut cd_iterations = 0usize;
    let mut expansion_errors = 0usize;

    loop {
        rounds += 1;
        // Shrink: 2-coordinate descent to a local KKT point on the current support.
        arena.support_into(&mut scratch.support);
        if scratch.support.is_empty() {
            return RunOutcome {
                objective: 0.0,
                rounds,
                cd_iterations,
                expansion_errors,
            };
        }
        let eps = config.kkt_eps_factor / scratch.support.len() as f64;
        let mut shrink_span = dcs_obs::trace::span(dcs_obs::trace::Phase::CdShrink);
        let shrink = descend_in(view, arena, &scratch.support, eps, config.max_cd_iterations);
        shrink_span.set_units(shrink.iterations as u64);
        drop(shrink_span);
        cd_iterations += shrink.iterations;
        // The support may have shrunk (coordinates dropping to 0); renormalise the
        // survivors exactly like the sparse path's `Embedding::from_weights` did.
        renormalize_in(arena, &mut scratch.support);
        let interrupted = stop(shrink.iterations as u64 + 1);

        // Expansion candidates Z = {i | ∇_i > λ}; dead / filtered vertices never
        // qualify because every gradient is read through the view.
        expansion_candidates_arena(view, arena, scratch, config.candidate_tolerance);
        if interrupted || scratch.z.is_empty() || rounds >= config.max_rounds {
            let objective = affinity_in(view, arena, &scratch.support);
            return RunOutcome {
                objective,
                rounds,
                cd_iterations,
                expansion_errors,
            };
        }
        let mut expand_span = dcs_obs::trace::span(dcs_obs::trace::Phase::CdExpand);
        expand_span.set_units(scratch.z.len() as u64);
        let (before, after) = expansion_step_arena(view, arena, scratch);
        drop(expand_span);
        if after < before - 1e-12 {
            expansion_errors += 1;
        }
        // Drop numerical dust and renormalise, mirroring `Embedding::prune(1e-12)`.
        for i in 0..scratch.support.len() {
            let v = scratch.support[i];
            if arena.x(v) < 1e-12 {
                arena.set_x(v, 0.0);
            }
        }
        renormalize_in(arena, &mut scratch.support);
    }
}

/// The SEACD solver (Algorithm 3).
#[derive(Debug, Clone, Default)]
pub struct SeaCd {
    config: DcsgaConfig,
}

impl SeaCd {
    /// Creates a solver with an explicit configuration.
    pub fn new(config: DcsgaConfig) -> Self {
        SeaCd { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &DcsgaConfig {
        &self.config
    }

    /// Runs SEACD from an initial embedding on graph `g` (usually `G_{D+}`, but any
    /// signed graph is accepted — the shrink stage handles negative weights).
    pub fn run_from(&self, g: &SignedGraph, init: Embedding) -> SeaCdRun {
        self.run_from_until(g, init, |_| false)
    }

    /// [`Self::run_from`] with a **stop callback**: after every shrink stage,
    /// `stop(units)` is invoked with the coordinate-descent iterations just performed
    /// (plus one for the round itself) and the run returns its current KKT point as
    /// soon as the callback says stop.  The returned embedding is always a valid
    /// simplex point — just not necessarily a converged one.
    pub fn run_from_until<F: FnMut(u64) -> bool>(
        &self,
        g: &SignedGraph,
        init: Embedding,
        stop: F,
    ) -> SeaCdRun {
        self.run_on_view_until(GraphView::full(g), init, stop)
    }

    /// [`Self::run_from_until`] on a [`GraphView`]: the run is confined to the
    /// alive vertices and surviving edges (shrink support, expansion candidates and
    /// objective are all those of the filtered subgraph) without materialising it.
    /// Positive-filtered views are fully supported — this is how the canonical
    /// NewSEA path mines `G_{D+}` straight off the signed `G_D`.
    ///
    /// The initial embedding's support must be alive in the view.  This standalone
    /// entry builds a transient workspace per call; batch sweeps should reuse one
    /// through [`Self::run_on_view_in`].
    pub fn run_on_view_until<F: FnMut(u64) -> bool>(
        &self,
        view: GraphView<'_>,
        init: Embedding,
        stop: F,
    ) -> SeaCdRun {
        let mut ws = SolverWorkspace::new();
        self.run_on_view_in(view, init, &mut ws, stop)
    }

    /// [`Self::run_on_view_until`] against a caller-owned [`SolverWorkspace`]: the
    /// run borrows the workspace's dense embedding arena, so repeated runs (the
    /// parallel sweep workers, the census harness) allocate nothing in steady state.
    pub fn run_on_view_in<F: FnMut(u64) -> bool>(
        &self,
        view: GraphView<'_>,
        init: Embedding,
        ws: &mut SolverWorkspace,
        stop: F,
    ) -> SeaCdRun {
        debug_assert!(init.iter().all(|(u, _)| view.is_alive(u)));
        let dcsga = &mut ws.dcsga;
        dcsga.arena.begin(view.num_vertices());
        for (v, value) in init.iter() {
            dcsga.arena.set_x(v, value);
        }
        let out = run_arena(
            view,
            &self.config,
            &mut dcsga.arena,
            &mut dcsga.kernel,
            stop,
        );
        let embedding = export_embedding(&dcsga.arena, &mut dcsga.kernel);
        SeaCdRun {
            embedding,
            objective: out.objective,
            rounds: out.rounds,
            cd_iterations: out.cd_iterations,
            expansion_errors: out.expansion_errors,
        }
    }

    /// The `SEACD+Refine` comparator under a [`SolveContext`]: one initialisation per
    /// non-isolated vertex of `G_{D+}` (no smart-initialisation pruning), each refined
    /// by Algorithm 4, returning the best and stopping early when a bound trips.
    /// `G_{D+}` is a positive-filtered view of `gd` — never materialised.
    pub fn solve_bounded(
        &self,
        gd: &SignedGraph,
        cx: &SolveContext,
    ) -> (DcsgaSolution, SolveStats) {
        let pview = GraphView::full(gd).positive_part();
        let mut meter = cx.meter();
        let mut ws = cx.workspace();
        let dcsga = &mut ws.dcsga;
        let mut stats = SmartInitStats::default();
        let mut best_objective = 0.0;
        dcsga.kernel.best_support.clear();
        dcsga.kernel.best_values.clear();
        for u in pview.vertices() {
            if pview.degree(u) == 0 {
                continue;
            }
            if meter.stopped() {
                break;
            }
            stats.initializations_run += 1;
            meter.note_candidates(1);
            dcsga.arena.begin(pview.num_vertices());
            dcsga.arena.set_x(u, 1.0);
            let run = run_arena(
                pview,
                &self.config,
                &mut dcsga.arena,
                &mut dcsga.kernel,
                |units| !meter.tick(units),
            );
            stats.expansion_errors += run.expansion_errors;
            refine_in(pview, &self.config, &mut dcsga.arena, &mut dcsga.kernel);
            dcsga.arena.support_into(&mut dcsga.kernel.support);
            let objective = affinity_in(pview, &dcsga.arena, &dcsga.kernel.support);
            if objective > best_objective {
                best_objective = objective;
                snapshot_best(&dcsga.arena, &mut dcsga.kernel);
            }
        }
        let embedding = Embedding::from_weights(
            dcsga
                .kernel
                .best_support
                .iter()
                .copied()
                .zip(dcsga.kernel.best_values.iter().copied()),
        );
        (
            DcsgaSolution {
                embedding,
                affinity_difference: best_objective,
                stats,
            },
            meter.finish(),
        )
    }

    /// Runs SEACD from the singleton embedding `e_u`.
    pub fn run_from_vertex(&self, g: &SignedGraph, u: VertexId) -> SeaCdRun {
        self.run_from(g, Embedding::singleton(u))
    }

    /// Runs one initialisation per vertex of `g` (skipping isolated vertices) and keeps
    /// the best solution — the exhaustive sweep used by the `SEACD+Refine` comparator.
    ///
    /// `refine_with` is applied to every per-initialisation solution before it is scored
    /// (pass the Algorithm-4 refinement, or the identity for raw SEACD).  `limit`
    /// optionally caps the number of initialisations; `collect_all` retains all refined
    /// solutions for clique-census analyses.
    pub fn sweep<F>(
        &self,
        g: &SignedGraph,
        limit: Option<usize>,
        collect_all: bool,
        mut refine_with: F,
    ) -> SeaCdSweep
    where
        F: FnMut(&SignedGraph, Embedding) -> Embedding,
    {
        let n = g.num_vertices();
        let limit = limit.unwrap_or(n).min(n);
        let view = GraphView::full(g);
        let mut ws = SolverWorkspace::new();
        let mut best = Embedding::default();
        let mut best_objective = 0.0;
        let mut expansion_errors = 0usize;
        let mut initializations = 0usize;
        let mut all_solutions = Vec::new();
        for u in 0..limit as VertexId {
            if g.degree(u) == 0 {
                continue;
            }
            initializations += 1;
            let run = self.run_on_view_in(view, Embedding::singleton(u), &mut ws, |_| false);
            expansion_errors += run.expansion_errors;
            let refined = refine_with(g, run.embedding);
            let objective = refined.affinity(g);
            if objective > best_objective {
                best_objective = objective;
                best = refined.clone();
            }
            if collect_all {
                all_solutions.push(refined);
            }
        }
        SeaCdSweep {
            best,
            best_objective,
            initializations,
            expansion_errors,
            all_solutions,
        }
    }
}

/// Snapshots the arena's current support/values into the scratch's incumbent buffers.
pub(super) fn snapshot_best<A: EmbeddingArena>(arena: &A, scratch: &mut KernelScratch) {
    scratch.best_support.clear();
    scratch.best_values.clear();
    for i in 0..scratch.support.len() {
        let v = scratch.support[i];
        scratch.best_support.push(v);
        scratch.best_values.push(arena.x(v));
    }
}

/// Exports the arena's current embedding as a sparse [`Embedding`] (ascending
/// insertion order, so both arena backends produce bit-identical results).
pub(super) fn export_embedding<A: EmbeddingArena>(
    arena: &A,
    scratch: &mut KernelScratch,
) -> Embedding {
    arena.support_into(&mut scratch.support);
    Embedding::from_weights(scratch.support.iter().map(|&v| (v, arena.x(v))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsga::kkt::is_kkt_point;
    use dcs_graph::GraphBuilder;

    /// K5 (weight 1) plus a pendant path — affinity optimum 0.8 on the clique.
    fn k5_with_path() -> SignedGraph {
        let mut b = GraphBuilder::new(9);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(4, 5, 0.4);
        b.add_edge(5, 6, 0.4);
        b.add_edge(6, 7, 0.4);
        b.add_edge(7, 8, 0.4);
        b.build()
    }

    #[test]
    fn finds_the_clique_from_inside() {
        let g = k5_with_path();
        let run = SeaCd::default().run_from_vertex(&g, 0);
        assert!(
            (run.objective - 0.8).abs() < 1e-3,
            "objective {}",
            run.objective
        );
        assert_eq!(run.embedding.support(), vec![0, 1, 2, 3, 4]);
        assert_eq!(run.expansion_errors, 0);
    }

    #[test]
    fn output_is_a_kkt_point() {
        let g = k5_with_path();
        for u in [0u32, 4, 6, 8] {
            let run = SeaCd::default().run_from_vertex(&g, u);
            // The tolerance of the check mirrors the shrink tolerance.
            assert!(
                is_kkt_point(&g, &run.embedding, 0.05),
                "init {u} gave a non-KKT output"
            );
        }
    }

    #[test]
    fn sweep_finds_global_best() {
        let g = k5_with_path();
        let sweep = SeaCd::default().sweep(&g, None, true, |_, x| x);
        assert!((sweep.best_objective - 0.8).abs() < 1e-3);
        assert_eq!(sweep.expansion_errors, 0);
        assert_eq!(sweep.all_solutions.len(), sweep.initializations);
        assert!(sweep.initializations <= g.num_vertices());
    }

    #[test]
    fn works_on_signed_graphs() {
        // Positive triangle and a negative edge dangling off it; SEACD on the signed
        // graph itself must not put mass on the negative edge's far endpoint.
        let g =
            GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0), (2, 3, -5.0)]);
        let run = SeaCd::default().run_from_vertex(&g, 2);
        assert_eq!(run.embedding.support(), vec![0, 1, 2]);
        assert!((run.objective - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_vertex_initialisation() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        let run = SeaCd::default().run_from_vertex(&g, 2);
        assert_eq!(run.objective, 0.0);
        assert_eq!(run.embedding.support(), vec![2]);
    }

    #[test]
    fn sweep_limit_and_isolated_skip() {
        let g = GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (2, 3, 2.0)]);
        let sweep = SeaCd::default().sweep(&g, Some(3), false, |_, x| x);
        // vertex 4 is isolated and outside the limit anyway; vertices 0..3 minus none.
        assert_eq!(sweep.initializations, 3);
        assert!(sweep.best_objective > 0.0);
    }

    #[test]
    fn positive_view_run_matches_materialized_positive_part() {
        let g =
            GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0), (2, 3, -5.0)]);
        let on_view = SeaCd::default().run_on_view_until(
            GraphView::full(&g).positive_part(),
            Embedding::singleton(2),
            |_| false,
        );
        let on_materialized = SeaCd::default().run_from_vertex(&g.positive_part(), 2);
        assert_eq!(
            on_view.embedding.support(),
            on_materialized.embedding.support()
        );
        assert_eq!(on_view.objective, on_materialized.objective);
        assert_eq!(on_view.rounds, on_materialized.rounds);
    }
}

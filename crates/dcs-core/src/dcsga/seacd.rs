//! SEACD — the Coordinate-Descent Shrink-and-Expansion algorithm (Algorithm 3).
//!
//! SEACD alternates two stages until no vertex can improve the solution:
//!
//! 1. **Shrink** — run the 2-coordinate descent of [`crate::dcsga::coord_descent`] on the
//!    current working support `S` until a local KKT point is reached (the support may
//!    shrink because coordinates can drop to 0),
//! 2. **Expansion** — compute `Z = {i | ∇_i f_D(x) > λ = 2 f_D(x)}` and, if non-empty,
//!    apply the SEA expansion step to pull those vertices into the support.
//!
//! Because the shrink stage really reaches a local KKT point (up to the configured
//! tolerance), the expansion step is guaranteed not to decrease the objective — unlike
//! the original SEA with its loose objective-improvement stopping rule.  Expansion errors
//! are still counted defensively and reported.

use dcs_densest::expansion::{expansion_candidates_view, expansion_step};
use dcs_densest::Embedding;
use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

use super::coord_descent::descend_to_local_kkt;
use super::refine::refine;
use super::{DcsgaConfig, DcsgaSolution, SmartInitStats};
use crate::engine::{SolveContext, SolveStats};

/// Result of one SEACD run (a single initialisation).
#[derive(Debug, Clone)]
pub struct SeaCdRun {
    /// Final embedding (a KKT point of Eq. 7 up to tolerance).
    pub embedding: Embedding,
    /// Final objective `f_D(x)`.
    pub objective: Weight,
    /// Number of shrink+expansion rounds.
    pub rounds: usize,
    /// Total 2-coordinate-descent iterations across all shrink stages.
    pub cd_iterations: usize,
    /// Number of expansion steps that decreased the objective (expected to stay 0).
    pub expansion_errors: usize,
}

/// Result of a sweep of SEACD over many initialisations (the `SEACD+Refine` comparator
/// runs one initialisation per vertex).
#[derive(Debug, Clone)]
pub struct SeaCdSweep {
    /// The best embedding found.
    pub best: Embedding,
    /// Its objective.
    pub best_objective: Weight,
    /// Number of initialisations performed.
    pub initializations: usize,
    /// Total expansion errors (expected 0).
    pub expansion_errors: usize,
    /// Every per-initialisation solution, kept only when requested (clique census).
    pub all_solutions: Vec<Embedding>,
}

/// The SEACD solver (Algorithm 3).
#[derive(Debug, Clone, Default)]
pub struct SeaCd {
    config: DcsgaConfig,
}

impl SeaCd {
    /// Creates a solver with an explicit configuration.
    pub fn new(config: DcsgaConfig) -> Self {
        SeaCd { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &DcsgaConfig {
        &self.config
    }

    /// Runs SEACD from an initial embedding on graph `g` (usually `G_{D+}`, but any
    /// signed graph is accepted — the shrink stage handles negative weights).
    pub fn run_from(&self, g: &SignedGraph, init: Embedding) -> SeaCdRun {
        self.run_from_until(g, init, |_| false)
    }

    /// [`Self::run_from`] with a **stop callback**: after every shrink stage,
    /// `stop(units)` is invoked with the coordinate-descent iterations just performed
    /// (plus one for the round itself) and the run returns its current KKT point as
    /// soon as the callback says stop.  The returned embedding is always a valid
    /// simplex point — just not necessarily a converged one.
    pub fn run_from_until<F: FnMut(u64) -> bool>(
        &self,
        g: &SignedGraph,
        init: Embedding,
        stop: F,
    ) -> SeaCdRun {
        self.run_on_view_until(GraphView::full(g), init, stop)
    }

    /// [`Self::run_from_until`] on a masked [`GraphView`]: the run is confined to the
    /// alive vertices (shrink support, expansion candidates and objective are all
    /// those of the alive-induced subgraph) without materialising it.
    ///
    /// The view must not be positive-filtered — the shrink stage reads the underlying
    /// graph's edges between supported vertices directly, so callers mining `G_{D+}`
    /// pass a (masked) view over an already-materialised positive part, exactly as
    /// the NewSEA and top-k drivers do.  The initial embedding's support must be
    /// alive in the view.
    pub fn run_on_view_until<F: FnMut(u64) -> bool>(
        &self,
        view: GraphView<'_>,
        init: Embedding,
        mut stop: F,
    ) -> SeaCdRun {
        debug_assert!(
            !view.is_positive_only(),
            "SEACD runs on an already-positive working graph"
        );
        debug_assert!(init.iter().all(|(u, _)| view.is_alive(u)));
        let g = view.graph();
        let mut x = init;
        let mut rounds = 0usize;
        let mut cd_iterations = 0usize;
        let mut expansion_errors = 0usize;

        loop {
            rounds += 1;
            // Shrink: 2-coordinate descent to a local KKT point on the current support.
            let support = x.support();
            if support.is_empty() {
                return SeaCdRun {
                    embedding: x,
                    objective: 0.0,
                    rounds,
                    cd_iterations,
                    expansion_errors,
                };
            }
            let eps = self.config.kkt_eps_factor / support.len() as f64;
            let shrink = descend_to_local_kkt(g, &x, &support, eps, self.config.max_cd_iterations);
            cd_iterations += shrink.iterations;
            x = shrink.embedding;
            let interrupted = stop(shrink.iterations as u64 + 1);

            // Expansion candidates Z = {i | ∇_i > λ}; dead vertices never qualify.
            let z = expansion_candidates_view(view, &x, self.config.candidate_tolerance);
            if interrupted || z.is_empty() || rounds >= self.config.max_rounds {
                let objective = x.affinity(g);
                return SeaCdRun {
                    embedding: x,
                    objective,
                    rounds,
                    cd_iterations,
                    expansion_errors,
                };
            }
            let out = expansion_step(g, &x, &z);
            if out.is_error() {
                expansion_errors += 1;
            }
            x = out.embedding;
            x.prune(1e-12);
        }
    }

    /// The `SEACD+Refine` comparator under a [`SolveContext`]: one initialisation per
    /// non-isolated vertex of `G_{D+}` (no smart-initialisation pruning), each refined
    /// by Algorithm 4, returning the best and stopping early when a bound trips.
    pub fn solve_bounded(
        &self,
        gd: &SignedGraph,
        cx: &SolveContext,
    ) -> (DcsgaSolution, SolveStats) {
        let gd_plus = gd.positive_part();
        let mut meter = cx.meter();
        let mut stats = SmartInitStats::default();
        let mut best = Embedding::default();
        let mut best_objective = 0.0;
        for u in 0..gd_plus.num_vertices() as VertexId {
            if gd_plus.degree(u) == 0 {
                continue;
            }
            if meter.stopped() {
                break;
            }
            stats.initializations_run += 1;
            meter.note_candidates(1);
            let run = self.run_from_until(&gd_plus, Embedding::singleton(u), |units| {
                !meter.tick(units)
            });
            stats.expansion_errors += run.expansion_errors;
            let refined = refine(&gd_plus, run.embedding, &self.config);
            let objective = refined.affinity(&gd_plus);
            if objective > best_objective {
                best_objective = objective;
                best = refined;
            }
        }
        (
            DcsgaSolution {
                embedding: best,
                affinity_difference: best_objective,
                stats,
            },
            meter.finish(),
        )
    }

    /// Runs SEACD from the singleton embedding `e_u`.
    pub fn run_from_vertex(&self, g: &SignedGraph, u: VertexId) -> SeaCdRun {
        self.run_from(g, Embedding::singleton(u))
    }

    /// Runs one initialisation per vertex of `g` (skipping isolated vertices) and keeps
    /// the best solution — the exhaustive sweep used by the `SEACD+Refine` comparator.
    ///
    /// `refine_with` is applied to every per-initialisation solution before it is scored
    /// (pass the Algorithm-4 refinement, or the identity for raw SEACD).  `limit`
    /// optionally caps the number of initialisations; `collect_all` retains all refined
    /// solutions for clique-census analyses.
    pub fn sweep<F>(
        &self,
        g: &SignedGraph,
        limit: Option<usize>,
        collect_all: bool,
        mut refine_with: F,
    ) -> SeaCdSweep
    where
        F: FnMut(&SignedGraph, Embedding) -> Embedding,
    {
        let n = g.num_vertices();
        let limit = limit.unwrap_or(n).min(n);
        let mut best = Embedding::default();
        let mut best_objective = 0.0;
        let mut expansion_errors = 0usize;
        let mut initializations = 0usize;
        let mut all_solutions = Vec::new();
        for u in 0..limit as VertexId {
            if g.degree(u) == 0 {
                continue;
            }
            initializations += 1;
            let run = self.run_from_vertex(g, u);
            expansion_errors += run.expansion_errors;
            let refined = refine_with(g, run.embedding);
            let objective = refined.affinity(g);
            if objective > best_objective {
                best_objective = objective;
                best = refined.clone();
            }
            if collect_all {
                all_solutions.push(refined);
            }
        }
        SeaCdSweep {
            best,
            best_objective,
            initializations,
            expansion_errors,
            all_solutions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsga::kkt::is_kkt_point;
    use dcs_graph::GraphBuilder;

    /// K5 (weight 1) plus a pendant path — affinity optimum 0.8 on the clique.
    fn k5_with_path() -> SignedGraph {
        let mut b = GraphBuilder::new(9);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(4, 5, 0.4);
        b.add_edge(5, 6, 0.4);
        b.add_edge(6, 7, 0.4);
        b.add_edge(7, 8, 0.4);
        b.build()
    }

    #[test]
    fn finds_the_clique_from_inside() {
        let g = k5_with_path();
        let run = SeaCd::default().run_from_vertex(&g, 0);
        assert!(
            (run.objective - 0.8).abs() < 1e-3,
            "objective {}",
            run.objective
        );
        assert_eq!(run.embedding.support(), vec![0, 1, 2, 3, 4]);
        assert_eq!(run.expansion_errors, 0);
    }

    #[test]
    fn output_is_a_kkt_point() {
        let g = k5_with_path();
        for u in [0u32, 4, 6, 8] {
            let run = SeaCd::default().run_from_vertex(&g, u);
            // The tolerance of the check mirrors the shrink tolerance.
            assert!(
                is_kkt_point(&g, &run.embedding, 0.05),
                "init {u} gave a non-KKT output"
            );
        }
    }

    #[test]
    fn sweep_finds_global_best() {
        let g = k5_with_path();
        let sweep = SeaCd::default().sweep(&g, None, true, |_, x| x);
        assert!((sweep.best_objective - 0.8).abs() < 1e-3);
        assert_eq!(sweep.expansion_errors, 0);
        assert_eq!(sweep.all_solutions.len(), sweep.initializations);
        assert!(sweep.initializations <= g.num_vertices());
    }

    #[test]
    fn works_on_signed_graphs() {
        // Positive triangle and a negative edge dangling off it; SEACD on the signed
        // graph itself must not put mass on the negative edge's far endpoint.
        let g =
            GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0), (2, 3, -5.0)]);
        let run = SeaCd::default().run_from_vertex(&g, 2);
        assert_eq!(run.embedding.support(), vec![0, 1, 2]);
        assert!((run.objective - 4.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn isolated_vertex_initialisation() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        let run = SeaCd::default().run_from_vertex(&g, 2);
        assert_eq!(run.objective, 0.0);
        assert_eq!(run.embedding.support(), vec![2]);
    }

    #[test]
    fn sweep_limit_and_isolated_skip() {
        let g = GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (2, 3, 2.0)]);
        let sweep = SeaCd::default().sweep(&g, Some(3), false, |_, x| x);
        // vertex 4 is isolated and outside the limit anyway; vertices 0..3 minus none.
        assert_eq!(sweep.initializations, 3);
        assert!(sweep.best_objective > 0.0);
    }
}

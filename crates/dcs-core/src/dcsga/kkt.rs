//! Verification of the KKT conditions of the DCSGA problem (Eq. 7 and Eq. 10).
//!
//! A point `x ∈ Δn` is a KKT point of `max xᵀDx` iff there is a `λ` with
//!
//! ```text
//!   ∇_u f(x) = 2(Dx)_u  = λ   for every u with x_u > 0,
//!   ∇_u f(x) = 2(Dx)_u  ≤ λ   for every u with x_u = 0,
//! ```
//!
//! in which case `λ = 2·f(x)`.  The *local* KKT conditions on a working set `S`
//! (Eq. 10) are the same with the quantifier restricted to `u ∈ S`.
//!
//! These checks serve three purposes: unit/property tests of the solvers, the
//! expansion-error detection of the `SEA+Refine` comparator, and a public correctness
//! oracle for downstream users.

use dcs_densest::Embedding;
use dcs_graph::{GraphView, SignedGraph, VertexId};

/// The (global) KKT violation of `x`: the amount by which the most violating vertex
/// breaks the conditions above, i.e.
/// `max( max_u |∇_u − λ| over supported u , max_u (∇_u − λ)⁺ over unsupported u )`
/// with `λ = 2 f(x)`.  A true KKT point has violation 0.
pub fn kkt_violation(g: &SignedGraph, x: &Embedding) -> f64 {
    kkt_violation_view(GraphView::full(g), x)
}

/// [`kkt_violation`] over a [`GraphView`]: the conditions are those of the filtered
/// subgraph (dead vertices are outside the problem, filtered edges contribute no
/// gradient), so a view-based solve can be certified without materialising the view.
pub fn kkt_violation_view(view: GraphView<'_>, x: &Embedding) -> f64 {
    let lambda = 2.0 * x.affinity_view(view);
    let mut violation: f64 = 0.0;
    // Supported vertices: gradient must equal λ.
    for (u, _) in x.iter() {
        let grad = 2.0 * x.weighted_sum_at_view(view, u);
        violation = violation.max((grad - lambda).abs());
    }
    // Unsupported vertices: gradient must not exceed λ.  Only neighbours of the support
    // can have a non-zero gradient; for all the others ∇ = 0 which violates the condition
    // only if λ < 0 (then every vertex with ∇ = 0 > λ violates — check once).
    let mut checked_zero = false;
    for (u, _) in x.iter() {
        for e in view.neighbors(u) {
            let v = e.neighbor;
            if x.get(v) > 0.0 {
                continue;
            }
            let grad = 2.0 * x.weighted_sum_at_view(view, v);
            violation = violation.max((grad - lambda).max(0.0));
            checked_zero = true;
        }
    }
    if lambda < 0.0 && (!checked_zero || x.support_size() < view.alive_count()) {
        // Some vertex outside the support has gradient 0 > λ.
        violation = violation.max(-lambda);
    }
    violation
}

/// Returns `true` if `x` satisfies the KKT conditions of Eq. 7 within tolerance `eps`.
pub fn is_kkt_point(g: &SignedGraph, x: &Embedding, eps: f64) -> bool {
    kkt_violation(g, x) <= eps
}

/// [`is_kkt_point`] over a [`GraphView`].
pub fn is_kkt_point_view(view: GraphView<'_>, x: &Embedding, eps: f64) -> bool {
    kkt_violation_view(view, x) <= eps
}

/// The local KKT gap of Eq. 11 restricted to the working set `support`:
/// `max_{k∈S, x_k<1} ∇_k f(x) − min_{k∈S, x_k>0} ∇_k f(x)` (clamped at 0).
pub fn local_kkt_gap(g: &SignedGraph, x: &Embedding, support: &[VertexId]) -> f64 {
    local_kkt_gap_view(GraphView::full(g), x, support)
}

/// [`local_kkt_gap`] over a [`GraphView`].
pub fn local_kkt_gap_view(view: GraphView<'_>, x: &Embedding, support: &[VertexId]) -> f64 {
    let mut max_grad = f64::NEG_INFINITY;
    let mut min_grad = f64::INFINITY;
    for &k in support {
        let grad = 2.0 * x.weighted_sum_at_view(view, k);
        let xk = x.get(k);
        if xk < 1.0 {
            max_grad = max_grad.max(grad);
        }
        if xk > 0.0 {
            min_grad = min_grad.min(grad);
        }
    }
    if max_grad == f64::NEG_INFINITY || min_grad == f64::INFINITY {
        0.0
    } else {
        (max_grad - min_grad).max(0.0)
    }
}

/// Returns `true` if `x` is a local KKT point on `support` within tolerance `eps`
/// (Eq. 10/11).
pub fn is_local_kkt_point(g: &SignedGraph, x: &Embedding, support: &[VertexId], eps: f64) -> bool {
    local_kkt_gap(g, x, support) <= eps
}

/// [`kkt_violation_view`] scanned by `threads` workers over disjoint vertex ranges.
///
/// **Bit-identical to the sequential oracle.** Every per-vertex gradient is the same
/// CSR-row-order sum the sequential scan computes, and the reduction is a pure
/// `max`/`or`, which is reorder-safe; per-range results are merged in ascending range
/// order.  The sequential scan reaches unsupported vertices through the support's
/// adjacency lists; this one scans the whole alive range and keeps exactly the
/// vertices with at least one supported neighbour — the same set, because edge
/// visibility in a [`GraphView`] is symmetric.
pub fn kkt_violation_view_par(view: GraphView<'_>, x: &Embedding, threads: usize) -> f64 {
    if threads <= 1 {
        return kkt_violation_view(view, x);
    }
    let lambda = 2.0 * x.affinity_view(view);
    let support = x.support();
    let support = &support;
    let n = view.num_vertices();
    let support_chunk = support.len().div_ceil(threads).max(1);
    let vertex_chunk = n.div_ceil(threads).max(1);

    let merged: Vec<(f64, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut violation: f64 = 0.0;
                    // Supported vertices of this range: gradient must equal λ.
                    let s0 = (t * support_chunk).min(support.len());
                    let s1 = ((t + 1) * support_chunk).min(support.len());
                    for &u in &support[s0..s1] {
                        let grad = 2.0 * x.weighted_sum_at_view(view, u);
                        violation = violation.max((grad - lambda).abs());
                    }
                    // Unsupported vertices of this range adjacent to the support:
                    // gradient must not exceed λ.
                    let v0 = (t * vertex_chunk).min(n);
                    let v1 = ((t + 1) * vertex_chunk).min(n);
                    let mut checked_zero = false;
                    for v in v0..v1 {
                        let v = v as VertexId;
                        if !view.is_alive(v) || x.get(v) > 0.0 {
                            continue;
                        }
                        let adjacent = view.neighbors(v).any(|e| x.get(e.neighbor) > 0.0);
                        if !adjacent {
                            continue;
                        }
                        let grad = 2.0 * x.weighted_sum_at_view(view, v);
                        violation = violation.max((grad - lambda).max(0.0));
                        checked_zero = true;
                    }
                    (violation, checked_zero)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("KKT scan worker panicked"))
            .collect()
    });

    let mut violation: f64 = 0.0;
    let mut checked_zero = false;
    for (part, checked) in merged {
        violation = violation.max(part);
        checked_zero |= checked;
    }
    if lambda < 0.0 && (!checked_zero || x.support_size() < view.alive_count()) {
        violation = violation.max(-lambda);
    }
    violation
}

/// [`local_kkt_gap_view`] scanned by `threads` workers over disjoint ranges of the
/// working set.  Bit-identical to the sequential gap: per-vertex gradients are the
/// same row-order sums and the `max`/`min` reductions are reorder-safe; per-range
/// extrema are merged in ascending range order.
pub fn local_kkt_gap_view_par(
    view: GraphView<'_>,
    x: &Embedding,
    support: &[VertexId],
    threads: usize,
) -> f64 {
    if threads <= 1 {
        return local_kkt_gap_view(view, x, support);
    }
    let chunk = support.len().div_ceil(threads).max(1);
    let merged: Vec<(f64, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = support
            .chunks(chunk)
            .map(|range| {
                scope.spawn(move || {
                    let mut max_grad = f64::NEG_INFINITY;
                    let mut min_grad = f64::INFINITY;
                    for &k in range {
                        let grad = 2.0 * x.weighted_sum_at_view(view, k);
                        let xk = x.get(k);
                        if xk < 1.0 {
                            max_grad = max_grad.max(grad);
                        }
                        if xk > 0.0 {
                            min_grad = min_grad.min(grad);
                        }
                    }
                    (max_grad, min_grad)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("local KKT scan worker panicked"))
            .collect()
    });

    let mut max_grad = f64::NEG_INFINITY;
    let mut min_grad = f64::INFINITY;
    for (hi, lo) in merged {
        max_grad = max_grad.max(hi);
        min_grad = min_grad.min(lo);
    }
    if max_grad == f64::NEG_INFINITY || min_grad == f64::INFINITY {
        0.0
    } else {
        (max_grad - min_grad).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn k3() -> SignedGraph {
        GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
    }

    #[test]
    fn uniform_clique_is_global_kkt() {
        let g = k3();
        let x = Embedding::uniform(&[0, 1, 2]);
        assert!(is_kkt_point(&g, &x, 1e-9));
        assert!(kkt_violation(&g, &x) < 1e-12);
    }

    #[test]
    fn sub_clique_is_local_but_not_global_kkt() {
        let g = k3();
        let x = Embedding::uniform(&[0, 1]);
        // Local KKT on {0, 1}: yes.
        assert!(is_local_kkt_point(&g, &x, &[0, 1], 1e-9));
        // Global: vertex 2 has gradient 2 > λ = 1 → violation 1.
        assert!(!is_kkt_point(&g, &x, 1e-6));
        assert!((kkt_violation(&g, &x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_point_is_not_kkt() {
        let g = k3();
        let x = Embedding::from_weights(vec![(0, 0.7), (1, 0.3)]);
        assert!(!is_local_kkt_point(&g, &x, &[0, 1], 1e-6));
        assert!(local_kkt_gap(&g, &x, &[0, 1]) > 0.1);
    }

    #[test]
    fn singleton_is_local_kkt_on_itself() {
        let g = k3();
        let x = Embedding::singleton(0);
        assert!(is_local_kkt_point(&g, &x, &[0], 1e-12));
        // Globally it is not (neighbours have positive gradient vs λ = 0).
        assert!(!is_kkt_point(&g, &x, 1e-6));
    }

    #[test]
    fn negative_lambda_flags_outside_vertices() {
        // Support {0,1} joined by a negative edge: f < 0, so λ < 0 and any isolated
        // vertex (gradient 0) violates the KKT conditions.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, -2.0)]);
        let x = Embedding::uniform(&[0, 1]);
        assert!(x.affinity(&g) < 0.0);
        assert!(kkt_violation(&g, &x) >= -2.0 * x.affinity(&g) - 1e-12);
        assert!(!is_kkt_point(&g, &x, 1e-6));
    }

    #[test]
    fn local_gap_zero_for_empty_support_slice() {
        let g = k3();
        let x = Embedding::uniform(&[0, 1]);
        assert_eq!(local_kkt_gap(&g, &x, &[]), 0.0);
    }
}

//! DCS with respect to **graph affinity** (DCSGA, Section V of the paper).
//!
//! The optimisation problem is `max_{x ∈ Δn} f_D(x) = xᵀDx` on the signed difference
//! graph.  It is an NP-hard, generally non-concave quadratic program (Theorem 3), so the
//! paper develops local-search machinery around Karush-Kuhn-Tucker (KKT) points:
//!
//! * [`coord_descent`] — the 2-coordinate-descent shrink that replaces the replicator
//!   dynamics of the original SEA (which cannot handle negative weights),
//! * [`kkt`] — verification of the (local) KKT conditions, Eq. 7/10,
//! * [`SeaCd`] — Algorithm 3: alternate the 2-CD shrink with the SEA expansion,
//! * [`refine`] — Algorithm 4: improve any KKT point to a *positive-clique* solution
//!   (Theorem 5 guarantees this never decreases the objective),
//! * [`NewSea`] — Algorithm 5: SEACD + refinement + the smart-initialisation order and
//!   early-exit bound `µ_u = τ_u·w_u/(τ_u+1)` (Theorem 6).
//!
//! All three solvers operate on `G_{D+}` internally (Theorem 5 shows an optimal solution
//! is always a positive clique of `G_D`, i.e. a clique of `G_{D+}`) — as a
//! **positive-filtered [`dcs_graph::GraphView`]** of the signed difference graph,
//! never as a materialised copy.
//!
//! ## Dense workspace-backed embeddings
//!
//! Every kernel in this module runs on an [`arena::EmbeddingArena`]: the working
//! embedding `x`, the shrink's linear form `(Dx)_k`, the expansion direction `γ` and
//! the candidate-dedup marks are indexed, dense arrays
//! ([`dcs_densest::DenseEmbedding`] + `Vec<f64>` + [`dcs_graph::VertexMask`]) owned
//! by the [`crate::SolverWorkspace`] and reused across SEACD restarts, top-k rounds,
//! α-sweep grid points and server jobs — where the original implementation built
//! fresh `FxHashMap`s per stage.  That reference implementation survives as
//! [`arena::HashArena`] behind [`NewSea::solve_seeded_reference`]: both backends run
//! the same monomorphised kernels with every floating-point reduction in explicit
//! ascending-vertex order, so dense solves are **bit-identical** to reference solves
//! (property-tested in `dcsga_dense_properties.rs`).

pub mod arena;
pub mod coord_descent;
pub mod kkt;
mod newsea;
mod parallel;
mod refine;
mod seacd;

pub use arena::DcsgaScratch;
pub use coord_descent::{descend_to_local_kkt, CoordDescentOutcome};
pub use newsea::{
    smart_initialization_order, smart_initialization_order_in, smart_initialization_order_par_in,
    smart_initialization_order_view_into, NewSea, SmartInitStats,
};
pub use parallel::{parallel_newsea, parallel_sweep};
pub use refine::{refine, refine_with_workspace};
pub use seacd::{SeaCd, SeaCdRun, SeaCdSweep};

use dcs_densest::Embedding;
use dcs_graph::{SignedGraph, VertexId, Weight};

/// Configuration shared by the DCSGA solvers.
#[derive(Debug, Clone, Copy)]
pub struct DcsgaConfig {
    /// The shrink stage stops when the local KKT gap on the current support `S` drops
    /// below `kkt_eps_factor / |S|` (the paper uses `10⁻² · 1/|S|`).
    pub kkt_eps_factor: f64,
    /// Hard cap on 2-coordinate-descent iterations per shrink stage.
    pub max_cd_iterations: usize,
    /// Tolerance when selecting expansion candidates (`∇_i > λ + tol`).
    pub candidate_tolerance: f64,
    /// Maximum number of shrink+expansion rounds per initialisation.
    pub max_rounds: usize,
}

impl Default for DcsgaConfig {
    fn default() -> Self {
        DcsgaConfig {
            kkt_eps_factor: 1e-2,
            max_cd_iterations: 200_000,
            candidate_tolerance: 1e-9,
            max_rounds: 1_000,
        }
    }
}

/// Solution of the DCSGA problem.
#[derive(Debug, Clone)]
pub struct DcsgaSolution {
    /// The mined subgraph embedding (a positive-clique solution after refinement).
    pub embedding: Embedding,
    /// The affinity difference `xᵀDx`.
    pub affinity_difference: Weight,
    /// Statistics about the initialisation sweep that produced the solution.
    pub stats: SmartInitStats,
}

impl DcsgaSolution {
    /// The support set of the solution, sorted ascending.
    pub fn support(&self) -> Vec<VertexId> {
        self.embedding.support()
    }
}

/// A positive clique found during an all-initialisations sweep, used by the clique-census
/// experiments (Table V, Fig. 3).
#[derive(Debug, Clone)]
pub struct CliqueSolution {
    /// The clique's vertex set, sorted ascending.
    pub support: Vec<VertexId>,
    /// The embedding that produced it.
    pub embedding: Embedding,
    /// Its affinity difference.
    pub affinity: Weight,
}

/// Deduplicates the solutions of an all-initialisations sweep the way the paper does for
/// Table V and Fig. 3: exact duplicates are merged and cliques that are subsets of other
/// found cliques are dropped.  The result is sorted by descending affinity.
pub fn clique_census(gd: &SignedGraph, solutions: &[Embedding]) -> Vec<CliqueSolution> {
    let mut seen: rustc_hash::FxHashSet<Vec<VertexId>> = rustc_hash::FxHashSet::default();
    let mut cliques: Vec<CliqueSolution> = Vec::new();
    for x in solutions {
        if x.is_empty() {
            continue;
        }
        let support = x.support();
        if !seen.insert(support.clone()) {
            continue;
        }
        cliques.push(CliqueSolution {
            affinity: x.affinity(gd),
            support,
            embedding: x.clone(),
        });
    }
    // Drop cliques strictly contained in another clique.
    let mut keep = vec![true; cliques.len()];
    for i in 0..cliques.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..cliques.len() {
            if i == j || !keep[i] {
                continue;
            }
            if cliques[j].support.len() > cliques[i].support.len()
                && is_subset(&cliques[i].support, &cliques[j].support)
            {
                keep[i] = false;
            }
        }
    }
    let mut out: Vec<CliqueSolution> = cliques
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| k.then_some(c))
        .collect();
    out.sort_by(|a, b| {
        b.affinity
            .partial_cmp(&a.affinity)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    out
}

/// `true` if sorted slice `a` is a subset of sorted slice `b`.
fn is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Less => {}
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    #[test]
    fn subset_helper() {
        assert!(is_subset(&[1, 3], &[1, 2, 3, 4]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 5], &[1, 2, 3, 4]));
        assert!(!is_subset(&[0, 1], &[1, 2]));
        assert!(is_subset(&[2], &[2]));
    }

    #[test]
    fn census_dedups_and_drops_subsets() {
        let gd =
            GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 5.0)]);
        let solutions = vec![
            Embedding::uniform(&[0, 1, 2]),
            Embedding::uniform(&[0, 1]), // subset of the triangle → dropped
            Embedding::uniform(&[0, 1, 2]), // duplicate → dropped
            Embedding::uniform(&[3, 4]),
            Embedding::default(), // empty → ignored
        ];
        let census = clique_census(&gd, &solutions);
        assert_eq!(census.len(), 2);
        // Sorted by affinity: the heavy pair (2*0.25*5 = 2.5) before the triangle (2/3).
        assert_eq!(census[0].support, vec![3, 4]);
        assert_eq!(census[1].support, vec![0, 1, 2]);
        assert!(census[0].affinity > census[1].affinity);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = DcsgaConfig::default();
        assert!(cfg.kkt_eps_factor > 0.0);
        assert!(cfg.max_cd_iterations > 0);
        assert!(cfg.max_rounds > 0);
    }
}

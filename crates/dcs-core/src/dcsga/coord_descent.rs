//! The 2-coordinate-descent shrink stage (Section V-B of the paper).
//!
//! Each iteration picks the two coordinates with the largest KKT violation,
//! `i = argmax_{k ∈ S, x_k < 1} ∇_k f_D(x)` and `j = argmin_{k ∈ S, x_k > 0} ∇_k f_D(x)`,
//! and redistributes their joint mass `C = x_i + x_j` by solving the one-dimensional
//! problem of Eq. 9 in closed form.  Unlike the replicator dynamics of the original SEA,
//! this works for matrices with **negative** entries and is guaranteed to converge to a
//! local KKT point on the working support `S` (the objective is non-decreasing and the
//! iterate stays on the simplex).
//!
//! The inner loop is generic over an [`super::arena::EmbeddingArena`]: the canonical
//! dense arena keeps `x` and the linear form `(Dx)_k` in workspace-owned arrays
//! (zero allocations in steady state, where the old implementation built two
//! `FxHashMap`s per call), and every edge read goes through a [`GraphView`], so the
//! same kernel serves the signed `G_D`, a materialised `G_{D+}`, and the
//! positive-filtered / masked overlays of the NewSEA and top-k drivers.

use dcs_densest::Embedding;
use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

use super::arena::{DenseArena, EmbeddingArena, KernelScratch};

/// Outcome of a 2-coordinate-descent run.
#[derive(Debug, Clone)]
pub struct CoordDescentOutcome {
    /// The final embedding (a local KKT point on the working support, up to `epsilon`).
    pub embedding: Embedding,
    /// Final objective `f_D(x)`.
    pub objective: Weight,
    /// Number of coordinate updates performed.
    pub iterations: usize,
    /// Final KKT gap on the working support.
    pub kkt_gap: f64,
    /// Whether the gap criterion was met (as opposed to exhausting `max_iterations`).
    pub converged: bool,
}

/// Outcome of the in-arena shrink: the iterate itself stays in the arena.
#[derive(Debug, Clone, Copy)]
pub(super) struct DescendOutcome {
    /// Final objective `f_D(x)` (computed before renormalisation).
    pub objective: f64,
    /// Number of coordinate updates performed.
    pub iterations: usize,
    /// Final KKT gap on the working support.
    pub kkt_gap: f64,
    /// Whether the gap criterion was met.
    pub converged: bool,
}

/// The arena-resident 2-coordinate descent: shrinks the arena's embedding to a local
/// KKT point on `support` over the view's surviving edges.  `support` must be sorted
/// and deduplicated and contain the embedding's support.
pub(super) fn descend_in<A: EmbeddingArena>(
    view: GraphView<'_>,
    arena: &mut A,
    support: &[VertexId],
    epsilon: f64,
    max_iterations: usize,
) -> DescendOutcome {
    // Initialise the linear form (Dx)_k for every k in the working support.
    arena.dx_begin(support);
    for &u in support {
        let xu = arena.x(u);
        if xu == 0.0 {
            continue;
        }
        for e in view.neighbors(u) {
            arena.dx_add(e.neighbor, e.weight * xu);
        }
    }

    let mut iterations = 0usize;
    let mut converged = false;
    let mut kkt_gap = 0.0;

    loop {
        // Pick i = argmax over k ∈ S with x_k < 1, j = argmin over k ∈ S with x_k > 0.
        let mut best_i: Option<(VertexId, f64)> = None;
        let mut best_j: Option<(VertexId, f64)> = None;
        for &k in support {
            let grad = 2.0 * arena.dx(k);
            let xk = arena.x(k);
            if xk < 1.0 {
                match best_i {
                    None => best_i = Some((k, grad)),
                    Some((_, gi)) if grad > gi => best_i = Some((k, grad)),
                    _ => {}
                }
            }
            if xk > 0.0 {
                match best_j {
                    None => best_j = Some((k, grad)),
                    Some((_, gj)) if grad < gj => best_j = Some((k, grad)),
                    _ => {}
                }
            }
        }
        let (i, grad_i) = match best_i {
            Some(v) => v,
            None => {
                // All mass sits on a single vertex and S contains nothing else: the local
                // KKT conditions on S hold trivially.
                converged = true;
                break;
            }
        };
        let (j, grad_j) = match best_j {
            Some(v) => v,
            None => {
                // Empty embedding: nothing to move, trivially a fixed point.
                converged = true;
                break;
            }
        };
        kkt_gap = (grad_i - grad_j).max(0.0);
        if grad_i <= grad_j + epsilon || i == j {
            converged = true;
            break;
        }
        if iterations >= max_iterations {
            break;
        }
        iterations += 1;

        // Closed-form solution of Eq. 9 for the pair (i, j).
        let xi = arena.x(i);
        let xj = arena.x(j);
        let c = xi + xj;
        let dij = view.edge_weight(i, j).unwrap_or(0.0);
        let bi = arena.dx(i) - dij * xj;
        let bj = arena.dx(j) - dij * xi;

        let new_xi = if dij == 0.0 {
            // Linear in x_i: move all mass to the endpoint with the larger coefficient.
            if bi > bj {
                c
            } else if bi < bj {
                0.0
            } else {
                xi
            }
        } else {
            // g(x_i) = −dij·x_i² + B·x_i + const with B = dij·C + b_i − b_j; the best
            // of the endpoints {0, C} and (for concave g) the interior stationary
            // point r, later candidates winning ties.
            let b_coef = dij * c + bi - bj;
            let r = b_coef / (2.0 * dij);
            let eval = |t: f64| -dij * t * t + b_coef * t;
            let mut best_t = 0.0;
            let mut best_val = eval(0.0);
            if eval(c) >= best_val {
                best_t = c;
                best_val = eval(c);
            }
            if dij > 0.0 && r >= 0.0 && r <= c && eval(r) >= best_val {
                best_t = r;
            }
            best_t
        };
        let new_xj = c - new_xi;
        let delta_i = new_xi - xi;
        let delta_j = new_xj - xj;
        if delta_i == 0.0 && delta_j == 0.0 {
            // No progress possible for this pair (can happen at ties); we are done.
            converged = true;
            break;
        }
        arena.set_x(i, new_xi);
        arena.set_x(j, new_xj);
        // Update the linear forms of the support neighbours of i and j.
        if delta_i != 0.0 {
            for e in view.neighbors(i) {
                arena.dx_add(e.neighbor, e.weight * delta_i);
            }
        }
        if delta_j != 0.0 {
            for e in view.neighbors(j) {
                arena.dx_add(e.neighbor, e.weight * delta_j);
            }
        }
    }

    // f(x) = Σ_k x_k (Dx)_k, reduced in ascending support order.
    let mut objective = 0.0;
    for &k in support {
        objective += arena.x(k) * arena.dx(k);
    }
    DescendOutcome {
        objective,
        iterations,
        kkt_gap,
        converged,
    }
}

/// Runs 2-coordinate descent restricted to the working support `support` (the set `S` of
/// the paper's *local* KKT conditions, Eq. 10).  Vertices outside `support` keep value 0;
/// vertices inside `support` may gain or lose mass (including dropping to 0).
///
/// * `x0` — starting embedding; its support must be contained in `support`.
/// * `epsilon` — stop when
///   `max_{k∈S, x_k<1} ∇_k f − min_{k∈S, x_k>0} ∇_k f ≤ epsilon`.
/// * `max_iterations` — hard iteration cap.
///
/// This is the standalone entry point (a transient [`DenseArena`] per call); the
/// solvers run the same kernel on their workspace-owned arena instead.
pub fn descend_to_local_kkt(
    g: &SignedGraph,
    x0: &Embedding,
    support: &[VertexId],
    epsilon: f64,
    max_iterations: usize,
) -> CoordDescentOutcome {
    let mut support: Vec<VertexId> = support.to_vec();
    support.sort_unstable();
    support.dedup();
    debug_assert!(
        x0.support()
            .iter()
            .all(|v| support.binary_search(v).is_ok()),
        "the initial support must be contained in the working support"
    );

    let mut arena = DenseArena::default();
    arena.begin(g.num_vertices());
    for (v, value) in x0.iter() {
        arena.set_x(v, value);
    }
    let out = descend_in(
        GraphView::full(g),
        &mut arena,
        &support,
        epsilon,
        max_iterations,
    );
    let mut scratch = KernelScratch::default();
    arena.support_into(&mut scratch.support);
    let embedding = Embedding::from_weights(scratch.support.iter().map(|&v| (v, arena.x(v))));
    CoordDescentOutcome {
        objective: out.objective,
        embedding,
        iterations: out.iterations,
        kkt_gap: out.kkt_gap,
        converged: out.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsga::kkt::local_kkt_gap;
    use dcs_graph::GraphBuilder;

    fn k4() -> SignedGraph {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn reaches_motzkin_straus_on_clique() {
        let g = k4();
        let support: Vec<u32> = vec![0, 1, 2, 3];
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &support, 1e-9, 100_000);
        assert!(out.converged);
        assert!(
            (out.objective - 0.75).abs() < 1e-6,
            "objective {}",
            out.objective
        );
        assert!(local_kkt_gap(&g, &out.embedding, &support) <= 1e-6);
    }

    #[test]
    fn objective_non_decreasing_from_uniform() {
        let g = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 3.0),
                (1, 2, -2.0),
                (2, 3, 4.0),
                (3, 4, 1.0),
                (0, 4, -1.0),
                (1, 3, 2.0),
            ],
        );
        let support: Vec<u32> = vec![0, 1, 2, 3, 4];
        let x0 = Embedding::uniform(&support);
        let f0 = x0.affinity(&g);
        let out = descend_to_local_kkt(&g, &x0, &support, 1e-8, 100_000);
        assert!(out.objective >= f0 - 1e-12);
        assert!((out.embedding.affinity(&g) - out.objective).abs() < 1e-9);
        assert!(out.converged);
    }

    #[test]
    fn handles_negative_weights_by_dropping_vertices() {
        // Heavy positive edge (0,1), vertex 2 attached only negatively: the optimum on
        // the full support puts zero mass on 2.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 4.0), (1, 2, -3.0), (0, 2, -3.0)]);
        let out = descend_to_local_kkt(
            &g,
            &Embedding::uniform(&[0, 1, 2]),
            &[0, 1, 2],
            1e-10,
            100_000,
        );
        assert!(out.converged);
        assert_eq!(out.embedding.support(), vec![0, 1]);
        assert!((out.objective - 2.0).abs() < 1e-6); // 2·(1/2)·(1/2)·4
    }

    #[test]
    fn restricted_support_is_respected() {
        let g = k4();
        // Only {0, 1} are allowed: the optimum is the uniform edge with affinity 0.5.
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &[0, 1], 1e-10, 10_000);
        assert_eq!(out.embedding.support(), vec![0, 1]);
        assert!((out.objective - 0.5).abs() < 1e-9);
    }

    #[test]
    fn singleton_support_is_immediate_kkt() {
        let g = k4();
        let out = descend_to_local_kkt(&g, &Embedding::singleton(2), &[2], 1e-10, 10);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.objective, 0.0);
        assert_eq!(out.embedding.support(), vec![2]);
    }

    #[test]
    fn zero_mass_vertex_in_support_can_gain_mass() {
        let g = k4();
        // Start with mass only on 0 but allow {0, 1}: vertex 1 must receive mass.
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &[0, 1], 1e-10, 10_000);
        assert!(out.embedding.get(1) > 0.4);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = k4();
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &[0, 1, 2, 3], 0.0, 3);
        assert!(out.iterations <= 3);
    }

    #[test]
    fn positive_view_hides_negative_edges_from_the_shrink() {
        // On the positive-filtered view the negative edges to vertex 2 vanish, so the
        // shrink treats {0,1,2} like a path-less pair plus an isolated vertex.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 4.0), (1, 2, -3.0), (0, 2, -3.0)]);
        let mut arena = DenseArena::default();
        arena.begin(3);
        let share = 1.0 / 3.0;
        for v in 0..3u32 {
            arena.set_x(v, share);
        }
        let out = descend_in(
            GraphView::full(&g).positive_part(),
            &mut arena,
            &[0, 1, 2],
            1e-10,
            100_000,
        );
        assert!(out.converged);
        // Identical to descending on the materialised positive part.
        let reference = descend_to_local_kkt(
            &g.positive_part(),
            &Embedding::uniform(&[0, 1, 2]),
            &[0, 1, 2],
            1e-10,
            100_000,
        );
        assert_eq!(out.objective, reference.objective);
    }
}

//! The 2-coordinate-descent shrink stage (Section V-B of the paper).
//!
//! Each iteration picks the two coordinates with the largest KKT violation,
//! `i = argmax_{k ∈ S, x_k < 1} ∇_k f_D(x)` and `j = argmin_{k ∈ S, x_k > 0} ∇_k f_D(x)`,
//! and redistributes their joint mass `C = x_i + x_j` by solving the one-dimensional
//! problem of Eq. 9 in closed form.  Unlike the replicator dynamics of the original SEA,
//! this works for matrices with **negative** entries and is guaranteed to converge to a
//! local KKT point on the working support `S` (the objective is non-decreasing and the
//! iterate stays on the simplex).

use dcs_densest::Embedding;
use dcs_graph::{SignedGraph, VertexId, Weight};
use rustc_hash::FxHashMap;

/// Outcome of a 2-coordinate-descent run.
#[derive(Debug, Clone)]
pub struct CoordDescentOutcome {
    /// The final embedding (a local KKT point on the working support, up to `epsilon`).
    pub embedding: Embedding,
    /// Final objective `f_D(x)`.
    pub objective: Weight,
    /// Number of coordinate updates performed.
    pub iterations: usize,
    /// Final KKT gap on the working support.
    pub kkt_gap: f64,
    /// Whether the gap criterion was met (as opposed to exhausting `max_iterations`).
    pub converged: bool,
}

/// Runs 2-coordinate descent restricted to the working support `support` (the set `S` of
/// the paper's *local* KKT conditions, Eq. 10).  Vertices outside `support` keep value 0;
/// vertices inside `support` may gain or lose mass (including dropping to 0).
///
/// * `x0` — starting embedding; its support must be contained in `support`.
/// * `epsilon` — stop when
///   `max_{k∈S, x_k<1} ∇_k f − min_{k∈S, x_k>0} ∇_k f ≤ epsilon`.
/// * `max_iterations` — hard iteration cap.
pub fn descend_to_local_kkt(
    g: &SignedGraph,
    x0: &Embedding,
    support: &[VertexId],
    epsilon: f64,
    max_iterations: usize,
) -> CoordDescentOutcome {
    let mut support: Vec<VertexId> = support.to_vec();
    support.sort_unstable();
    support.dedup();
    debug_assert!(
        x0.support()
            .iter()
            .all(|v| support.binary_search(v).is_ok()),
        "the initial support must be contained in the working support"
    );

    // Working state: x values and the linear form (Dx)_k for every k in the support.
    let mut x: FxHashMap<VertexId, f64> = FxHashMap::default();
    for &v in &support {
        x.insert(v, x0.get(v));
    }
    let mut dx: FxHashMap<VertexId, f64> = FxHashMap::default();
    for &v in &support {
        dx.insert(v, 0.0);
    }
    for (&u, &xu) in &x {
        if xu == 0.0 {
            continue;
        }
        for e in g.neighbors(u) {
            if let Some(entry) = dx.get_mut(&e.neighbor) {
                *entry += e.weight * xu;
            }
        }
    }

    let mut iterations = 0usize;
    let mut converged = false;
    let mut kkt_gap = 0.0;

    loop {
        // Pick i = argmax over k ∈ S with x_k < 1, j = argmin over k ∈ S with x_k > 0.
        let mut best_i: Option<(VertexId, f64)> = None;
        let mut best_j: Option<(VertexId, f64)> = None;
        for &k in &support {
            let grad = 2.0 * dx[&k];
            let xk = x[&k];
            if xk < 1.0 {
                match best_i {
                    None => best_i = Some((k, grad)),
                    Some((_, gi)) if grad > gi => best_i = Some((k, grad)),
                    _ => {}
                }
            }
            if xk > 0.0 {
                match best_j {
                    None => best_j = Some((k, grad)),
                    Some((_, gj)) if grad < gj => best_j = Some((k, grad)),
                    _ => {}
                }
            }
        }
        let (i, grad_i) = match best_i {
            Some(v) => v,
            None => {
                // All mass sits on a single vertex and S contains nothing else: the local
                // KKT conditions on S hold trivially.
                converged = true;
                break;
            }
        };
        let (j, grad_j) = match best_j {
            Some(v) => v,
            None => {
                // Empty embedding: nothing to move, trivially a fixed point.
                converged = true;
                break;
            }
        };
        kkt_gap = (grad_i - grad_j).max(0.0);
        if grad_i <= grad_j + epsilon || i == j {
            converged = true;
            break;
        }
        if iterations >= max_iterations {
            break;
        }
        iterations += 1;

        // Closed-form solution of Eq. 9 for the pair (i, j).
        let xi = x[&i];
        let xj = x[&j];
        let c = xi + xj;
        let dij = g.edge_weight(i, j).unwrap_or(0.0);
        let bi = dx[&i] - dij * xj;
        let bj = dx[&j] - dij * xi;

        let new_xi = if dij == 0.0 {
            // Linear in x_i: move all mass to the endpoint with the larger coefficient.
            if bi > bj {
                c
            } else if bi < bj {
                0.0
            } else {
                xi
            }
        } else {
            // g(x_i) = −dij·x_i² + B·x_i + const with B = dij·C + b_i − b_j.
            let b_coef = dij * c + bi - bj;
            let r = b_coef / (2.0 * dij);
            let eval = |t: f64| -dij * t * t + b_coef * t;
            let mut candidates = vec![0.0, c];
            if dij > 0.0 && r >= 0.0 && r <= c {
                candidates.push(r);
            }
            candidates
                .into_iter()
                .max_by(|a, b| {
                    eval(*a)
                        .partial_cmp(&eval(*b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(xi)
        };
        let new_xj = c - new_xi;
        let delta_i = new_xi - xi;
        let delta_j = new_xj - xj;
        if delta_i == 0.0 && delta_j == 0.0 {
            // No progress possible for this pair (can happen at ties); we are done.
            converged = true;
            break;
        }
        x.insert(i, new_xi);
        x.insert(j, new_xj);
        // Update the linear forms of the support neighbours of i and j.
        if delta_i != 0.0 {
            for e in g.neighbors(i) {
                if let Some(entry) = dx.get_mut(&e.neighbor) {
                    *entry += e.weight * delta_i;
                }
            }
        }
        if delta_j != 0.0 {
            for e in g.neighbors(j) {
                if let Some(entry) = dx.get_mut(&e.neighbor) {
                    *entry += e.weight * delta_j;
                }
            }
        }
    }

    // Assemble the outcome.  f(x) = Σ_k x_k (Dx)_k.
    let objective: f64 = x.iter().map(|(k, &xk)| xk * dx[k]).sum();
    let embedding = Embedding::from_weights(x.into_iter().filter(|&(_, v)| v > 0.0));
    CoordDescentOutcome {
        objective,
        embedding,
        iterations,
        kkt_gap,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcsga::kkt::local_kkt_gap;
    use dcs_graph::GraphBuilder;

    fn k4() -> SignedGraph {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn reaches_motzkin_straus_on_clique() {
        let g = k4();
        let support: Vec<u32> = vec![0, 1, 2, 3];
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &support, 1e-9, 100_000);
        assert!(out.converged);
        assert!(
            (out.objective - 0.75).abs() < 1e-6,
            "objective {}",
            out.objective
        );
        assert!(local_kkt_gap(&g, &out.embedding, &support) <= 1e-6);
    }

    #[test]
    fn objective_non_decreasing_from_uniform() {
        let g = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 3.0),
                (1, 2, -2.0),
                (2, 3, 4.0),
                (3, 4, 1.0),
                (0, 4, -1.0),
                (1, 3, 2.0),
            ],
        );
        let support: Vec<u32> = vec![0, 1, 2, 3, 4];
        let x0 = Embedding::uniform(&support);
        let f0 = x0.affinity(&g);
        let out = descend_to_local_kkt(&g, &x0, &support, 1e-8, 100_000);
        assert!(out.objective >= f0 - 1e-12);
        assert!((out.embedding.affinity(&g) - out.objective).abs() < 1e-9);
        assert!(out.converged);
    }

    #[test]
    fn handles_negative_weights_by_dropping_vertices() {
        // Heavy positive edge (0,1), vertex 2 attached only negatively: the optimum on
        // the full support puts zero mass on 2.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 4.0), (1, 2, -3.0), (0, 2, -3.0)]);
        let out = descend_to_local_kkt(
            &g,
            &Embedding::uniform(&[0, 1, 2]),
            &[0, 1, 2],
            1e-10,
            100_000,
        );
        assert!(out.converged);
        assert_eq!(out.embedding.support(), vec![0, 1]);
        assert!((out.objective - 2.0).abs() < 1e-6); // 2·(1/2)·(1/2)·4
    }

    #[test]
    fn restricted_support_is_respected() {
        let g = k4();
        // Only {0, 1} are allowed: the optimum is the uniform edge with affinity 0.5.
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &[0, 1], 1e-10, 10_000);
        assert_eq!(out.embedding.support(), vec![0, 1]);
        assert!((out.objective - 0.5).abs() < 1e-9);
    }

    #[test]
    fn singleton_support_is_immediate_kkt() {
        let g = k4();
        let out = descend_to_local_kkt(&g, &Embedding::singleton(2), &[2], 1e-10, 10);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.objective, 0.0);
        assert_eq!(out.embedding.support(), vec![2]);
    }

    #[test]
    fn zero_mass_vertex_in_support_can_gain_mass() {
        let g = k4();
        // Start with mass only on 0 but allow {0, 1}: vertex 1 must receive mass.
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &[0, 1], 1e-10, 10_000);
        assert!(out.embedding.get(1) > 0.4);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = k4();
        let out = descend_to_local_kkt(&g, &Embedding::singleton(0), &[0, 1, 2, 3], 0.0, 3);
        assert!(out.iterations <= 3);
    }
}

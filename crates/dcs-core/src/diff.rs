//! Construction of the difference graph `G_D` from a pair of graphs (Section III-B/III-D).
//!
//! The standard difference graph has affinity matrix `D = A2 − A1`; the paper also uses
//! two practically important generalisations which are implemented here:
//!
//! * the **α-scaled** difference `D = A2 − α·A1` (Section III-D), which mines subgraphs
//!   whose density in `G2` exceeds `α` times their density in `G1`, and
//! * the **Discrete** setting (Section VI-B), which maps raw weight differences to small
//!   integers so that a handful of extremely heavy edges cannot dominate the DCS, plus
//!   the weight-clamping variant used for the Actor dataset.

use dcs_graph::{GraphBuilder, SignedGraph, VertexId, Weight};

use crate::error::DcsError;

/// How raw weight differences are turned into difference-graph weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightScheme {
    /// `D(u,v) = A2(u,v) − A1(u,v)` (the paper's "Weighted" setting).
    Weighted,
    /// `D(u,v) = A2(u,v) − α·A1(u,v)`.
    Scaled {
        /// The scaling factor `α` applied to `G1`.
        alpha: Weight,
    },
    /// Discretised differences (the paper's "Discrete" setting); see [`DiscreteRule`].
    Discrete(DiscreteRule),
}

/// The discretisation rule of Section VI-B.
///
/// With the paper's DBLP defaults (`strong = 5`, `weak = 2`, `negative_strong = 4`):
///
/// | raw difference `d = A2 − A1` | discrete weight |
/// |------------------------------|-----------------|
/// | `d ≥ 5`                      | `+2`            |
/// | `2 ≤ d < 5`                  | `+1`            |
/// | `−4 < d < 0`                 | `−1`            |
/// | `d ≤ −4`                     | `−2`            |
/// | otherwise (`0 ≤ d < 2`)      | `0` (no edge)   |
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteRule {
    /// Differences at or above this become `+2`.
    pub strong: Weight,
    /// Differences at or above this (but below `strong`) become `+1`.
    pub weak: Weight,
    /// Differences at or below `−negative_strong` become `−2`; negative differences
    /// above that become `−1`.
    pub negative_strong: Weight,
}

impl Default for DiscreteRule {
    fn default() -> Self {
        DiscreteRule {
            strong: 5.0,
            weak: 2.0,
            negative_strong: 4.0,
        }
    }
}

impl DiscreteRule {
    /// Maps a raw difference to its discrete weight.
    pub fn apply(&self, d: Weight) -> Weight {
        if d >= self.strong {
            2.0
        } else if d >= self.weak {
            1.0
        } else if d <= -self.negative_strong {
            -2.0
        } else if d < 0.0 {
            -1.0
        } else {
            0.0
        }
    }
}

/// Builds the standard difference graph `G_D` with `D = A2 − A1`.
///
/// Both inputs must be non-negatively weighted graphs over the same vertex set; the
/// result may have edges of either sign.  Edges where the difference is exactly zero are
/// dropped (they are not in `E_D` by definition).
pub fn difference_graph(g2: &SignedGraph, g1: &SignedGraph) -> Result<SignedGraph, DcsError> {
    difference_graph_with(g2, g1, WeightScheme::Weighted)
}

/// Builds the α-scaled difference graph `D = A2 − α·A1`.
pub fn scaled_difference_graph(
    g2: &SignedGraph,
    g1: &SignedGraph,
    alpha: Weight,
) -> Result<SignedGraph, DcsError> {
    difference_graph_with(g2, g1, WeightScheme::Scaled { alpha })
}

/// Builds a difference graph under an explicit [`WeightScheme`].
pub fn difference_graph_with(
    g2: &SignedGraph,
    g1: &SignedGraph,
    scheme: WeightScheme,
) -> Result<SignedGraph, DcsError> {
    if g1.num_vertices() != g2.num_vertices() {
        return Err(DcsError::VertexCountMismatch {
            g1_vertices: g1.num_vertices(),
            g2_vertices: g2.num_vertices(),
        });
    }
    if g1.min_edge_weight().unwrap_or(0.0) < 0.0 {
        return Err(DcsError::NegativeInputWeight { which: "G1" });
    }
    if g2.min_edge_weight().unwrap_or(0.0) < 0.0 {
        return Err(DcsError::NegativeInputWeight { which: "G2" });
    }

    let n = g1.num_vertices();
    let mut builder = GraphBuilder::new(n);
    // Raw differences, accumulated per edge: start from A2 then subtract A1.
    // Using the Sum policy means adding (u,v,+a2) and (u,v,-a1) merges correctly.
    for (u, v, w) in g2.edges() {
        builder.add_edge(u, v, w);
    }
    let alpha = match scheme {
        WeightScheme::Scaled { alpha } => alpha,
        _ => 1.0,
    };
    for (u, v, w) in g1.edges() {
        builder.add_edge(u, v, -alpha * w);
    }
    let raw = builder.build();

    let gd = match scheme {
        WeightScheme::Weighted | WeightScheme::Scaled { .. } => raw,
        WeightScheme::Discrete(rule) => raw.map_weights(|d| rule.apply(d)),
    };
    Ok(gd)
}

/// Recycled CSR buffers handed back and forth between
/// [`ScaledDifferenceTemplate::materialize_with`] and
/// [`SignedGraph::into_raw_csr`], so a sweep re-uses one set of arrays for every α.
pub type CsrBuffers = (Vec<usize>, Vec<VertexId>, Vec<Weight>);

/// The merged edge structure of a graph pair, built **once**, from which the
/// α-scaled difference graph `D = A2 − α·A1` can be materialised for any α without
/// re-walking either input.
///
/// The α-sweep used to construct each grid point's difference graph through a fresh
/// [`GraphBuilder`] (two full edge walks, bucket/sort/merge, five allocations); with
/// the template, every α is one linear pass over the merged rows writing
/// `w2 − α·w1` into recycled CSR buffers.  Entries whose scaled weight is exactly
/// zero are dropped, matching [`scaled_difference_graph`] bit for bit.
#[derive(Debug, Clone)]
pub struct ScaledDifferenceTemplate {
    /// `offsets[v]..offsets[v+1]` indexes the merged adjacency of vertex `v`.
    offsets: Vec<usize>,
    /// Merged neighbor ids (union of both graphs' rows, sorted).
    neighbors: Vec<VertexId>,
    /// `A2(v, neighbor)` per slot (0 where only `G1` has the edge).
    w2: Vec<Weight>,
    /// `A1(v, neighbor)` per slot (0 where only `G2` has the edge).
    w1: Vec<Weight>,
}

impl ScaledDifferenceTemplate {
    /// Merges the adjacency structures of `g2` and `g1` (validating them exactly like
    /// [`difference_graph`]: same vertex count, non-negative weights).
    pub fn new(g2: &SignedGraph, g1: &SignedGraph) -> Result<Self, DcsError> {
        if g1.num_vertices() != g2.num_vertices() {
            return Err(DcsError::VertexCountMismatch {
                g1_vertices: g1.num_vertices(),
                g2_vertices: g2.num_vertices(),
            });
        }
        if g1.min_edge_weight().unwrap_or(0.0) < 0.0 {
            return Err(DcsError::NegativeInputWeight { which: "G1" });
        }
        if g2.min_edge_weight().unwrap_or(0.0) < 0.0 {
            return Err(DcsError::NegativeInputWeight { which: "G2" });
        }
        let n = g1.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        let mut w2 = Vec::new();
        let mut w1 = Vec::new();
        for v in 0..n as VertexId {
            let (n2, ws2) = g2.neighbor_slices(v);
            let (n1, ws1) = g1.neighbor_slices(v);
            debug_assert!(
                n2.windows(2).all(|w| w[0] < w[1]),
                "builder rows are sorted"
            );
            debug_assert!(
                n1.windows(2).all(|w| w[0] < w[1]),
                "builder rows are sorted"
            );
            let (mut i, mut j) = (0usize, 0usize);
            while i < n2.len() || j < n1.len() {
                match (n2.get(i), n1.get(j)) {
                    (Some(&a), Some(&b)) if a == b => {
                        neighbors.push(a);
                        w2.push(ws2[i]);
                        w1.push(ws1[j]);
                        i += 1;
                        j += 1;
                    }
                    (Some(&a), Some(&b)) if a < b => {
                        neighbors.push(a);
                        w2.push(ws2[i]);
                        w1.push(0.0);
                        i += 1;
                    }
                    (Some(_), Some(&b)) => {
                        neighbors.push(b);
                        w2.push(0.0);
                        w1.push(ws1[j]);
                        j += 1;
                    }
                    (Some(&a), None) => {
                        neighbors.push(a);
                        w2.push(ws2[i]);
                        w1.push(0.0);
                        i += 1;
                    }
                    (None, Some(&b)) => {
                        neighbors.push(b);
                        w2.push(0.0);
                        w1.push(ws1[j]);
                        j += 1;
                    }
                    (None, None) => unreachable!("loop condition"),
                }
            }
            offsets.push(neighbors.len());
        }
        Ok(ScaledDifferenceTemplate {
            offsets,
            neighbors,
            w2,
            w1,
        })
    }

    /// Number of vertices of the pair.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Materialises `D = A2 − α·A1` into the recycled `buffers`, returning the graph.
    ///
    /// Hand the previous grid point's graph back through
    /// [`SignedGraph::into_raw_csr`] and the sweep allocates nothing after the first
    /// α.  Zero-weight entries are dropped (both directions symmetrically), so the
    /// result equals [`scaled_difference_graph`] exactly.
    pub fn materialize_with(&self, alpha: Weight, buffers: CsrBuffers) -> SignedGraph {
        let (mut offsets, mut neighbors, mut weights) = buffers;
        offsets.clear();
        neighbors.clear();
        weights.clear();
        let n = self.num_vertices();
        offsets.reserve(n + 1);
        offsets.push(0);
        for v in 0..n {
            for slot in self.offsets[v]..self.offsets[v + 1] {
                let w = self.w2[slot] - alpha * self.w1[slot];
                if w != 0.0 {
                    neighbors.push(self.neighbors[slot]);
                    weights.push(w);
                }
            }
            offsets.push(neighbors.len());
        }
        // Invariants hold by construction (the template rows are sorted and
        // symmetric, zero weights are skipped above), so the validating
        // `from_raw_csr` scan would be pure overhead on this α-sweep hot path.
        SignedGraph::from_raw_csr_unchecked(offsets, neighbors, weights)
    }

    /// [`Self::materialize_with`] into fresh buffers.
    pub fn materialize(&self, alpha: Weight) -> SignedGraph {
        self.materialize_with(alpha, CsrBuffers::default())
    }
}

/// Clamps every edge weight of a (difference) graph to `[-max_abs, max_abs]`.
///
/// Section III-D recommends down-weighting extremely heavy edges so that a single edge
/// does not dominate the DCS; the paper's Actor "Discrete" setting caps weights at 10.
pub fn clamp_weights(gd: &SignedGraph, max_abs: Weight) -> SignedGraph {
    gd.map_weights(|w| w.clamp(-max_abs, max_abs))
}

/// Logarithmically damps edge weights beyond `pivot`: weights with `|w| ≤ pivot` are kept
/// as they are, heavier ones become `sign(w)·(pivot + ln(1 + |w| − pivot))`.
///
/// This is the softer alternative to [`clamp_weights`] for the Section III-D adjustment:
/// a single extremely heavy edge no longer dominates the DCS, but the ordering among
/// heavy edges is preserved (clamping makes them all indistinguishable).
pub fn damp_heavy_weights(gd: &SignedGraph, pivot: Weight) -> SignedGraph {
    assert!(pivot > 0.0, "the damping pivot must be positive");
    gd.map_weights(|w| {
        if w.abs() <= pivot {
            w
        } else {
            w.signum() * (pivot + (1.0 + (w.abs() - pivot)).ln())
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// The example of Fig. 1: G1 and G2 over 5 vertices (0-indexed).
    /// G1: (v1,v4)=2, (v2,v3)... we use the figure's edge weights:
    ///   G1: (0,3)=2, (2,3)=2, (2,4)=3, (3,4)=1,  (0,1) missing, ...
    ///   G2: (0,1)=1, (2,3)=5, (2,4)=2, (3,4)=3, (0,3) missing...
    /// chosen so that GD matches Fig. 1: (0,1)=1, (0,3)=-2, (2,3)=3, (2,4)=-1, (3,4)=2.
    fn fig1_pair() -> (SignedGraph, SignedGraph) {
        let g1 =
            GraphBuilder::from_edges(5, vec![(0, 3, 2.0), (2, 3, 2.0), (2, 4, 3.0), (3, 4, 1.0)]);
        let g2 =
            GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (2, 3, 5.0), (2, 4, 2.0), (3, 4, 3.0)]);
        (g1, g2)
    }

    #[test]
    fn weighted_difference_matches_fig1() {
        let (g1, g2) = fig1_pair();
        let gd = difference_graph(&g2, &g1).unwrap();
        assert_eq!(gd.num_vertices(), 5);
        assert_eq!(gd.num_edges(), 5);
        assert_eq!(gd.edge_weight(0, 1), Some(1.0));
        assert_eq!(gd.edge_weight(0, 3), Some(-2.0));
        assert_eq!(gd.edge_weight(2, 3), Some(3.0));
        assert_eq!(gd.edge_weight(2, 4), Some(-1.0));
        assert_eq!(gd.edge_weight(3, 4), Some(2.0));
        assert_eq!(gd.num_positive_edges(), 3);
        assert_eq!(gd.num_negative_edges(), 2);
    }

    #[test]
    fn identical_graphs_give_empty_difference() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 2.0), (1, 2, 3.0)]);
        let gd = difference_graph(&g, &g).unwrap();
        assert_eq!(gd.num_edges(), 0);
    }

    #[test]
    fn scaled_difference() {
        let g1 = GraphBuilder::from_edges(2, vec![(0, 1, 2.0)]);
        let g2 = GraphBuilder::from_edges(2, vec![(0, 1, 3.0)]);
        let gd = scaled_difference_graph(&g2, &g1, 2.0).unwrap();
        assert_eq!(gd.edge_weight(0, 1), Some(-1.0)); // 3 - 2*2
        let gd = scaled_difference_graph(&g2, &g1, 0.5).unwrap();
        assert_eq!(gd.edge_weight(0, 1), Some(2.0)); // 3 - 0.5*2
    }

    #[test]
    fn discrete_rule_paper_defaults() {
        let rule = DiscreteRule::default();
        assert_eq!(rule.apply(7.0), 2.0);
        assert_eq!(rule.apply(5.0), 2.0);
        assert_eq!(rule.apply(4.9), 1.0);
        assert_eq!(rule.apply(2.0), 1.0);
        assert_eq!(rule.apply(1.0), 0.0);
        assert_eq!(rule.apply(0.0), 0.0);
        assert_eq!(rule.apply(-1.0), -1.0);
        assert_eq!(rule.apply(-3.9), -1.0);
        assert_eq!(rule.apply(-4.0), -2.0);
        assert_eq!(rule.apply(-10.0), -2.0);
    }

    #[test]
    fn discrete_difference_graph() {
        let g1 = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 10.0), (2, 3, 3.0)]);
        let g2 = GraphBuilder::from_edges(4, vec![(0, 1, 7.0), (1, 2, 1.0), (2, 3, 4.0)]);
        let gd = difference_graph_with(&g2, &g1, WeightScheme::Discrete(DiscreteRule::default()))
            .unwrap();
        assert_eq!(gd.edge_weight(0, 1), Some(2.0)); // diff 6 -> +2
        assert_eq!(gd.edge_weight(1, 2), Some(-2.0)); // diff -9 -> -2
        assert_eq!(gd.edge_weight(2, 3), None); // diff 1 -> dropped
    }

    #[test]
    fn template_matches_builder_path_for_every_alpha() {
        let (g1, g2) = fig1_pair();
        let template = ScaledDifferenceTemplate::new(&g2, &g1).unwrap();
        assert_eq!(template.num_vertices(), 5);
        let mut buffers = CsrBuffers::default();
        // α = 1.0 hits exact zero differences on none of the Fig. 1 edges; add a grid
        // point (2.5 for (2,4): 2 − 2.5·3 ≠ 0; but 1.0 for (2,3) etc.) plus the
        // cancellation cases α = w2/w1.
        for alpha in [0.0, 0.25, 2.0 / 3.0, 1.0, 2.5, 3.0] {
            let via_template = template.materialize_with(alpha, buffers);
            let via_builder = scaled_difference_graph(&g2, &g1, alpha).unwrap();
            assert_eq!(via_template, via_builder, "alpha = {alpha}");
            buffers = via_template.into_raw_csr();
        }
        // Exact zero-drop: at α = 5/2 the (2,3) edge (A2=5, A1=2) vanishes.
        let gd = template.materialize(2.5);
        assert_eq!(gd.edge_weight(2, 3), None);
        assert_eq!(gd, scaled_difference_graph(&g2, &g1, 2.5).unwrap());
        // Validation mirrors the builder path.
        let mismatched = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        assert!(ScaledDifferenceTemplate::new(&g2, &mismatched).is_err());
        let negative = GraphBuilder::from_edges(5, vec![(0, 1, -1.0)]);
        assert!(matches!(
            ScaledDifferenceTemplate::new(&g2, &negative),
            Err(DcsError::NegativeInputWeight { which: "G1" })
        ));
    }

    #[test]
    fn clamping() {
        let g1 = SignedGraph::empty(3);
        let g2 = GraphBuilder::from_edges(3, vec![(0, 1, 100.0), (1, 2, 3.0)]);
        let gd = difference_graph(&g2, &g1).unwrap();
        let clamped = clamp_weights(&gd, 10.0);
        assert_eq!(clamped.edge_weight(0, 1), Some(10.0));
        assert_eq!(clamped.edge_weight(1, 2), Some(3.0));
    }

    #[test]
    fn damping_preserves_light_edges_and_orders_heavy_ones() {
        let g1 = SignedGraph::empty(4);
        let g2 = GraphBuilder::from_edges(4, vec![(0, 1, 3.0), (1, 2, 50.0), (2, 3, 200.0)]);
        let gd = difference_graph(&g2, &g1).unwrap();
        let damped = damp_heavy_weights(&gd, 10.0);
        // Light edges unchanged.
        assert_eq!(damped.edge_weight(0, 1), Some(3.0));
        // Heavy edges shrink but keep their relative order and stay above the pivot.
        let w50 = damped.edge_weight(1, 2).unwrap();
        let w200 = damped.edge_weight(2, 3).unwrap();
        assert!(w50 > 10.0 && w50 < 50.0);
        assert!(w200 > w50 && w200 < 200.0);
        // Negative heavy edges are damped symmetrically.
        let negated = damp_heavy_weights(&gd.negated(), 10.0);
        assert_eq!(negated.edge_weight(1, 2), Some(-w50));
    }

    #[test]
    #[should_panic(expected = "pivot must be positive")]
    fn damping_rejects_non_positive_pivot() {
        let gd = GraphBuilder::from_edges(2, vec![(0, 1, 5.0)]);
        damp_heavy_weights(&gd, 0.0);
    }

    #[test]
    fn error_cases() {
        let g1 = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        let g2 = GraphBuilder::from_edges(4, vec![(0, 1, 1.0)]);
        assert!(matches!(
            difference_graph(&g2, &g1),
            Err(DcsError::VertexCountMismatch { .. })
        ));
        let neg = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        let ok = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        assert!(matches!(
            difference_graph(&ok, &neg),
            Err(DcsError::NegativeInputWeight { which: "G1" })
        ));
        assert!(matches!(
            difference_graph(&neg, &ok),
            Err(DcsError::NegativeInputWeight { which: "G2" })
        ));
    }

    #[test]
    fn emerging_vs_disappearing_are_negations() {
        let (g1, g2) = fig1_pair();
        let emerging = difference_graph(&g2, &g1).unwrap();
        let disappearing = difference_graph(&g1, &g2).unwrap();
        for (u, v, w) in emerging.edges() {
            assert_eq!(disappearing.edge_weight(u, v), Some(-w));
        }
    }
}

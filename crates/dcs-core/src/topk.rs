//! Top-k density contrast subgraph mining.
//!
//! The paper's conclusion lists "how to mine multiple subgraphs with big density
//! difference" as future work.  This module implements the natural peeling strategy: mine
//! the best DCS, remove its vertices from the difference graph (dropping all their
//! incident edges), and repeat until `k` subgraphs have been reported or no positive
//! contrast remains.  The returned subgraphs are therefore vertex-disjoint and reported
//! in non-increasing order of their density difference.
//!
//! The peeling loop is an **engine driver**: solver choice comes from
//! [`MeasureSolver`], every round runs under the caller's [`SolveContext`] (a shared
//! budget is split across rounds, the deadline and cancellation token apply to the
//! whole job), and the outcome carries aggregated [`SolveStats`] plus a
//! [`Termination`] saying whether all `k` rounds completed.  The measure-specific
//! entry points remain as thin unbounded wrappers.
//!
//! Per-round shrinking is **mask-based**: mined vertices are cleared from a
//! [`VertexMask`] and the next round solves on a [`GraphView`] overlay — the CSR
//! arrays of the caller's `G_D` are borrowed for **both measures** (the affinity
//! solver applies Theorem 5's `G_{D+}` restriction as a positive filter on the view,
//! so the positive part is never materialised) and never rewritten, where the
//! previous driver ran an `O(n + m)` [`SignedGraph::remove_vertices_in_place`]
//! compaction per round.  All rounds share one
//! [`crate::workspace::SolverWorkspace`] — including the dense DCSGA embedding
//! arena — so steady-state rounds allocate almost nothing.

use dcs_graph::{GraphView, SignedGraph, VertexMask};

use crate::dcsad::DcsadSolution;
use crate::dcsga::{DcsgaConfig, DcsgaSolution};
use crate::engine::{
    EngineSolution, MeasureSolver, SolveContext, SolveStats, SolverDetail, Termination,
};
use crate::solution::DensityMeasure;

/// The result of a bounded top-k mine: per-rank solutions plus job-level telemetry.
#[derive(Debug, Clone)]
pub struct TopKOutcome {
    /// The mined solutions, sorted by non-increasing objective.  On a truncated job
    /// this holds every round that finished (including the truncated round's
    /// best-so-far, when it found positive contrast).
    pub solutions: Vec<EngineSolution>,
    /// Aggregated stats across all rounds (iterations, candidates, prunes, wall).
    pub stats: SolveStats,
    /// [`Termination::Converged`] when every round ran to completion.
    pub termination: Termination,
}

/// Mines up to `k` vertex-disjoint contrast subgraphs under `measure`, bounded by
/// `cx`.
///
/// Solver dispatch goes through [`MeasureSolver`]; rounds shrink by masking mined
/// vertices out of a [`VertexMask`] and solving the next round on a [`GraphView`] —
/// no per-round CSR rewrite, and for the average-degree measure no working-graph
/// copy at all.  Every round reuses one [`crate::workspace::SolverWorkspace`]
/// (the caller's, when `cx` carries one).  Mining stops early when the remaining
/// contrast is no longer positive, when `k` rounds have run, or when a bound of `cx`
/// trips (the truncated round's best-so-far still counts when it has positive
/// contrast).
pub fn top_k_in(
    gd: &SignedGraph,
    k: usize,
    measure: DensityMeasure,
    config: DcsgaConfig,
    cx: &SolveContext,
) -> TopKOutcome {
    let solver = MeasureSolver::with_config(measure, config);
    let cx = cx.ensure_workspace();
    let working = solver.prepare_working_graph(gd);
    let mut mask = VertexMask::full(working.num_vertices());
    let mut solutions: Vec<EngineSolution> = Vec::new();
    let mut stats = SolveStats::default();
    for _ in 0..k {
        let view = GraphView::masked(&working, &mask);
        if solver.view_exhausted(view) {
            break;
        }
        let round_cx = cx.after_work(stats.iterations);
        let solution = solver.solve_view_seeded_in(view, &[], &round_cx);
        let round_termination = solution.termination();
        let keep = solution.objective > 0.0 && !solution.subset.is_empty();
        stats.absorb(&solution.stats);
        if keep {
            mask.remove_all(&solution.subset);
            solutions.push(solution);
        }
        if !round_termination.is_converged() || !keep {
            break;
        }
    }
    // The solvers are heuristics, so a later (smaller) instance can occasionally
    // yield a denser subgraph than an earlier one; sort so the reported order matches
    // the documented non-increasing contract.  `total_cmp` keeps the comparator total
    // even for a pathological (NaN) objective.
    solutions.sort_by(|a, b| b.objective.total_cmp(&a.objective));
    let termination = stats.termination;
    TopKOutcome {
        solutions,
        stats,
        termination,
    }
}

/// Mines up to `k` vertex-disjoint DCS with respect to **average degree**, by iterating
/// [`crate::dcsad::DcsGreedy`] on the difference graph with previously reported
/// vertices removed.
///
/// Thin [`SolveContext::unbounded`] wrapper over [`top_k_in`]; mining stops early when
/// the best remaining density difference is no longer positive.
pub fn top_k_average_degree(gd: &SignedGraph, k: usize) -> Vec<DcsadSolution> {
    top_k_in(
        gd,
        k,
        DensityMeasure::AverageDegree,
        DcsgaConfig::default(),
        &SolveContext::unbounded(),
    )
    .solutions
    .into_iter()
    .map(|solution| match solution.detail {
        SolverDetail::Dcsad(typed) => typed,
        _ => unreachable!("the average-degree solver produces DCSAD solutions"),
    })
    .collect()
}

/// Mines up to `k` vertex-disjoint DCS with respect to **graph affinity**, by iterating
/// [`crate::dcsga::NewSea`] on the difference graph with previously reported supports
/// removed.
///
/// Thin [`SolveContext::unbounded`] wrapper over [`top_k_in`]; rounds shrink `G_D`
/// through masked views and the solver positive-filters them in place — the
/// positive part is never materialised.
pub fn top_k_affinity(gd: &SignedGraph, k: usize, config: DcsgaConfig) -> Vec<DcsgaSolution> {
    top_k_in(
        gd,
        k,
        DensityMeasure::GraphAffinity,
        config,
        &SolveContext::unbounded(),
    )
    .solutions
    .into_iter()
    .map(|solution| match solution.detail {
        SolverDetail::Dcsga(typed) => typed,
        _ => unreachable!("the affinity solver produces DCSGA solutions"),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CancelToken;
    use dcs_graph::GraphBuilder;

    /// Three planted positive cliques of decreasing strength plus a negative bridge.
    fn three_cliques() -> SignedGraph {
        let mut b = GraphBuilder::new(12);
        for u in 0..3u32 {
            for v in (u + 1)..3u32 {
                b.add_edge(u, v, 9.0);
            }
        }
        for u in 3..7u32 {
            for v in (u + 1)..7u32 {
                b.add_edge(u, v, 4.0);
            }
        }
        for u in 7..11u32 {
            for v in (u + 1)..11u32 {
                b.add_edge(u, v, 1.5);
            }
        }
        b.add_edge(2, 3, -2.0);
        b.add_edge(6, 7, -2.0);
        b.build()
    }

    #[test]
    fn top_k_average_degree_returns_disjoint_decreasing_groups() {
        let gd = three_cliques();
        let results = top_k_average_degree(&gd, 3);
        assert_eq!(results.len(), 3);
        // Non-increasing density and pairwise disjoint subsets.
        for pair in results.windows(2) {
            assert!(pair[0].density_difference >= pair[1].density_difference - 1e-9);
            assert!(pair[0].subset.iter().all(|v| !pair[1].subset.contains(v)));
        }
        assert_eq!(results[0].subset, vec![0, 1, 2]);
        assert_eq!(results[1].subset, vec![3, 4, 5, 6]);
        assert_eq!(results[2].subset, vec![7, 8, 9, 10]);
    }

    #[test]
    fn top_k_affinity_returns_disjoint_cliques() {
        let gd = three_cliques();
        let results = top_k_affinity(&gd, 3, DcsgaConfig::default());
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].support(), vec![0, 1, 2]);
        assert_eq!(results[1].support(), vec![3, 4, 5, 6]);
        assert_eq!(results[2].support(), vec![7, 8, 9, 10]);
        for pair in results.windows(2) {
            assert!(pair[0].affinity_difference >= pair[1].affinity_difference - 1e-9);
        }
        // All are positive cliques of the original graph.
        for r in &results {
            assert!(gd.is_positive_clique(&r.support()));
        }
    }

    #[test]
    fn stops_early_when_contrast_is_exhausted() {
        let gd = GraphBuilder::from_edges(4, vec![(0, 1, 3.0), (2, 3, -1.0)]);
        let ad = top_k_average_degree(&gd, 5);
        assert_eq!(ad.len(), 1);
        let ga = top_k_affinity(&gd, 5, DcsgaConfig::default());
        assert_eq!(ga.len(), 1);
        // A graph with no positive edge yields nothing.
        let negative = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        assert!(top_k_average_degree(&negative, 2).is_empty());
        assert!(top_k_affinity(&negative, 2, DcsgaConfig::default()).is_empty());
    }

    #[test]
    fn k_zero_returns_nothing() {
        let gd = three_cliques();
        assert!(top_k_average_degree(&gd, 0).is_empty());
        assert!(top_k_affinity(&gd, 0, DcsgaConfig::default()).is_empty());
    }

    #[test]
    fn bounded_top_k_reports_outcome_and_disjointness() {
        let gd = three_cliques();
        let outcome = top_k_in(
            &gd,
            3,
            DensityMeasure::GraphAffinity,
            DcsgaConfig::default(),
            &SolveContext::unbounded(),
        );
        assert_eq!(outcome.termination, Termination::Converged);
        assert_eq!(outcome.solutions.len(), 3);
        assert!(outcome.stats.candidates > 0);
        assert!(outcome.stats.iterations > 0);

        // A cancelled job stops between rounds and still returns disjoint, in-range
        // subsets for whatever it mined.
        let token = CancelToken::new();
        token.cancel();
        let cancelled = top_k_in(
            &gd,
            3,
            DensityMeasure::AverageDegree,
            DcsgaConfig::default(),
            &SolveContext::unbounded().with_cancel(&token),
        );
        assert_eq!(cancelled.termination, Termination::Cancelled);
        for solution in &cancelled.solutions {
            assert!(solution
                .subset
                .iter()
                .all(|&v| (v as usize) < gd.num_vertices()));
        }
    }
}

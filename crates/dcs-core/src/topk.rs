//! Top-k density contrast subgraph mining.
//!
//! The paper's conclusion lists "how to mine multiple subgraphs with big density
//! difference" as future work.  This module implements the natural peeling strategy: mine
//! the best DCS, remove its vertices from the difference graph (dropping all their
//! incident edges), and repeat until `k` subgraphs have been reported or no positive
//! contrast remains.  The returned subgraphs are therefore vertex-disjoint and reported
//! in non-increasing order of their density difference.

use dcs_graph::{SignedGraph, VertexId};

use crate::dcsad::{DcsGreedy, DcsadSolution};
use crate::dcsga::{DcsgaConfig, DcsgaSolution, NewSea};

/// Mines up to `k` vertex-disjoint DCS with respect to **average degree**, by iterating
/// [`DcsGreedy`] on the difference graph with previously reported vertices removed.
///
/// Mining stops early when the best remaining density difference is no longer positive.
/// Peeling is done in place on a single working copy
/// ([`SignedGraph::remove_vertices_in_place`]) — no per-round graph clone.
pub fn top_k_average_degree(gd: &SignedGraph, k: usize) -> Vec<DcsadSolution> {
    let mut remaining = gd.clone();
    let mut results = Vec::new();
    let solver = DcsGreedy::default();
    for _ in 0..k {
        if remaining.num_positive_edges() == 0 {
            break;
        }
        let solution = solver.solve(&remaining);
        if solution.density_difference <= 0.0 {
            break;
        }
        remaining.remove_vertices_in_place(&solution.subset);
        results.push(solution);
    }
    // DCSGreedy is a heuristic, so a later (smaller) instance can occasionally yield a
    // denser subgraph than an earlier one; sort so the reported order matches the
    // documented non-increasing contract.
    results.sort_by(|a, b| {
        b.density_difference
            .partial_cmp(&a.density_difference)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    results
}

/// Mines up to `k` vertex-disjoint DCS with respect to **graph affinity**, by iterating
/// [`NewSea`] on the difference graph with previously reported supports removed.
///
/// The positive part is materialised once and then peeled in place
/// ([`SignedGraph::remove_vertices_in_place`]) — no per-round graph clone.
pub fn top_k_affinity(gd: &SignedGraph, k: usize, config: DcsgaConfig) -> Vec<DcsgaSolution> {
    let mut remaining = gd.positive_part();
    let mut results = Vec::new();
    let solver = NewSea::new(config);
    for _ in 0..k {
        if remaining.num_edges() == 0 {
            break;
        }
        let solution = solver.solve_on_positive_part(&remaining);
        if solution.affinity_difference <= 0.0 || solution.embedding.is_empty() {
            break;
        }
        let support: Vec<VertexId> = solution.support();
        remaining.remove_vertices_in_place(&support);
        results.push(solution);
    }
    results.sort_by(|a, b| {
        b.affinity_difference
            .partial_cmp(&a.affinity_difference)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// Three planted positive cliques of decreasing strength plus a negative bridge.
    fn three_cliques() -> SignedGraph {
        let mut b = GraphBuilder::new(12);
        for u in 0..3u32 {
            for v in (u + 1)..3u32 {
                b.add_edge(u, v, 9.0);
            }
        }
        for u in 3..7u32 {
            for v in (u + 1)..7u32 {
                b.add_edge(u, v, 4.0);
            }
        }
        for u in 7..11u32 {
            for v in (u + 1)..11u32 {
                b.add_edge(u, v, 1.5);
            }
        }
        b.add_edge(2, 3, -2.0);
        b.add_edge(6, 7, -2.0);
        b.build()
    }

    #[test]
    fn top_k_average_degree_returns_disjoint_decreasing_groups() {
        let gd = three_cliques();
        let results = top_k_average_degree(&gd, 3);
        assert_eq!(results.len(), 3);
        // Non-increasing density and pairwise disjoint subsets.
        for pair in results.windows(2) {
            assert!(pair[0].density_difference >= pair[1].density_difference - 1e-9);
            assert!(pair[0].subset.iter().all(|v| !pair[1].subset.contains(v)));
        }
        assert_eq!(results[0].subset, vec![0, 1, 2]);
        assert_eq!(results[1].subset, vec![3, 4, 5, 6]);
        assert_eq!(results[2].subset, vec![7, 8, 9, 10]);
    }

    #[test]
    fn top_k_affinity_returns_disjoint_cliques() {
        let gd = three_cliques();
        let results = top_k_affinity(&gd, 3, DcsgaConfig::default());
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].support(), vec![0, 1, 2]);
        assert_eq!(results[1].support(), vec![3, 4, 5, 6]);
        assert_eq!(results[2].support(), vec![7, 8, 9, 10]);
        for pair in results.windows(2) {
            assert!(pair[0].affinity_difference >= pair[1].affinity_difference - 1e-9);
        }
        // All are positive cliques of the original graph.
        for r in &results {
            assert!(gd.is_positive_clique(&r.support()));
        }
    }

    #[test]
    fn stops_early_when_contrast_is_exhausted() {
        let gd = GraphBuilder::from_edges(4, vec![(0, 1, 3.0), (2, 3, -1.0)]);
        let ad = top_k_average_degree(&gd, 5);
        assert_eq!(ad.len(), 1);
        let ga = top_k_affinity(&gd, 5, DcsgaConfig::default());
        assert_eq!(ga.len(), 1);
        // A graph with no positive edge yields nothing.
        let negative = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        assert!(top_k_average_degree(&negative, 2).is_empty());
        assert!(top_k_affinity(&negative, 2, DcsgaConfig::default()).is_empty());
    }

    #[test]
    fn k_zero_returns_nothing() {
        let gd = three_cliques();
        assert!(top_k_average_degree(&gd, 0).is_empty());
        assert!(top_k_affinity(&gd, 0, DcsgaConfig::default()).is_empty());
    }
}

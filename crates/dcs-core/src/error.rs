//! Error types of the DCS mining crate.

/// Errors reported by the density-contrast mining API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcsError {
    /// The two input graphs do not share the same vertex set size.
    VertexCountMismatch {
        /// Number of vertices of `G1`.
        g1_vertices: usize,
        /// Number of vertices of `G2`.
        g2_vertices: usize,
    },
    /// An input graph that must be non-negatively weighted (e.g. `G1`/`G2` themselves,
    /// which are ordinary weighted graphs in the paper) contains a negative weight.
    NegativeInputWeight {
        /// Which input graph violated the requirement ("G1" or "G2").
        which: &'static str,
    },
    /// A configuration parameter was invalid (e.g. a non-positive tolerance).
    InvalidConfig(String),
    /// An input graph decoded from untrusted bytes (an edge-list payload, a
    /// memory-mapped pack) violated a CSR representation invariant.
    CorruptGraph(dcs_graph::CorruptGraph),
}

impl std::fmt::Display for DcsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcsError::VertexCountMismatch {
                g1_vertices,
                g2_vertices,
            } => write!(
                f,
                "G1 and G2 must share the same vertex set: G1 has {g1_vertices} vertices, G2 has {g2_vertices}"
            ),
            DcsError::NegativeInputWeight { which } => {
                write!(f, "input graph {which} must have non-negative edge weights")
            }
            DcsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DcsError::CorruptGraph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcsError::CorruptGraph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dcs_graph::CorruptGraph> for DcsError {
    fn from(e: dcs_graph::CorruptGraph) -> Self {
        DcsError::CorruptGraph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DcsError::VertexCountMismatch {
            g1_vertices: 3,
            g2_vertices: 4,
        };
        assert!(format!("{e}").contains("G1 has 3"));
        let e = DcsError::NegativeInputWeight { which: "G1" };
        assert!(format!("{e}").contains("G1"));
        let e = DcsError::InvalidConfig("epsilon must be positive".into());
        assert!(format!("{e}").contains("epsilon"));
    }
}

//! Property-based tests of the parallel oracle kernels against their sequential
//! twins — the contract the parallel solvers rest on is **bit-identity**, not
//! approximate agreement:
//!
//! * [`kkt_violation_view_par`] == [`kkt_violation_view`] to the last bit across
//!   randomized signed graphs, embeddings, and thread counts {1, 2, 4};
//! * [`local_kkt_gap_view_par`] == [`local_kkt_gap_view`] likewise;
//! * `expansion_candidates_view_par` returns exactly the sequential candidate set
//!   `Z`, in the same (ascending) order;
//! * the parallel NewSEA µ_u sweep ([`smart_initialization_order_par_in`]) produces
//!   the same `(vertex, µ_u)` order as [`smart_initialization_order_in`], with the
//!   core/order/scratch buffers reused across thread counts (the risky part: stale
//!   per-vertex maxima leaking between sweeps).

use dcs_core::dcsga::kkt::{
    kkt_violation_view, kkt_violation_view_par, local_kkt_gap_view, local_kkt_gap_view_par,
};
use dcs_core::dcsga::{smart_initialization_order_in, smart_initialization_order_par_in};
use dcs_core::Embedding;
use dcs_densest::{expansion_candidates_view, expansion_candidates_view_par};
use dcs_graph::{CoreScratch, GraphBuilder, GraphView, SignedGraph, VertexId, Weight};
use proptest::prelude::*;

/// Strategy: a random signed graph over `n <= 40` vertices plus an embedding
/// supported on a random vertex subset with random positive weights.
fn arb_graph_and_embedding() -> impl Strategy<Value = (SignedGraph, Embedding)> {
    (4usize..40).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -6.0f64..6.0);
        let weight = (0..n as u32, 0.05f64..1.0);
        (
            Just(n),
            proptest::collection::vec(edge, 0..140),
            proptest::collection::vec(weight, 1..10),
        )
            .prop_map(|(n, edges, weights)| {
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in edges {
                    if u != v && w != 0.0 {
                        b.add_edge(u, v, w);
                    }
                }
                let mut x = Embedding::from_weights(weights);
                x.normalize();
                (b.build(), x)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The global KKT oracle: parallel range scans merge to the exact sequential
    /// violation, on the full signed view and the positive-filtered overlay.
    #[test]
    fn kkt_violation_par_is_bit_identical((g, x) in arb_graph_and_embedding()) {
        for view in [GraphView::full(&g), GraphView::full(&g).positive_part()] {
            let seq = kkt_violation_view(view, &x);
            for threads in [1usize, 2, 4] {
                let par = kkt_violation_view_par(view, &x, threads);
                assert_eq!(
                    seq.to_bits(), par.to_bits(),
                    "threads={}: {} vs {}", threads, seq, par
                );
            }
        }
    }

    /// The local KKT gap over the working set: per-range max/min extrema merge to
    /// the sequential gap bit for bit.
    #[test]
    fn local_kkt_gap_par_is_bit_identical((g, x) in arb_graph_and_embedding()) {
        let support: Vec<VertexId> = x.support();
        for view in [GraphView::full(&g), GraphView::full(&g).positive_part()] {
            let seq = local_kkt_gap_view(view, &x, &support);
            for threads in [1usize, 2, 4] {
                let par = local_kkt_gap_view_par(view, &x, &support, threads);
                assert_eq!(
                    seq.to_bits(), par.to_bits(),
                    "threads={}: {} vs {}", threads, seq, par
                );
            }
        }
    }

    /// The expansion candidate set `Z`: the parallel whole-range scan keeps exactly
    /// the vertices the sequential adjacency walk finds, already sorted.
    #[test]
    fn expansion_candidates_par_is_identical(
        (g, x) in arb_graph_and_embedding(),
        tol in prop_oneof![Just(0.0f64), Just(1e-9), Just(0.1)],
    ) {
        for view in [GraphView::full(&g), GraphView::full(&g).positive_part()] {
            let seq = expansion_candidates_view(view, &x, tol);
            for threads in [1usize, 2, 4] {
                let par = expansion_candidates_view_par(view, &x, tol, threads);
                assert_eq!(&seq, &par, "threads={}", threads);
            }
        }
    }

    /// The NewSEA smart-initialisation µ_u sweep: identical `(vertex, µ_u)` pairs in
    /// identical order, with all four scratch buffers reused across thread counts.
    #[test]
    fn smart_init_order_par_is_bit_identical((g, _x) in arb_graph_and_embedding()) {
        let view = GraphView::full(&g).positive_part();

        let mut seq_order: Vec<(VertexId, Weight)> = Vec::new();
        let mut seq_incident: Vec<Weight> = Vec::new();
        let mut seq_cores = CoreScratch::default();
        smart_initialization_order_in(view, &mut seq_order, &mut seq_incident, &mut seq_cores);

        let mut par_order: Vec<(VertexId, Weight)> = Vec::new();
        let mut par_incident: Vec<Weight> = Vec::new();
        let mut par_cores = CoreScratch::default();
        for threads in [1usize, 2, 4] {
            smart_initialization_order_par_in(
                view, &mut par_order, &mut par_incident, &mut par_cores, threads,
            );
            assert_eq!(seq_order.len(), par_order.len(), "threads={}", threads);
            for (i, (s, p)) in seq_order.iter().zip(&par_order).enumerate() {
                assert_eq!(s.0, p.0, "threads={} rank={}", threads, i);
                assert_eq!(
                    s.1.to_bits(), p.1.to_bits(),
                    "threads={} rank={} vertex={}: {} vs {}", threads, i, s.0, s.1, p.1
                );
            }
            assert_eq!(&seq_incident, &par_incident, "threads={}", threads);
        }
    }
}

//! Property-based tests of the zero-allocation hot path:
//!
//! * solving on a masked [`GraphView`] equals solving the **materialised** induced
//!   subgraph (ids mapped back through the extraction order), for both measures and
//!   for the raw peel;
//! * workspace-reusing solves are **identical** to fresh-workspace solves across
//!   randomized job sequences (the workspace is pure scratch);
//! * the mask-based top-k driver still returns vertex-disjoint, in-range solutions
//!   with non-increasing objectives;
//! * the template-based α-sweep equals a per-α rebuild through the graph builder.

use dcs_core::dcsga::DcsgaConfig;
use dcs_core::engine::{ContrastSolver, MeasureSolver, SolveContext};
use dcs_core::{
    alpha_sweep_in, scaled_difference_graph, top_k_in, DensityMeasure, ScaledDifferenceTemplate,
    SharedWorkspace,
};
use dcs_graph::{GraphBuilder, GraphView, SignedGraph, VertexId, VertexMask};
use proptest::prelude::*;

/// Strategy: a random signed graph over `n <= 18` vertices.
fn arb_graph() -> impl Strategy<Value = SignedGraph> {
    (3usize..18).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -5.0f64..5.0f64);
        (Just(n), proptest::collection::vec(edge, 0..50)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w != 0.0 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

/// Strategy: a graph plus a proper subset of vertices to mask out.
fn arb_graph_and_mask() -> impl Strategy<Value = (SignedGraph, Vec<VertexId>)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.num_vertices();
        (
            Just(g),
            proptest::collection::vec(0..n as VertexId, 0..n.saturating_sub(1)),
        )
    })
}

/// Strategy: a non-negative graph pair over a shared vertex set.
fn arb_pair() -> impl Strategy<Value = (SignedGraph, SignedGraph)> {
    (3usize..14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..5.0f64);
        (
            Just(n),
            proptest::collection::vec(edge.clone(), 0..40),
            proptest::collection::vec(edge, 0..40),
        )
            .prop_map(|(n, e1, e2)| {
                let build = |edges: Vec<(u32, u32, f64)>| {
                    let mut b = GraphBuilder::new(n);
                    for (u, v, w) in edges {
                        if u != v {
                            b.add_edge(u, v, w);
                        }
                    }
                    b.build()
                };
                (build(e1), build(e2))
            })
    })
}

proptest! {
    /// Peeling and solving on a masked view equals solving the materialised
    /// alive-induced subgraph, with ids mapped back through the extraction order.
    #[test]
    fn view_solve_equals_materialized_induced_subgraph((gd, dead) in arb_graph_and_mask()) {
        let n = gd.num_vertices();
        let mut mask = VertexMask::full(n);
        mask.remove_all(&dead);
        prop_assume!(!mask.is_empty());
        let alive: Vec<VertexId> = mask.iter().collect();
        let (induced, back) = gd.induced_subgraph(&alive);
        let map_back = |subset: &[VertexId]| -> Vec<VertexId> {
            let mut mapped: Vec<VertexId> =
                subset.iter().map(|&v| back[v as usize]).collect();
            mapped.sort_unstable();
            mapped
        };
        let view = GraphView::masked(&gd, &mask);
        let cx = SolveContext::unbounded();

        // Raw greedy peel.
        let mut ws = dcs_densest::PeelWorkspace::new();
        let of_view = dcs_densest::greedy_peeling_view_into(view, &mut ws, |_| false).0;
        let of_induced = dcs_densest::greedy_peeling(&induced);
        prop_assert_eq!(&of_view.subset, &map_back(&of_induced.subset));
        prop_assert!((of_view.average_degree - of_induced.average_degree).abs() < 1e-9);

        // DCSGreedy (average degree).
        let degree = MeasureSolver::for_measure(DensityMeasure::AverageDegree);
        let view_solution = degree.solve_view_seeded_in(view, &[], &cx);
        let induced_solution = degree.solve_in(&induced, &cx);
        prop_assert_eq!(&view_solution.subset, &map_back(&induced_solution.subset));
        prop_assert!((view_solution.objective - induced_solution.objective).abs() < 1e-9);

        // NewSEA (affinity): the working graph is the positive part, masked.  The
        // reference is the id-stable materialisation of the same view (dead vertices
        // kept as isolated): identical vertex ids keep the solver's hash-map
        // iteration orders identical, so the match is exact, not approximate.
        let gd_plus = gd.positive_part();
        let plus_view = GraphView::masked(&gd_plus, &mask);
        let affinity = MeasureSolver::for_measure(DensityMeasure::GraphAffinity);
        let view_solution = affinity.solve_view_seeded_in(plus_view, &[], &cx);
        let materialized = plus_view.materialize();
        let materialized_solution = affinity.solve_in(&materialized, &cx);
        prop_assert_eq!(&view_solution.subset, &materialized_solution.subset);
        prop_assert_eq!(view_solution.objective, materialized_solution.objective);
        // And the mined support never touches a dead vertex.
        prop_assert!(view_solution.subset.iter().all(|&v| mask.contains(v)));
    }

    /// A shared workspace is pure scratch: across a randomized sequence of jobs
    /// (mines under both measures, top-k, seeded re-mines) every workspace-reusing
    /// solve is identical to a fresh-workspace solve of the same job.
    #[test]
    fn workspace_reuse_is_bit_identical_across_job_sequences(
        graphs in proptest::collection::vec(arb_graph(), 1..4),
        jobs in proptest::collection::vec((0usize..4, 0usize..3), 1..12),
    ) {
        let shared = SharedWorkspace::new();
        let warm_cx = SolveContext::unbounded().with_workspace(&shared);
        let cold_cx = SolveContext::unbounded();
        let mut last_subset: Vec<VertexId> = Vec::new();
        for (kind, graph_pick) in jobs {
            let gd = &graphs[graph_pick % graphs.len()];
            match kind {
                0 | 1 => {
                    let measure = if kind == 0 {
                        DensityMeasure::AverageDegree
                    } else {
                        DensityMeasure::GraphAffinity
                    };
                    let solver = MeasureSolver::for_measure(measure);
                    let warm = solver.solve_seeded_in(gd, &last_subset, &warm_cx);
                    let cold = solver.solve_seeded_in(gd, &last_subset, &cold_cx);
                    prop_assert_eq!(&warm.subset, &cold.subset);
                    prop_assert_eq!(warm.objective, cold.objective);
                    last_subset = warm.subset;
                }
                2 => {
                    let warm = top_k_in(
                        gd, 3, DensityMeasure::AverageDegree, DcsgaConfig::default(), &warm_cx,
                    );
                    let cold = top_k_in(
                        gd, 3, DensityMeasure::AverageDegree, DcsgaConfig::default(), &cold_cx,
                    );
                    prop_assert_eq!(warm.solutions.len(), cold.solutions.len());
                    for (w, c) in warm.solutions.iter().zip(&cold.solutions) {
                        prop_assert_eq!(&w.subset, &c.subset);
                        prop_assert_eq!(w.objective, c.objective);
                    }
                }
                _ => {
                    let warm = dcs_core::engine::PeelSolver.solve_in(gd, &warm_cx);
                    let cold = dcs_core::engine::PeelSolver.solve_in(gd, &cold_cx);
                    prop_assert_eq!(&warm.subset, &cold.subset);
                    prop_assert_eq!(warm.objective, cold.objective);
                }
            }
        }
    }

    /// The mask-based top-k driver returns vertex-disjoint, in-range solutions in
    /// non-increasing objective order, for both measures.
    #[test]
    fn masked_top_k_is_disjoint_and_ordered(gd in arb_graph(), k in 1usize..5) {
        for measure in [DensityMeasure::AverageDegree, DensityMeasure::GraphAffinity] {
            let outcome = top_k_in(
                &gd, k, measure, DcsgaConfig::default(), &SolveContext::unbounded(),
            );
            prop_assert!(outcome.solutions.len() <= k);
            let mut seen = VertexMask::empty(gd.num_vertices());
            for solution in &outcome.solutions {
                prop_assert!(solution.objective > 0.0);
                for &v in &solution.subset {
                    prop_assert!((v as usize) < gd.num_vertices());
                    prop_assert!(seen.insert(v), "vertex {} mined twice", v);
                }
            }
            for pair in outcome.solutions.windows(2) {
                prop_assert!(pair[0].objective >= pair[1].objective - 1e-9);
            }
        }
    }

    /// The α-sweep's in-place template reweighting is exactly the per-α builder
    /// rebuild, and the sweep over it matches a cold per-α sweep.
    #[test]
    fn template_sweep_matches_cold_rebuild((g1, g2) in arb_pair(), raw_alphas in proptest::collection::vec(0.0f64..3.0, 1..5)) {
        let template = ScaledDifferenceTemplate::new(&g2, &g1).unwrap();
        for &alpha in &raw_alphas {
            prop_assert_eq!(
                template.materialize(alpha),
                scaled_difference_graph(&g2, &g1, alpha).unwrap()
            );
        }
        let sweep = alpha_sweep_in(
            &g2, &g1, &raw_alphas, DensityMeasure::AverageDegree, &SolveContext::unbounded(),
        ).unwrap();
        prop_assert_eq!(sweep.points.len(), raw_alphas.len());
        for point in &sweep.points {
            let gd = scaled_difference_graph(&g2, &g1, point.alpha).unwrap();
            let cold = MeasureSolver::for_measure(DensityMeasure::AverageDegree)
                .solve_seeded_in(&gd, &[], &SolveContext::unbounded());
            // Warm starting never hurts: the sweep's point is at least as good.
            prop_assert!(point.objective >= cold.objective - 1e-9);
        }
    }
}

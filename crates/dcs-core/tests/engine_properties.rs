//! Property-based tests of the unified solver engine: bounded solves always return
//! valid best-so-far results with the correct termination, and an unbounded engine
//! solve is identical to the pre-refactor `solve()` entry points.

use std::time::Duration;

use dcs_core::dcsad::DcsGreedy;
use dcs_core::dcsga::NewSea;
use dcs_core::engine::{
    CancelToken, ContrastSolver, EngineSolution, MeasureSolver, SolveContext, Termination,
};
use dcs_core::DensityMeasure;
use dcs_graph::{GraphBuilder, SignedGraph};
use proptest::prelude::*;

/// Strategy: a random signed graph over `n <= 20` vertices.
fn arb_graph() -> impl Strategy<Value = SignedGraph> {
    (2usize..20).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -5.0f64..5.0f64);
        (Just(n), proptest::collection::vec(edge, 0..60)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w != 0.0 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

/// A bounded solve's result must be a valid subset of `gd`: in-range, sorted,
/// deduplicated, and consistent with the claimed objective where checkable.
fn assert_valid(solution: &EngineSolution, gd: &SignedGraph) {
    let n = gd.num_vertices();
    assert!(solution.subset.iter().all(|&v| (v as usize) < n));
    assert!(solution.subset.windows(2).all(|w| w[0] < w[1]));
    if let Some(embedding) = solution.embedding() {
        assert_eq!(embedding.support(), solution.subset);
        assert!((embedding.affinity(gd) - solution.objective).abs() < 1e-6);
    }
}

proptest! {
    /// A solve under a pre-cancelled token returns a valid subset and reports
    /// `Cancelled` — unless the solver converged before its first checkpoint
    /// (trivial instances), in which case the result must equal the unbounded one.
    #[test]
    fn cancelled_solves_return_valid_best_so_far(gd in arb_graph()) {
        let token = CancelToken::new();
        token.cancel();
        let cx = SolveContext::unbounded().with_cancel(&token);
        for measure in [DensityMeasure::AverageDegree, DensityMeasure::GraphAffinity] {
            let solver = MeasureSolver::for_measure(measure);
            let bounded = solver.solve_in(&gd, &cx);
            assert_valid(&bounded, &gd);
            match bounded.termination() {
                Termination::Cancelled => {}
                Termination::Converged => {
                    let unbounded = solver.solve_in(&gd, &SolveContext::unbounded());
                    prop_assert_eq!(bounded.subset, unbounded.subset);
                }
                other => prop_assert!(false, "unexpected termination {:?}", other),
            }
        }
    }

    /// An already-expired deadline behaves like a cancellation with `Deadline`.
    #[test]
    fn expired_deadline_solves_return_valid_best_so_far(gd in arb_graph()) {
        let cx = SolveContext::unbounded().with_deadline(Duration::ZERO);
        for measure in [DensityMeasure::AverageDegree, DensityMeasure::GraphAffinity] {
            let solver = MeasureSolver::for_measure(measure);
            let bounded = solver.solve_in(&gd, &cx);
            assert_valid(&bounded, &gd);
            prop_assert!(matches!(
                bounded.termination(),
                Termination::Deadline | Termination::Converged
            ));
        }
    }

    /// A one-unit budget truncates any non-trivial solve with `BudgetExhausted`,
    /// still yielding a valid subset, and never reports more than a couple of units.
    #[test]
    fn tiny_budget_solves_are_truncated_but_valid(gd in arb_graph()) {
        let cx = SolveContext::unbounded().with_budget(1);
        for measure in [DensityMeasure::AverageDegree, DensityMeasure::GraphAffinity] {
            let solver = MeasureSolver::for_measure(measure);
            let bounded = solver.solve_in(&gd, &cx);
            assert_valid(&bounded, &gd);
            prop_assert!(matches!(
                bounded.termination(),
                Termination::BudgetExhausted | Termination::Converged
            ));
        }
    }

    /// `SolveContext::unbounded()` through the engine is *identical* to the
    /// pre-refactor `solve()` entry points: same subset, same objective, and the
    /// termination is always `Converged`.
    #[test]
    fn unbounded_engine_equals_legacy_solve(gd in arb_graph()) {
        let cx = SolveContext::unbounded();

        let legacy = DcsGreedy::default().solve(&gd);
        let engine = DcsGreedy::default().solve_in(&gd, &cx);
        prop_assert_eq!(engine.termination(), Termination::Converged);
        prop_assert_eq!(&engine.subset, &legacy.subset);
        prop_assert_eq!(engine.objective, legacy.density_difference);

        let legacy = NewSea::default().solve(&gd);
        let engine = NewSea::default().solve_in(&gd, &cx);
        prop_assert_eq!(engine.termination(), Termination::Converged);
        prop_assert_eq!(engine.subset, legacy.support());
        prop_assert!((engine.objective - legacy.affinity_difference).abs() < 1e-12);
    }

    /// An affinity solve's bounded result never *beats* the converged solve: the
    /// bounded sweep runs a subset of the initialisations, each refined identically.
    /// (No such guarantee exists for DCSAD — component refinement of a truncated
    /// peel's candidate can occasionally exceed the converged pick — so only the
    /// validity of its bounded result is asserted.)
    #[test]
    fn bounded_objective_never_exceeds_converged(gd in arb_graph()) {
        let affinity = MeasureSolver::for_measure(DensityMeasure::GraphAffinity);
        let converged = affinity.solve_in(&gd, &SolveContext::unbounded());
        let bounded = affinity.solve_in(&gd, &SolveContext::unbounded().with_budget(5));
        prop_assert!(bounded.objective <= converged.objective + 1e-9);
        prop_assert!(converged.stats.termination.is_converged());

        let degree = MeasureSolver::for_measure(DensityMeasure::AverageDegree);
        let bounded = degree.solve_in(&gd, &SolveContext::unbounded().with_budget(5));
        assert_valid(&bounded, &gd);
    }
}

//! Property-based tests of the dense workspace-backed DCSGA path:
//!
//! * dense SEACD/NewSEA solves are **bit-identical** to the retained
//!   `FxHashMap`-backed reference ([`NewSea::solve_seeded_reference`]) across
//!   randomized graphs, seeded and unseeded, with the dense workspace reused across
//!   a whole job sequence (the risky part: arena resets between solves);
//! * view-based NewSEA (mining the positive-filtered overlay of the signed `G_D`)
//!   equals solving the **materialised** `positive_part()`, bit for bit;
//! * the solutions really are KKT points of the positive view (via the view-based
//!   KKT oracle) and positive cliques of `G_D`.

use dcs_core::dcsga::kkt::kkt_violation_view;
use dcs_core::dcsga::{DcsgaSolution, NewSea, SeaCd};
use dcs_core::{Embedding, SharedWorkspace, SolveContext};
use dcs_graph::{GraphBuilder, GraphView, SignedGraph, VertexId};
use proptest::prelude::*;

/// Strategy: a random signed graph over `n <= 16` vertices.
fn arb_graph() -> impl Strategy<Value = SignedGraph> {
    (3usize..16).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -5.0f64..5.0f64);
        (Just(n), proptest::collection::vec(edge, 0..45)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w != 0.0 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

/// Strategy: a graph plus a (possibly useless) warm-start seed.
fn arb_graph_and_seed() -> impl Strategy<Value = (SignedGraph, Vec<VertexId>)> {
    arb_graph().prop_flat_map(|g| {
        let n = g.num_vertices();
        (
            Just(g),
            proptest::collection::vec(0..(n as VertexId + 2), 0..6),
        )
    })
}

/// Exact (bitwise) equality of two DCSGA solutions: same support, same values down
/// to the last bit, same objective bits, same sweep statistics.
fn assert_bit_identical(a: &DcsgaSolution, b: &DcsgaSolution) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.support(), b.support());
    for (u, x) in a.embedding.iter() {
        prop_assert_eq!(x.to_bits(), b.embedding.get(u).to_bits());
    }
    prop_assert_eq!(
        a.affinity_difference.to_bits(),
        b.affinity_difference.to_bits()
    );
    prop_assert_eq!(&a.stats, &b.stats);
    Ok(())
}

proptest! {
    /// Dense workspace-backed NewSEA equals the FxHashMap reference bit for bit,
    /// with the workspace reused across a sequence of seeded and unseeded solves on
    /// alternating graphs (stale arena state would show up here).
    #[test]
    fn dense_newsea_is_bit_identical_to_hash_reference(
        jobs in proptest::collection::vec(arb_graph_and_seed(), 1..5),
    ) {
        let shared = SharedWorkspace::new();
        let warm_cx = SolveContext::unbounded().with_workspace(&shared);
        let solver = NewSea::default();
        for (gd, seed) in &jobs {
            let dense = solver.solve_bounded(gd, seed, &warm_cx).0;
            let reference = solver.solve_seeded_reference(gd, seed);
            assert_bit_identical(&dense, &reference)?;
            // And the cold (unseeded) solves agree too.
            let dense_cold = solver.solve_bounded(gd, &[], &warm_cx).0;
            let reference_cold = solver.solve_seeded_reference(gd, &[]);
            assert_bit_identical(&dense_cold, &reference_cold)?;
        }
    }

    /// View-based NewSEA — the canonical path, which positive-filters the signed
    /// difference graph in place — equals solving the materialised `positive_part()`
    /// through the legacy wrapper, bit for bit.
    #[test]
    fn view_newsea_equals_materialized_positive_part(gd in arb_graph()) {
        let solver = NewSea::default();
        let via_view = solver.solve(&gd);
        let gd_plus = gd.positive_part();
        let via_materialized = solver.solve_on_positive_part(&gd_plus);
        assert_bit_identical(&via_view, &via_materialized)?;
        // The solution is a positive clique of G_D (Theorem 5) and a KKT point of
        // the positive view (Eq. 7), up to the configured tolerances.
        let support = via_view.support();
        prop_assert!(gd.is_positive_clique(&support));
        if !support.is_empty() {
            let pview = GraphView::full(&gd).positive_part();
            prop_assert!(
                kkt_violation_view(pview, &via_view.embedding) < 0.2,
                "violation {}",
                kkt_violation_view(pview, &via_view.embedding)
            );
        }
    }

    /// A dense SEACD run on the positive-filtered view equals the same run on the
    /// materialised positive part, for every possible initialisation vertex.
    #[test]
    fn seacd_view_runs_match_materialized(gd in arb_graph()) {
        let solver = SeaCd::default();
        let gd_plus = gd.positive_part();
        let pview = GraphView::full(&gd).positive_part();
        for u in 0..gd.num_vertices() as VertexId {
            let on_view = solver.run_on_view_until(pview, Embedding::singleton(u), |_| false);
            let on_graph = solver.run_from_vertex(&gd_plus, u);
            prop_assert_eq!(on_view.embedding.support(), on_graph.embedding.support());
            prop_assert_eq!(on_view.objective.to_bits(), on_graph.objective.to_bits());
            prop_assert_eq!(on_view.rounds, on_graph.rounds);
            prop_assert_eq!(on_view.cd_iterations, on_graph.cd_iterations);
        }
    }
}

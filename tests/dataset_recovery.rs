//! Cross-dataset recovery test: every synthetic generator in the workspace, mined with
//! both DCS algorithms in both directions, must point back at its planted ground truth.
//!
//! The assertions are deliberately conservative (they must hold for every generator, from
//! clique-like laundering rings to grid-shaped traffic hotspots):
//!
//! * the graph-affinity DCS is a positive clique whose support lies mostly inside the
//!   planted groups of the mined direction (precision ≥ 0.5), and
//! * the average-degree DCS has strictly positive contrast and touches at least one
//!   planted group of the mined direction.

use dcs::core::dcsad::DcsGreedy;
use dcs::core::dcsga::NewSea;
use dcs::core::difference_graph;
use dcs::datasets::{
    CoauthorConfig, CollabConfig, ConflictConfig, GraphPair, GroupKind, KeywordConfig, Scale,
    SocialInterestConfig, TrafficConfig, TransactionConfig,
};
use dcs::graph::VertexId;

fn all_tiny_pairs() -> Vec<(&'static str, GraphPair)> {
    vec![
        (
            "coauthor",
            CoauthorConfig::for_scale(Scale::Tiny).generate(),
        ),
        ("keywords", KeywordConfig::for_scale(Scale::Tiny).generate()),
        (
            "conflict",
            ConflictConfig::for_scale(Scale::Tiny).generate(),
        ),
        ("movie", SocialInterestConfig::movie(Scale::Tiny).generate()),
        ("book", SocialInterestConfig::book(Scale::Tiny).generate()),
        ("dblp-c", CollabConfig::dblp_c(Scale::Tiny).generate_pair()),
        ("traffic", TrafficConfig::for_scale(Scale::Tiny).generate()),
        (
            "transactions",
            TransactionConfig::for_scale(Scale::Tiny).generate(),
        ),
    ]
}

/// Fraction of `found` that lies inside any planted group of `kind`.
fn precision_against_planted(found: &[VertexId], pair: &GraphPair, kind: GroupKind) -> f64 {
    if found.is_empty() {
        return 0.0;
    }
    let planted = pair.planted_of_kind(kind);
    let hits = found
        .iter()
        .filter(|v| planted.iter().any(|group| group.vertices.contains(v)))
        .count();
    hits as f64 / found.len() as f64
}

#[test]
fn every_generator_is_recovered_by_both_measures_in_both_directions() {
    for (name, pair) in all_tiny_pairs() {
        for (kind, gd) in [
            (
                GroupKind::Emerging,
                difference_graph(&pair.g2, &pair.g1).unwrap(),
            ),
            (
                GroupKind::Disappearing,
                difference_graph(&pair.g1, &pair.g2).unwrap(),
            ),
        ] {
            if pair.planted_of_kind(kind).is_empty() {
                continue; // some generators plant only one direction
            }

            // Graph affinity: a positive clique mostly inside the planted groups.
            let affinity = NewSea::default().solve(&gd);
            let support = affinity.support();
            assert!(
                !support.is_empty(),
                "{name}/{kind:?}: affinity DCS must not be empty"
            );
            assert!(
                gd.is_positive_clique(&support),
                "{name}/{kind:?}: affinity DCS must be a positive clique"
            );
            let precision = precision_against_planted(&support, &pair, kind);
            assert!(
                precision >= 0.5,
                "{name}/{kind:?}: affinity DCS {support:?} has precision {precision:.2}"
            );

            // Average degree: positive contrast that touches the planted structure.
            let degree = DcsGreedy::default().solve(&gd);
            assert!(
                degree.density_difference > 0.0,
                "{name}/{kind:?}: average-degree DCS must have positive contrast"
            );
            assert!(
                precision_against_planted(&degree.subset, &pair, kind) > 0.0,
                "{name}/{kind:?}: average-degree DCS must touch a planted group"
            );
        }
    }
}

#[test]
fn directions_are_symmetric_on_every_generator() {
    // Mining the disappearing direction of (G1, G2) is exactly mining the emerging
    // direction of (G2, G1): the two difference graphs are negations of each other.
    for (name, pair) in all_tiny_pairs() {
        let forward = difference_graph(&pair.g2, &pair.g1).unwrap();
        let backward = difference_graph(&pair.g1, &pair.g2).unwrap();
        assert_eq!(
            forward.num_positive_edges(),
            backward.num_negative_edges(),
            "{name}: positive/negative edge counts must swap"
        );
        assert_eq!(
            forward.num_negative_edges(),
            backward.num_positive_edges(),
            "{name}: negative/positive edge counts must swap"
        );
        assert!(
            (forward.total_weight() + backward.total_weight()).abs() < 1e-6,
            "{name}: total weights must cancel"
        );
    }
}

//! "Shape" tests: small-scale versions of the paper's experimental claims.  These do not
//! reproduce the published numbers (the data is synthetic and tiny) but assert the
//! qualitative relationships the evaluation section reports.

use dcs::core::dcsga::{refine, DcsgaConfig, NewSea, SeaCd};
use dcs::core::difference_graph;
use dcs::datasets::{CoauthorConfig, ConflictConfig, Scale, SocialInterestConfig};
use dcs::densest::{OriginalSea, ReplicatorStop, SeaConfig};
use dcs::prelude::*;

/// Table VII / Fig. 2(a): the smart initialisation of NewSEA prunes most initialisations
/// relative to the exhaustive SEACD+Refine sweep without losing quality.
#[test]
fn smart_initialisation_prunes_most_seeds() {
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let gd_plus = gd.positive_part();
    let config = DcsgaConfig::default();

    let newsea = NewSea::new(config).solve(&gd);
    let sweep = SeaCd::new(config).sweep(&gd_plus, None, false, |g, x| refine(g, x, &config));

    assert!((newsea.affinity_difference - sweep.best_objective).abs() < 1e-6);
    assert!(
        (newsea.stats.initializations_run as f64) < 0.5 * sweep.initializations as f64,
        "NewSEA used {} of {} initialisations",
        newsea.stats.initializations_run,
        sweep.initializations
    );
}

/// Table VII (#Errors column) / Fig. 2(b): the loose objective-improvement stopping rule
/// of the original SEA can produce expansion errors, while the coordinate-descent shrink
/// of SEACD never does.  (On any particular random instance SEA may happen to avoid
/// errors; what must always hold is that SEACD commits none and never ends up worse.)
#[test]
fn seacd_is_error_free_and_at_least_as_good_as_original_sea() {
    let pair = ConflictConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let gd_plus = gd.positive_part();

    let config = DcsgaConfig::default();
    let seacd = SeaCd::new(config).sweep(&gd_plus, Some(150), false, |g, x| refine(g, x, &config));
    assert_eq!(seacd.expansion_errors, 0);

    let sea = OriginalSea::new(SeaConfig {
        shrink_stop: ReplicatorStop::ObjectiveImprovement { eps: 1e-4 },
        ..SeaConfig::default()
    });
    let sea_result = sea.run_all_vertices(&gd_plus, Some(150), false);
    let sea_refined = refine(&gd_plus, sea_result.best.clone(), &config);

    assert!(
        seacd.best_objective >= sea_refined.affinity(&gd_plus) - 1e-6,
        "SEACD {} vs SEA+Refine {}",
        seacd.best_objective,
        sea_refined.affinity(&gd_plus)
    );
}

/// Tables X–XIII: on interaction-style data the average-degree DCS is much larger than
/// the graph-affinity DCS, and (unlike the affinity solution) it need not be a positive
/// clique.
#[test]
fn average_degree_dcs_is_larger_than_affinity_dcs() {
    let pair = ConflictConfig::for_scale(Scale::Tiny).generate();
    for gd in [
        difference_graph(&pair.g1, &pair.g2).unwrap(), // Consistent
        difference_graph(&pair.g2, &pair.g1).unwrap(), // Conflicting
    ] {
        let ad = DcsGreedy::default().solve(&gd);
        let ga = NewSea::default().solve(&gd);
        assert!(
            ad.subset.len() >= ga.support().len(),
            "avg-degree DCS ({}) should not be smaller than affinity DCS ({})",
            ad.subset.len(),
            ga.support().len()
        );
        assert!(gd.is_positive_clique(&ga.support()));
    }
}

/// Tables VIII/IX: EgoScan (total-weight objective) returns bigger subgraphs with larger
/// total weight but smaller density than both DCS algorithms.
#[test]
fn egoscan_contrast_with_dcs() {
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    for gd in [
        difference_graph(&pair.g2, &pair.g1).unwrap(),
        difference_graph(&pair.g1, &pair.g2).unwrap(),
    ] {
        let dcs_ad = DcsGreedy::default().solve(&gd);
        let dcs_ga = NewSea::default().solve(&gd);
        let ego = EgoScan::default().solve(&gd);

        assert!(ego.subset.len() >= dcs_ad.subset.len());
        assert!(ego.subset.len() >= dcs_ga.support().len());
        assert!(ego.total_degree + 1e-9 >= gd.total_degree(&dcs_ad.subset));
        assert!(ego.total_degree + 1e-9 >= gd.total_degree(&dcs_ga.support()));
        assert!(gd.average_degree(&ego.subset) <= dcs_ad.density_difference + 1e-9);
    }
}

/// The DCSAD comparators of Tables X/XII: the full DCSGreedy is never worse than the
/// "Greedy on G_D only" and "Greedy on G_D+ only" single-candidate variants.
#[test]
fn dcsgreedy_dominates_single_candidate_variants() {
    let pair = SocialInterestConfig::movie(Scale::Tiny).generate();
    for gd in [
        difference_graph(&pair.g2, &pair.g1).unwrap(),
        difference_graph(&pair.g1, &pair.g2).unwrap(),
    ] {
        let solver = DcsGreedy::default();
        let full = solver.solve(&gd);
        let gd_only = solver.solve_gd_only(&gd);
        let plus_only = solver.solve_gd_plus_only(&gd);
        assert!(full.density_difference >= gd_only.density_difference - 1e-9);
        assert!(full.density_difference >= plus_only.density_difference - 1e-9);
    }
}

/// Fig. 3: the movie-style Social−Interest difference graph has more (and larger)
/// positive cliques than the Interest−Social graph, while for the book-style profile the
/// situation reverses (the paper's "opposite result" observation) — here we check the
/// weaker, scale-independent part of that claim: the ordering of positive-clique counts
/// follows the ordering of positive-edge counts.
#[test]
fn clique_census_follows_positive_edge_ordering() {
    let movie = SocialInterestConfig::movie(Scale::Tiny).generate();
    let i_minus_s = difference_graph(&movie.g2, &movie.g1).unwrap();
    let s_minus_i = difference_graph(&movie.g1, &movie.g2).unwrap();

    let config = DcsgaConfig::default();
    let census = |gd: &SignedGraph| {
        let gd_plus = gd.positive_part();
        let sweep =
            SeaCd::new(config).sweep(&gd_plus, Some(200), true, |g, x| refine(g, x, &config));
        dcs::core::dcsga::clique_census(&gd_plus, &sweep.all_solutions).len()
    };
    let census_is = census(&i_minus_s);
    let census_si = census(&s_minus_i);
    if s_minus_i.num_positive_edges() > 2 * i_minus_s.num_positive_edges() {
        assert!(census_si >= census_is);
    }
    assert!(census_is > 0 && census_si > 0);
}

//! Property-based tests for the library extensions that go beyond the paper's core
//! algorithms: weight schemes, top-k mining, streaming maintenance, quasi-clique
//! extraction, parallel sweeps and labelled IO.

use dcs::core::dcsga::{parallel_newsea, DcsgaConfig};
use dcs::core::streaming::{StreamingConfig, StreamingDcs};
use dcs::core::{
    clamp_weights, difference_graph, difference_graph_with, scaled_difference_graph,
    top_k_affinity, top_k_average_degree, DensityMeasure, DiscreteRule, WeightScheme,
};
use dcs::densest::{greedy_quasi_clique, local_search_quasi_clique};
use dcs::graph::labels::LabeledGraphBuilder;
use dcs::graph::labels::{read_labeled_edge_list, write_labeled_edge_list, VertexLabels};
use dcs::prelude::*;
use proptest::prelude::*;

/// Strategy: a random signed graph over at most 16 vertices.
fn arb_signed_graph() -> impl Strategy<Value = SignedGraph> {
    (4usize..16).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -4.0f64..4.0f64);
        (Just(n), proptest::collection::vec(edge, 0..60)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w.abs() > 0.05 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

/// Strategy: a random pair of non-negatively weighted graphs over the same vertex set.
fn arb_graph_pair() -> impl Strategy<Value = (SignedGraph, SignedGraph)> {
    (4usize..14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..8.0f64);
        (
            Just(n),
            proptest::collection::vec(edge.clone(), 0..40),
            proptest::collection::vec(edge, 0..40),
        )
            .prop_map(|(n, e1, e2)| {
                let build = |edges: Vec<(u32, u32, f64)>| {
                    let mut b = GraphBuilder::new(n);
                    for (u, v, w) in edges {
                        if u != v {
                            b.add_edge(u, v, w);
                        }
                    }
                    b.build()
                };
                (build(e1), build(e2))
            })
    })
}

/// Strategy: a random list of labelled edges drawn from a small label alphabet.
fn arb_labeled_edges() -> impl Strategy<Value = Vec<(String, String, f64)>> {
    let label = prop::sample::select(vec!["ada", "bob", "cat", "dan", "eve", "fay", "gil", "hal"]);
    proptest::collection::vec((label.clone(), label, -5.0f64..5.0), 1..30).prop_map(|edges| {
        edges
            .into_iter()
            .filter(|(u, v, w)| u != v && w.abs() > 0.05)
            .map(|(u, v, w)| (u.to_string(), v.to_string(), w))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ----------------------------------------------------------------- weight schemes

    /// The Discrete scheme only emits weights in {−2, −1, +1, +2} and never creates an
    /// edge where the raw difference graph has none.
    #[test]
    fn discrete_scheme_bounds_weights((g1, g2) in arb_graph_pair()) {
        let raw = difference_graph(&g2, &g1).unwrap();
        let discrete = difference_graph_with(
            &g2, &g1, WeightScheme::Discrete(DiscreteRule::default())).unwrap();
        for (u, v, w) in discrete.edges() {
            prop_assert!([-2.0, -1.0, 1.0, 2.0].contains(&w), "unexpected weight {w}");
            prop_assert!(raw.edge_weight(u, v).is_some());
        }
    }

    /// α = 0 removes G1's influence entirely; α = 1 matches the plain difference; larger
    /// α never increases any edge weight.
    #[test]
    fn scaled_scheme_is_monotone_in_alpha((g1, g2) in arb_graph_pair()) {
        let alpha0 = scaled_difference_graph(&g2, &g1, 0.0).unwrap();
        let alpha1 = scaled_difference_graph(&g2, &g1, 1.0).unwrap();
        let alpha2 = scaled_difference_graph(&g2, &g1, 2.0).unwrap();
        let plain = difference_graph(&g2, &g1).unwrap();
        for (u, v, w) in g2.edges() {
            prop_assert!((alpha0.edge_weight(u, v).unwrap_or(0.0) - w).abs() < 1e-9);
            let w1 = alpha1.edge_weight(u, v).unwrap_or(0.0);
            prop_assert!((w1 - plain.edge_weight(u, v).unwrap_or(0.0)).abs() < 1e-9);
            prop_assert!(alpha2.edge_weight(u, v).unwrap_or(0.0) <= w1 + 1e-9);
        }
    }

    /// Clamping bounds every weight and is idempotent.
    #[test]
    fn clamping_is_idempotent(gd in arb_signed_graph(), max_abs in 0.5f64..3.0) {
        let clamped = clamp_weights(&gd, max_abs);
        for (_, _, w) in clamped.edges() {
            prop_assert!(w.abs() <= max_abs + 1e-12);
        }
        let twice = clamp_weights(&clamped, max_abs);
        prop_assert_eq!(clamped, twice);
    }

    // ----------------------------------------------------------------------- top-k

    /// Top-k subgraphs are pairwise vertex-disjoint, reported in non-increasing order of
    /// contrast, and each one has positive contrast.
    #[test]
    fn top_k_mining_invariants(gd in arb_signed_graph(), k in 1usize..5) {
        let by_degree = top_k_average_degree(&gd, k);
        prop_assert!(by_degree.len() <= k);
        for (i, sol) in by_degree.iter().enumerate() {
            prop_assert!(sol.density_difference > 0.0);
            for later in &by_degree[i + 1..] {
                prop_assert!(sol.density_difference >= later.density_difference - 1e-9);
                prop_assert!(sol.subset.iter().all(|v| !later.subset.contains(v)));
            }
        }

        let by_affinity = top_k_affinity(&gd, k, DcsgaConfig::default());
        prop_assert!(by_affinity.len() <= k);
        for (i, sol) in by_affinity.iter().enumerate() {
            prop_assert!(sol.affinity_difference > 0.0);
            prop_assert!(gd.is_positive_clique(&sol.support()));
            for later in &by_affinity[i + 1..] {
                prop_assert!(sol.support().iter().all(|v| !later.support().contains(v)));
            }
        }
    }

    // -------------------------------------------------------------------- streaming

    /// After an arbitrary observe sequence — repeated touches of the same edge,
    /// deletions via clamping to zero, no-op updates — the incremental difference
    /// snapshot is *identical* (same CSR content) to a from-scratch rebuild, and an
    /// unchanged version returns the same pointer-equal Arc.
    #[test]
    fn incremental_snapshot_equals_scratch_rebuild(
        (g1, _) in arb_graph_pair(),
        updates in proptest::collection::vec((0u32..16, 0u32..16, -5.0f64..5.0), 0..80),
    ) {
        let config = StreamingConfig {
            remine_every: 0,
            alert_threshold: 0.0,
            measure: DensityMeasure::AverageDegree,
        };
        let n = g1.num_vertices() as u32;
        let mut monitor = StreamingDcs::new(g1, config).unwrap();
        for (i, (u, v, delta)) in updates.into_iter().enumerate() {
            // Fold endpoints into range; keep a few out-of-range/self-loop updates
            // as-is to exercise the ignored path.
            let (u, v) = if i % 7 == 0 { (u, v) } else { (u % n, v % n) };
            monitor.observe(u, v, delta);
            if i % 5 == 0 {
                prop_assert_eq!(
                    &*monitor.difference_snapshot(),
                    &monitor.rebuild_difference_snapshot()
                );
            }
        }
        let snapshot = monitor.difference_snapshot();
        prop_assert_eq!(&*snapshot, &monitor.rebuild_difference_snapshot());
        // Unchanged version: pointer-equal snapshot, no rebuild.
        let again = monitor.difference_snapshot();
        prop_assert!(std::sync::Arc::ptr_eq(&snapshot, &again));
    }

    /// Replaying G2's edges through the streaming monitor reproduces exactly the batch
    /// difference graph, and the monitor's mined contrast matches batch mining.
    #[test]
    fn streaming_replay_matches_batch((g1, g2) in arb_graph_pair()) {
        let config = StreamingConfig {
            remine_every: 0,
            alert_threshold: 0.0,
            measure: DensityMeasure::AverageDegree,
        };
        let mut monitor = StreamingDcs::new(g1.clone(), config).unwrap();
        for (u, v, w) in g2.edges() {
            monitor.observe(u, v, w);
        }
        let streamed = monitor.difference_snapshot();
        let batch = difference_graph(&g2, &g1).unwrap();
        prop_assert_eq!(streamed.num_edges(), batch.num_edges());
        for (u, v, w) in batch.edges() {
            prop_assert!((streamed.edge_weight(u, v).unwrap() - w).abs() < 1e-9);
        }

        let alert = monitor.mine_now();
        let batch_solution = DcsGreedy::default().solve(&batch);
        prop_assert!((alert.density_difference - batch_solution.density_difference).abs() < 1e-9);
    }

    // ----------------------------------------------------------------- quasi-cliques

    /// The greedy quasi-clique surplus is never negative, matches a recomputation from
    /// its subset, and local search never falls below the seed it was given.
    #[test]
    fn quasi_clique_invariants(gd in arb_signed_graph(), alpha in 0.05f64..1.0) {
        let greedy = greedy_quasi_clique(&gd, alpha);
        prop_assert!(greedy.edge_surplus >= -1e-9);
        let pairs = greedy.subset.len() as f64 * (greedy.subset.len() as f64 - 1.0) / 2.0;
        let recomputed = gd.total_edge_weight(&greedy.subset) - alpha * pairs;
        prop_assert!((greedy.edge_surplus - recomputed).abs() < 1e-9);

        let refined = local_search_quasi_clique(&gd, alpha, &greedy.subset, 30);
        prop_assert!(refined.edge_surplus >= greedy.edge_surplus - 1e-9);
    }

    // ------------------------------------------------------------------- parallelism

    /// The parallel NewSEA sweep returns exactly the sequential objective.
    #[test]
    fn parallel_newsea_equals_sequential(gd in arb_signed_graph()) {
        let config = DcsgaConfig::default();
        let sequential = NewSea::new(config).solve(&gd);
        let parallel = parallel_newsea(&gd, config, 4);
        prop_assert!((sequential.affinity_difference - parallel.affinity_difference).abs() < 1e-9);
    }

    // ------------------------------------------------------------------- labelled IO

    /// Building a labelled graph and writing/re-reading it preserves every edge weight
    /// (modulo the duplicate-merging that happens at build time).
    #[test]
    fn labeled_io_round_trip(edges in arb_labeled_edges()) {
        let mut builder = LabeledGraphBuilder::new();
        for (u, v, w) in &edges {
            builder.add_edge(u, v, *w);
        }
        let (graph, labels) = builder.build();

        let mut buffer = Vec::new();
        write_labeled_edge_list(&graph, &labels, &mut buffer).unwrap();
        let mut relabels = VertexLabels::new();
        let reread = read_labeled_edge_list(buffer.as_slice(), &mut relabels).unwrap();

        prop_assert_eq!(reread.num_edges(), graph.num_edges());
        for (u, v, w) in graph.edges() {
            let lu = labels.label_of(u).unwrap();
            let lv = labels.label_of(v).unwrap();
            let ru = relabels.id_of(lu).unwrap();
            let rv = relabels.id_of(lv).unwrap();
            prop_assert!((reread.edge_weight(ru, rv).unwrap() - w).abs() < 1e-9);
        }
    }
}

/// Non-property checks of the extension seams that do not need random inputs.
#[test]
fn streaming_rejects_mismatched_snapshot() {
    let baseline = GraphBuilder::from_edges(4, vec![(0, 1, 1.0)]);
    let wrong_size = SignedGraph::empty(6);
    assert!(StreamingDcs::with_initial_observation(
        baseline,
        &wrong_size,
        StreamingConfig::default()
    )
    .is_err());
}

#[test]
fn top_k_with_zero_k_is_empty() {
    let gd = GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (2, 3, 1.0)]);
    assert!(top_k_average_degree(&gd, 0).is_empty());
    assert!(top_k_affinity(&gd, 0, DcsgaConfig::default()).is_empty());
}

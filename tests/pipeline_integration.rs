//! End-to-end integration tests: generate a graph pair, build difference graphs, run
//! every algorithm, and check both the planted ground truth recovery and the structural
//! invariants the paper proves.

use dcs::core::dcsga::{refine, DcsgaConfig, NewSea, SeaCd};
use dcs::core::{difference_graph, difference_graph_with, DiscreteRule, WeightScheme};
use dcs::datasets::{
    best_match, CoauthorConfig, ConflictConfig, GroupKind, KeywordConfig, Scale,
    SocialInterestConfig,
};
use dcs::prelude::*;

#[test]
fn coauthor_emerging_groups_are_recovered_by_both_measures() {
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let planted = pair.planted_of_kind(GroupKind::Emerging);

    // DCSAD.
    let ad = DcsGreedy::default().solve(&gd);
    let ad_match = best_match(&ad.subset, &planted);
    assert!(
        ad_match.jaccard > 0.6,
        "DCSGreedy should recover an emerging group, got {ad_match:?}"
    );
    assert!(dcs::graph::components::is_connected(&gd, &ad.subset));

    // DCSGA.
    let ga = NewSea::default().solve(&gd);
    let ga_match = best_match(&ga.support(), &planted);
    assert!(
        ga_match.jaccard > 0.6,
        "NewSEA should recover an emerging group, got {ga_match:?}"
    );
    assert!(gd.is_positive_clique(&ga.support()));
}

#[test]
fn coauthor_disappearing_groups_found_in_reverse_direction() {
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph(&pair.g1, &pair.g2).unwrap(); // Disappearing direction
    let planted = pair.planted_of_kind(GroupKind::Disappearing);
    let ad = DcsGreedy::default().solve(&gd);
    assert!(best_match(&ad.subset, &planted).jaccard > 0.5);
    let ga = NewSea::default().solve(&gd);
    assert!(best_match(&ga.support(), &planted).jaccard > 0.3);
}

#[test]
fn discrete_setting_still_finds_planted_structure() {
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph_with(
        &pair.g2,
        &pair.g1,
        WeightScheme::Discrete(DiscreteRule::default()),
    )
    .unwrap();
    assert!(gd.num_positive_edges() > 0);
    let planted = pair.planted_of_kind(GroupKind::Emerging);
    let ga = NewSea::default().solve(&gd);
    let m = best_match(&ga.support(), &planted);
    assert!(m.jaccard > 0.4, "discrete-setting recovery too weak: {m:?}");
}

#[test]
fn keyword_trends_beat_single_graph_mining() {
    let pair = KeywordConfig::for_scale(Scale::Tiny).generate();
    let emerging = pair.planted_of_kind(GroupKind::Emerging);

    // Mining the recent graph alone must NOT rank an emerging topic first (the evergreen
    // distractor dominates), while the difference graph must.
    let recent_best = NewSea::default().solve(&pair.g2);
    let recent_match = best_match(&recent_best.support(), &emerging);

    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let diff_best = NewSea::default().solve(&gd);
    let diff_match = best_match(&diff_best.support(), &emerging);

    assert!(
        diff_match.jaccard > 0.6,
        "difference-graph mining should recover an emerging topic: {diff_match:?}"
    );
    assert!(
        diff_match.jaccard >= recent_match.jaccard,
        "DCS should be at least as aligned with the trends as single-graph mining"
    );
}

#[test]
fn conflict_groups_are_separated_by_direction() {
    let pair = ConflictConfig::for_scale(Scale::Tiny).generate();
    let consistent_gd = difference_graph(&pair.g1, &pair.g2).unwrap();
    let conflicting_gd = difference_graph(&pair.g2, &pair.g1).unwrap();

    let consistent = DcsGreedy::default().solve(&consistent_gd);
    let conflicting = DcsGreedy::default().solve(&conflicting_gd);

    let coop = pair
        .planted
        .iter()
        .find(|g| g.name == "consistent")
        .unwrap();
    let fight = pair
        .planted
        .iter()
        .find(|g| g.name == "conflicting")
        .unwrap();

    assert!(dcs::datasets::jaccard(&consistent.subset, &coop.vertices) > 0.5);
    assert!(dcs::datasets::jaccard(&conflicting.subset, &fight.vertices) > 0.5);
    // The two mined groups barely overlap.
    assert!(dcs::datasets::jaccard(&consistent.subset, &conflicting.subset) < 0.2);
}

#[test]
fn douban_style_interest_vs_social_contrast() {
    let pair = SocialInterestConfig::movie(Scale::Tiny).generate();
    let interest_minus_social = difference_graph(&pair.g2, &pair.g1).unwrap();
    let ga = NewSea::default().solve(&interest_minus_social);
    let planted = pair.planted_of_kind(GroupKind::Emerging);
    let m = best_match(&ga.support(), &planted);
    assert!(
        m.jaccard > 0.3,
        "interest-community core should be recovered: {m:?}"
    );
    assert!(interest_minus_social.is_positive_clique(&ga.support()));
}

#[test]
fn all_dcsga_solvers_agree_on_the_best_group() {
    // The paper repeatedly observes that NewSEA, SEACD+Refine and SEA+Refine find the
    // same DCS.  Check NewSEA vs the exhaustive SEACD sweep on a tiny co-author pair.
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let gd_plus = gd.positive_part();

    let config = DcsgaConfig::default();
    let newsea = NewSea::new(config).solve(&gd);
    let sweep = SeaCd::new(config).sweep(&gd_plus, None, false, |g, x| refine(g, x, &config));

    assert!(
        (newsea.affinity_difference - sweep.best_objective).abs()
            <= 1e-6 * newsea.affinity_difference.max(1.0),
        "NewSEA {} vs exhaustive sweep {}",
        newsea.affinity_difference,
        sweep.best_objective
    );
    // And the smart initialisation did strictly less work.
    assert!(newsea.stats.initializations_run < sweep.initializations);
}

#[test]
fn egoscan_baseline_returns_larger_lower_density_subgraphs() {
    // The qualitative claim of Tables VIII/IX.
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();

    let dcs = DcsGreedy::default().solve(&gd);
    let ego = EgoScan::default().solve(&gd);

    assert!(
        ego.subset.len() >= dcs.subset.len(),
        "EgoScan ({}) should not be smaller than the DCS ({})",
        ego.subset.len(),
        dcs.subset.len()
    );
    assert!(ego.total_degree >= gd.total_degree(&dcs.subset) - 1e-9);
    assert!(gd.average_degree(&ego.subset) <= dcs.density_difference + 1e-9);
}

#[test]
fn full_pipeline_via_convenience_functions() {
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    let (ad, gd) = dcs::core::mine_average_degree_dcs(&pair.g2, &pair.g1).unwrap();
    let (ga, _) = dcs::core::mine_affinity_dcs(&pair.g2, &pair.g1).unwrap();
    assert!(ad.density_difference > 0.0);
    assert!(ga.affinity_difference > 0.0);
    let report = ContrastReport::for_subset(&gd, &ad.subset);
    assert!(report.is_connected);
    assert_eq!(report.size, ad.subset.len());
}

//! Property-based tests of the DCS algorithms on random signed graphs: the invariants
//! proved in the paper must hold on every instance.

use dcs::baselines::exact::{brute_force_dcsad, motzkin_straus_optimum};
use dcs::core::dcsga::kkt::{is_kkt_point, kkt_violation};
use dcs::core::dcsga::{refine, DcsgaConfig, NewSea, SeaCd};
use dcs::core::{difference_graph, DcsError};
use dcs::prelude::*;
use proptest::prelude::*;

/// Strategy: a random signed graph over at most 14 vertices (small enough for the
/// brute-force oracles).
fn arb_signed_graph() -> impl Strategy<Value = SignedGraph> {
    (4usize..14).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -4.0f64..4.0f64);
        (Just(n), proptest::collection::vec(edge, 0..50)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w.abs() > 0.05 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

/// Strategy: a random *unweighted* graph (all weights 1) for Motzkin–Straus checks.
fn arb_unweighted_graph() -> impl Strategy<Value = SignedGraph> {
    (4usize..12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..40)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::with_policy(n, dcs::graph::DuplicatePolicy::Overwrite);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v, 1.0);
                }
            }
            b.build()
        })
    })
}

/// Strategy: a random pair of non-negative graphs over the same vertex set.
fn arb_graph_pair() -> impl Strategy<Value = (SignedGraph, SignedGraph)> {
    (4usize..12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.1f64..5.0f64);
        (
            Just(n),
            proptest::collection::vec(edge.clone(), 0..40),
            proptest::collection::vec(edge, 0..40),
        )
            .prop_map(|(n, e1, e2)| {
                let build = |edges: Vec<(u32, u32, f64)>| {
                    let mut b = GraphBuilder::new(n);
                    for (u, v, w) in edges {
                        if u != v {
                            b.add_edge(u, v, w);
                        }
                    }
                    b.build()
                };
                (build(e1), build(e2))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DCSGreedy never exceeds the true optimum, stays within its data-dependent ratio,
    /// returns a connected subgraph, and its density is at least the max edge weight
    /// (the 1/(n−1)-optimality certificate of Section IV-B).
    #[test]
    fn dcsgreedy_invariants(gd in arb_signed_graph()) {
        let sol = DcsGreedy::default().solve(&gd);
        let (_, opt) = brute_force_dcsad(&gd);
        prop_assert!(sol.density_difference <= opt + 1e-9);
        prop_assert!(dcs::graph::components::is_connected(&gd, &sol.subset));
        if let Some((_, _, wmax)) = gd.max_weight_edge() {
            if wmax > 0.0 {
                prop_assert!(sol.density_difference + 1e-9 >= wmax,
                    "density {} below max edge weight {}", sol.density_difference, wmax);
                // Theorem 2: the certified ratio really bounds the optimality gap.
                let certified = sol.data_dependent_ratio;
                prop_assert!(opt <= certified * sol.density_difference + 1e-9);
            }
        }
        // Re-evaluating the subset matches the reported density.
        prop_assert!((gd.average_degree(&sol.subset) - sol.density_difference).abs() < 1e-9);
    }

    /// NewSEA always returns a positive clique (Theorem 5), its reported affinity matches
    /// the embedding, the embedding is (approximately) a KKT point, and the objective is
    /// at least the best single edge (a trivially attainable solution).
    #[test]
    fn newsea_invariants(gd in arb_signed_graph()) {
        let sol = NewSea::default().solve(&gd);
        let support = sol.support();
        prop_assert!(gd.is_positive_clique(&support));
        prop_assert!((sol.embedding.affinity(&gd) - sol.affinity_difference).abs() < 1e-9);
        if let Some((_, _, wmax)) = gd.max_weight_edge() {
            if wmax > 0.0 {
                // A single edge {u,v} with uniform weights achieves w/2.
                prop_assert!(sol.affinity_difference + 1e-6 >= wmax / 2.0,
                    "affinity {} below single-edge bound {}", sol.affinity_difference, wmax / 2.0);
                // The embedding is a KKT point of the positive part (the graph NewSEA
                // actually optimises over).
                let gd_plus = gd.positive_part();
                prop_assert!(kkt_violation(&gd_plus, &sol.embedding) <= 0.1,
                    "KKT violation {}", kkt_violation(&gd_plus, &sol.embedding));
            } else {
                prop_assert_eq!(sol.affinity_difference, 0.0);
            }
        }
        // Non-negative objective always (a singleton has affinity 0).
        prop_assert!(sol.affinity_difference >= 0.0);
    }

    /// On unweighted graphs the DCSGA optimum is 1 − 1/ω(G) (Motzkin–Straus); NewSEA must
    /// reach it on these small instances (it initialises from every promising vertex).
    #[test]
    fn newsea_matches_motzkin_straus(g in arb_unweighted_graph()) {
        let optimum = motzkin_straus_optimum(&g);
        let sol = NewSea::default().solve(&g);
        prop_assert!(sol.affinity_difference <= optimum + 1e-6);
        prop_assert!(sol.affinity_difference >= optimum - 1e-3,
            "NewSEA {} vs Motzkin–Straus {}", sol.affinity_difference, optimum);
    }

    /// Refinement never decreases the objective and always lands on a positive clique.
    #[test]
    fn refinement_invariants(gd in arb_signed_graph(), seed_vertex in 0u32..14) {
        let gd_plus = gd.positive_part();
        if gd_plus.num_edges() == 0 || seed_vertex as usize >= gd_plus.num_vertices() {
            return Ok(());
        }
        let config = DcsgaConfig::default();
        let run = SeaCd::new(config).run_from_vertex(&gd_plus, seed_vertex);
        let before = run.embedding.affinity(&gd_plus);
        let refined = refine(&gd_plus, run.embedding, &config);
        let after = refined.affinity(&gd_plus);
        prop_assert!(after >= before - 1e-6);
        prop_assert!(gd_plus.is_positive_clique(&refined.support()));
        prop_assert!(gd.is_positive_clique(&refined.support()));
    }

    /// SEACD with the coordinate-descent shrink never commits an expansion error and its
    /// output satisfies the KKT conditions on the positive part.
    #[test]
    fn seacd_never_commits_expansion_errors(gd in arb_signed_graph()) {
        let gd_plus = gd.positive_part();
        let sweep = SeaCd::default().sweep(&gd_plus, None, false, |_, x| x);
        prop_assert_eq!(sweep.expansion_errors, 0);
        if !sweep.best.is_empty() {
            prop_assert!(is_kkt_point(&gd_plus, &sweep.best, 0.1));
        }
    }

    /// The difference graph is the exact edge-wise difference and flipping the direction
    /// negates it.
    #[test]
    fn difference_graph_is_antisymmetric((g1, g2) in arb_graph_pair()) {
        let d21 = difference_graph(&g2, &g1).unwrap();
        let d12 = difference_graph(&g1, &g2).unwrap();
        for (u, v, w) in d21.edges() {
            let w1 = g1.edge_weight(u, v).unwrap_or(0.0);
            let w2 = g2.edge_weight(u, v).unwrap_or(0.0);
            prop_assert!((w - (w2 - w1)).abs() < 1e-9);
            prop_assert!((d12.edge_weight(u, v).unwrap() + w).abs() < 1e-9);
        }
        prop_assert_eq!(d21.num_positive_edges(), d12.num_negative_edges());
    }

    /// The exhaustive SEACD sweep is never worse than NewSEA, and NewSEA is never worse
    /// than a plain SEACD run refined — the smart initialisation must not lose quality.
    #[test]
    fn newsea_quality_equals_exhaustive_sweep(gd in arb_signed_graph()) {
        let config = DcsgaConfig::default();
        let gd_plus = gd.positive_part();
        if gd_plus.num_edges() == 0 {
            return Ok(());
        }
        let newsea = NewSea::new(config).solve(&gd);
        let sweep = SeaCd::new(config).sweep(&gd_plus, None, false, |g, x| refine(g, x, &config));
        prop_assert!(newsea.affinity_difference >= sweep.best_objective - 1e-6,
            "NewSEA {} < exhaustive {}", newsea.affinity_difference, sweep.best_objective);
        prop_assert!(newsea.affinity_difference <= sweep.best_objective + 1e-6);
    }
}

#[test]
fn error_paths_are_reported() {
    let g_small = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
    let g_large = GraphBuilder::from_edges(4, vec![(0, 1, 1.0)]);
    match difference_graph(&g_large, &g_small) {
        Err(DcsError::VertexCountMismatch {
            g1_vertices,
            g2_vertices,
        }) => {
            assert_eq!(g1_vertices, 3);
            assert_eq!(g2_vertices, 4);
        }
        other => panic!("expected mismatch error, got {other:?}"),
    }
}
